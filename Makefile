# Developer entry points. Everything runs against the src/ layout via
# PYTHONPATH so no install step is required (pip install -e . also works
# now that setup.py declares package_dir).

PY ?= python
PYPATH := PYTHONPATH=src

.PHONY: test stress stress-faults stress-tenancy test-proc bench-smoke bench-check bench-dispatch bench-proc lint examples

## tier-1 test suite (the driver's acceptance gate)
test:
	$(PYPATH) $(PY) -m pytest -x -q

## overlap stress: rerun the concurrency-sensitive suites (dispatch
## contexts, admission policies, deadlines, and the optimisation
## aspects — the shared-cache lock and replica builds race real
## threads) 5x with the pytest cache disabled, to surface flakes and
## hangs that a single ordered run hides.  CI wraps this in a hard
## timeout-minutes so a hung untimed wait fails the job instead of
## stalling it.
stress:
	@for i in 1 2 3 4 5; do \
		echo "--- stress round $$i/5 ---"; \
		$(PYPATH) $(PY) -m pytest -q -p no:cacheprovider \
			tests/parallel/test_dispatch_contexts.py \
			tests/parallel/test_admission_policies.py \
			tests/parallel/test_deadlines.py \
			tests/parallel/test_optimisation.py || exit 1; \
	done

## fault-injection stress: rerun the whole fault matrix 5x — the
## tests/faults suites (schedule determinism, retry-collector
## properties, kill-and-replace recovery, golden trace) plus the fault
## parametrisations of the thread and process dispatch matrices.  Kills
## and respawns are timing-sensitive by construction; 5 rounds with the
## cache disabled surface interleavings a single run hides.  CI wraps
## this in a hard timeout-minutes so a lost wakeup (a hang, not a
## failure) still fails the job fast.
stress-faults:
	@for i in 1 2 3 4 5; do \
		echo "--- fault stress round $$i/5 ---"; \
		$(PYPATH) $(PY) -m pytest -q -p no:cacheprovider \
			tests/faults || exit 1; \
		$(PYPATH) $(PY) -m pytest -q -p no:cacheprovider \
			tests/parallel/test_dispatch_contexts.py \
			tests/parallel/test_process_backend_matrix.py \
			-k "FaultMatrix" || exit 1; \
	done

## tenancy/traffic stress: rerun the cluster-scheduler suites (stride
## hand-offs race real threads), the sim fairness scenarios, and the
## traffic determinism tests 5x with the cache disabled.  CI wraps this
## in a hard timeout-minutes so a lost hand-off wakeup (a hang, not a
## failure) fails the job fast.
stress-tenancy:
	@for i in 1 2 3 4 5; do \
		echo "--- tenancy stress round $$i/5 ---"; \
		$(PYPATH) $(PY) -m pytest -q -p no:cacheprovider \
			tests/tenancy tests/traffic \
			tests/faults/test_shed_retry.py || exit 1; \
	done

## out-of-process backend subset: worker lifecycle + crash fail-fast,
## the wire-format round-trips, and the overlap/admission/deadline
## matrix on resident worker processes.  CI wraps this in a hard
## timeout-minutes: a hang here means a pipe wait without a liveness
## check, and must fail fast instead of stalling the job.
test-proc:
	$(PYPATH) $(PY) -m pytest -q -p no:cacheprovider \
		tests/runtime/test_procbackend.py \
		tests/middleware/test_serialize_roundtrip.py \
		tests/parallel/test_process_backend_matrix.py

## process-backend benchmark pairs only: thread-vs-process on the
## CPU-bound farm split and one-marshal-per-pack across the pipe.
## Appends to benchmarks/BENCH_dispatch.json like bench-smoke.
bench-proc:
	REPRO_BENCH_MAXIMUM=200000 REPRO_BENCH_PACKS=8 \
		$(PYPATH) $(PY) -m pytest benchmarks/bench_aop_dispatch.py -q \
		-k "cpu_farm or map_pack8_process or map_unpacked_process"

## quick benchmark pass: dispatch overhead only, small workload knobs.
## Covers the full decision tree: inert, single-/all-around, the
## mixed-chain compiled-vs-interpreted pair and the batched pack-8
## dispatch pair — plus the committed tenancy overload scenarios, which
## register their virtual-time metrics into the same trajectory.  Both
## files run in ONE pytest invocation so the run record carries every
## gated pair.  Appends stats to benchmarks/BENCH_dispatch.json.
bench-smoke:
	REPRO_BENCH_MAXIMUM=200000 REPRO_BENCH_PACKS=8 \
		$(PYPATH) $(PY) -m pytest -q \
		benchmarks/bench_aop_dispatch.py benchmarks/bench_tenancy.py

## regression gate over ALL committed bench pairs: compares the latest
## BENCH_dispatch.json run's within-run pair ratios against the
## committed trajectory, with per-pair thresholds from
## tools/bench_gates.json.  Regressions emit GitHub Actions ::error
## annotations naming the pair.  Run after bench-smoke (CI wires them
## in sequence).
bench-check:
	$(PY) tools/check_bench_regression.py

## full E4 dispatch benchmark with the default (paper-scale) knobs
bench-dispatch:
	$(PYPATH) $(PY) -m pytest benchmarks/bench_aop_dispatch.py -q \
		--benchmark-sort=name

## run every example headless, in sequence, failing fast on the first
## broken one.  The examples double as end-to-end smoke tests of the
## documented API surface (each asserts its own invariants and exits
## non-zero on drift), so CI runs this target to keep README/docs
## snippets honest.
examples:
	@set -e; for ex in examples/*.py; do \
		echo "--- $$ex ---"; \
		$(PYPATH) $(PY) $$ex; \
	done
	@echo "examples ok"

## syntax + docs lint: the container ships no third-party linter, so
## this byte-compiles every tree (catches syntax errors, tabs/space
## mixes) and enforces that every public module in src/repro has a
## module docstring.  Swap in ruff/flake8 here when the toolchain gains
## one.
lint:
	$(PY) -m compileall -q src tests benchmarks examples tools
	@echo "lint ok (compileall)"
	$(PY) tools/lint_docstrings.py
