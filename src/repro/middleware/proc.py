"""Process middleware: real out-of-process invocation over pipes.

The third concrete middleware, and the first one that is not simulated:
``export`` ships a pickled servant into a resident worker process owned
by the :class:`~repro.runtime.procbackend.ProcessBackend` (one worker
per servant — the literal "each servant's MethodTable in a resident
worker process"), and ``invoke``/``invoke_batch`` carry
:class:`~repro.middleware.serialize.RequestEnvelope` frames across the
pipe.

Dispatch-ticket semantics match :class:`~repro.middleware.local.LocalMiddleware`
on the client side (the invoke runs on the caller's activity, so the
originating :class:`~repro.parallel.partition.base.DispatchContext` is
ambient — ``attribute_remote`` and deadline checks need no wire round
trip) *and* :class:`~repro.middleware.base.SimMiddleware` on the wire
(``context_id`` travels in every envelope and echoes in the reply, so
frames stay attributable however many calls share a worker).

Deadlines and shedding are enforced **during** the reply wait: the poll
loop calls the ambient ticket's ``check_deadline`` between frames, so an
expired or shed call unwinds mid-wait.  Its eventual reply is identified
by ``call_id`` and discarded by the next caller on that worker — an
abandoned call never desynchronises the pipe.  A worker found dead
raises :class:`~repro.errors.WorkerCrashed` (a
:class:`~repro.errors.RemoteError`), which the skeletons' failure paths
turn into a fail-fast ``ResultCollector.fail``.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any

from repro.aop.plan import piece_view
from repro.errors import MiddlewareError, RemoteError, ReplyDropped, WorkerCrashed
from repro.faults.schedule import fire_fault
from repro.middleware.base import Middleware, RemoteRef
from repro.middleware.serialize import ExportEnvelope, RequestEnvelope, Serializer
from repro.runtime.dispatch import current_dispatch, dispatch_id
from repro.runtime.procbackend import ProcessBackend, ProcWorker

__all__ = ["ProcMiddleware"]


class _Export:
    """Parent-side record for one exported servant."""

    __slots__ = ("worker", "ref", "local")

    def __init__(self, worker: ProcWorker, ref: RemoteRef, local: Any):
        self.worker = worker
        self.ref = ref
        #: the parent-side twin the client code holds — its state does
        #: NOT track the remote copy (value semantics, like RMI)
        self.local = local


class ProcMiddleware(Middleware):
    """Export / invoke over resident worker processes."""

    name = "process"

    def __init__(
        self,
        backend: ProcessBackend | None = None,
        copy_payloads: bool = True,
        respawn: bool = True,
    ):
        if backend is not None and not isinstance(backend, ProcessBackend):
            raise MiddlewareError(
                f"ProcMiddleware needs a ProcessBackend to park its "
                f"workers on, got {type(backend).__name__}"
            )
        self.backend = backend if backend is not None else ProcessBackend()
        # copy mode is meaningless here (pickling IS the copy); the
        # serializer exists for its accounting: messages == marshalling
        # passes, the invariant the pack-amortisation bench asserts
        self.serializer = Serializer(copy=copy_payloads)
        self._servants: dict[int, _Export] = {}
        self._call_ids = itertools.count(1)
        self.calls = 0
        self.oneway_calls = 0
        self.batched_calls = 0
        self.worker_crashes = 0
        #: refill a crashed servant's worker from the parent-side twin so
        #: a retried piece finds a healthy process behind the same ref
        self.respawn = respawn
        self.worker_respawns = 0
        self._refill_lock = threading.Lock()

    # -- export -------------------------------------------------------------

    def export(self, obj: Any, node: Any = None) -> RemoteRef:
        """Ship ``obj`` into a fresh resident worker process.

        Waits for the worker's export acknowledgement: a servant that
        cannot materialise in the child (unpicklable state, a class a
        spawn-started child cannot import) fails HERE, at deploy time,
        not on the first invocation.
        """
        ref = RemoteRef(
            node.node_id if node is not None else -1,
            self.name,
            type(obj).__name__,
        )
        # encode BEFORE forking: an unpicklable servant fails with no
        # worker process to clean up (nothing to leak)
        frame = self.serializer.encode(
            ExportEnvelope(ref.object_id, obj, type(obj).__name__)
        )
        worker = self.backend.new_worker()
        try:
            with worker.lock:
                worker.send(frame)
                reply = self.serializer.decode(worker.recv())
        except BaseException:
            worker.stop()
            raise
        if reply.outcome == "error":
            worker.stop()
            raise MiddlewareError(
                f"exporting {type(obj).__name__} to worker process "
                f"{worker.name} failed: {reply.payload}"
            )
        self._servants[ref.object_id] = _Export(worker, ref, obj)
        if node is not None:
            node.place(obj)
        return ref

    def servant_of(self, ref: RemoteRef) -> Any:
        """The parent-side twin behind a ref (observability only: the
        authoritative state lives in the worker process)."""
        export = self._servants.get(ref.object_id)
        if export is None:
            raise MiddlewareError(f"unknown ref {ref!r}")
        return export.local

    def worker_of(self, ref: RemoteRef) -> ProcWorker:
        """The resident worker hosting a ref (fault-injection hook)."""
        export = self._servants.get(ref.object_id)
        if export is None:
            raise MiddlewareError(f"unknown ref {ref!r}")
        return export.worker

    # -- invoke -------------------------------------------------------------

    def invoke(
        self,
        ref: RemoteRef,
        method: str,
        args: tuple = (),
        kwargs: dict | None = None,
        oneway: bool = False,
    ) -> Any:
        export = self._require(ref)
        self.calls += 1
        if oneway:
            self.oneway_calls += 1
        envelope = RequestEnvelope(
            next(self._call_ids),
            ref.object_id,
            method,
            tuple(args),
            dict(kwargs or {}),
            oneway=oneway,
            context_id=dispatch_id(),
        )
        reply = self._round_trip(export, envelope)
        if oneway:
            return None
        if reply.outcome == "error":
            raise self._remote_error(ref, method, reply.payload)
        return reply.payload

    def invoke_batch(
        self, ref: RemoteRef, method: str, pieces: Any, oneway: bool = False
    ) -> list:
        """Ship a whole pack as ONE envelope/reply pair: one marshalling
        pass, one pipe frame, one
        :meth:`~repro.aop.plan.MethodTable.invoke_batch` dispatch — the
        per-frame pickling overhead is paid once per pack, not per item
        (the process-backend face of communication packing)."""
        export = self._require(ref)
        self.calls += 1
        self.batched_calls += 1
        if oneway:
            self.oneway_calls += 1
        views = [
            (tuple(args), dict(kwargs))
            for args, kwargs in map(piece_view, pieces)
        ]
        envelope = RequestEnvelope(
            next(self._call_ids),
            ref.object_id,
            method,
            views,
            None,
            oneway=oneway,
            batch=True,
            context_id=dispatch_id(),
        )
        reply = self._round_trip(export, envelope)
        if oneway:
            return [None] * len(views)
        if reply.outcome == "error":
            raise self._remote_error(ref, method, reply.payload, batch=True)
        return list(reply.payload)

    def _require(self, ref: RemoteRef) -> _Export:
        export = self._servants.get(ref.object_id)
        if export is None:
            raise MiddlewareError(f"unknown ref {ref!r}")
        return export

    def _round_trip(self, export: _Export, envelope: RequestEnvelope) -> Any:
        """One request/reply over the servant's worker pipe.

        The ambient dispatch ticket (this invoke runs on the caller's
        activity) is consulted before the send and between reply polls:
        a shed or deadline-expired call raises its cancellation cause
        mid-wait.  ``attribute_remote`` is bumped like the local
        middleware's — the servant-side execution happens on behalf of
        the ambient call.  Stale frames from calls that abandoned their
        wait are recognised by ``call_id`` and dropped.
        """
        context = current_dispatch()

        def check() -> None:
            if context is not None and hasattr(context, "check_deadline"):
                context.check_deadline("awaiting a process-backend reply")

        if context is not None and hasattr(context, "attribute_remote"):
            context.attribute_remote()
        check()  # don't ship work for a call that is already cancelled
        frame = self.serializer.encode(envelope)  # names a culprit field
        worker = export.worker
        # the "proc" fault site: consulted once per round trip, indexed
        # by the resident worker.  kill_worker SIGKILLs the real process
        # and lets the send/recv below surface the genuine WorkerCrashed
        # (the full obituary path, not a synthetic error); delay_reply
        # stalls the round trip; drop_reply completes the call in the
        # worker but discards the matched reply on the way back.
        event = fire_fault("proc", worker.index)
        if event is not None:
            if event.kind == "kill_worker":
                worker.kill()
            elif event.kind == "delay_reply":
                time.sleep(event.delay)
        try:
            with worker.lock:
                worker.send(frame)
                if envelope.oneway:
                    return None
                while True:
                    reply = self.serializer.decode(worker.recv(check=check))
                    if reply.call_id in (envelope.call_id, -1):
                        if event is not None and event.kind == "drop_reply":
                            raise ReplyDropped(
                                f"injected reply drop on worker "
                                f"{worker.name} (call {envelope.call_id})"
                            )
                        return reply
                    # a previous caller's abandoned reply: discard
        except WorkerCrashed:
            self.worker_crashes += 1
            if self.respawn:
                self._refill(export, worker)
            raise

    def _refill(self, export: _Export, dead: ProcWorker) -> None:
        """Replace a crashed servant worker: re-export the parent-side
        twin into a fresh process behind the SAME ref, so the retry that
        follows the :class:`~repro.errors.WorkerCrashed` finds a healthy
        resident.  The twin carries deploy-time state (value semantics) —
        mid-run servant mutations die with the process, which is the
        honest recovery contract for state that only lived remotely.

        Best-effort and idempotent: concurrent crashed calls on one
        worker race here, the identity check makes the first one refill
        and the rest keep the already-fresh worker.
        """
        with self._refill_lock:
            if export.worker is not dead:
                return  # another caller already refilled this servant
            try:
                frame = self.serializer.encode(
                    ExportEnvelope(
                        export.ref.object_id,
                        export.local,
                        export.ref.type_name,
                    )
                )
                fresh = self.backend.new_worker()
                try:
                    with fresh.lock:
                        fresh.send(frame)
                        reply = self.serializer.decode(fresh.recv())
                    if reply.outcome == "error":
                        fresh.stop()
                        return  # leave the export dead; callers keep failing
                except BaseException:
                    fresh.stop()
                    raise
                export.worker = fresh
                self.worker_respawns += 1
            except Exception:  # noqa: BLE001 - refill is best-effort
                return
            finally:
                dead.stop()  # reap the corpse (idempotent)

    def _remote_error(
        self, ref: RemoteRef, method: str, payload: Any, batch: bool = False
    ) -> RemoteError:
        kind = "remote batched invocation" if batch else "remote invocation"
        error = RemoteError(
            f"{kind} {ref.type_name}.{method} failed in worker process: "
            f"{payload}",
            cause=payload,
        )
        # keep the rendered worker-side traceback reachable on the
        # client-facing error, not only on the (possibly re-wrapped) cause
        remote_tb = getattr(payload, "remote_traceback", None)
        if remote_tb is not None:
            error.remote_traceback = remote_tb  # type: ignore[attr-defined]
        return error

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every resident worker this middleware exported to
        (idempotent; reached from ``on_undeploy``/``ParallelApp.__exit__``
        and backstopped by the backend's ``atexit`` hook)."""
        for export in self._servants.values():
            export.worker.stop()
        self._servants.clear()
