"""In-process middleware.

The null object of the middleware family: ``export`` records placement
but ``invoke`` is a direct method call with no communication cost.  Two
uses:

* the "distribution unplugged" configuration (FarmThreads) still runs
  through a uniform code path in tests;
* the functional (real-thread) mode, where there is no simulated cluster.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.aop.plan import MethodTable
from repro.cluster.machine import Node
from repro.errors import MiddlewareError, RemoteError
from repro.middleware.base import Middleware, RemoteRef
from repro.middleware.context import server_dispatch
from repro.runtime.dispatch import current_dispatch

__all__ = ["LocalMiddleware"]


def _attribute_dispatch() -> None:
    """Bump the ambient ticket's servant-side counter (the in-process
    middleware executes on the caller's activity, so the originating
    per-call context is already installed — no wire id needed)."""
    context = current_dispatch()
    if context is not None and hasattr(context, "attribute_remote"):
        context.attribute_remote()


class LocalMiddleware(Middleware):
    """Direct dispatch; placement is bookkeeping only."""

    name = "local"

    def __init__(self) -> None:
        self._objects: dict[int, tuple[Any, MethodTable]] = {}
        self.calls = 0

    def export(self, obj: Any, node: Node | None = None) -> RemoteRef:
        ref = RemoteRef(node.node_id if node is not None else -1, self.name,
                        type(obj).__name__)
        self._objects[ref.object_id] = (obj, MethodTable(type(obj)))
        if node is not None:
            node.place(obj)
        return ref

    def invoke(
        self,
        ref: RemoteRef,
        method: str,
        args: tuple = (),
        kwargs: dict | None = None,
        oneway: bool = False,
    ) -> Any:
        entry = self._objects.get(ref.object_id)
        if entry is None:
            raise MiddlewareError(f"unknown ref {ref!r}")
        obj, table = entry
        self.calls += 1
        _attribute_dispatch()
        try:
            with server_dispatch():
                return table.invoke(obj, method, args, kwargs or {})
        except Exception as exc:  # noqa: BLE001 - uniform error surface
            raise RemoteError(
                f"local invocation {ref.type_name}.{method} failed: {exc}",
                cause=exc,
            ) from exc

    def invoke_batch(
        self, ref: RemoteRef, method: str, pieces: Any, oneway: bool = False
    ) -> list:
        """Serve a pack through the servant's compiled batch plan: one
        advice pass (one BatchJoinPoint) for the whole pack.  A
        ``oneway`` pack still executes (there is no wire to race) but
        reports ``None`` placeholders, matching the remote contract."""
        entry = self._objects.get(ref.object_id)
        if entry is None:
            raise MiddlewareError(f"unknown ref {ref!r}")
        obj, table = entry
        self.calls += 1
        _attribute_dispatch()
        try:
            with server_dispatch():
                results = table.invoke_batch(obj, method, pieces)
                return [None] * len(results) if oneway else results
        except Exception as exc:  # noqa: BLE001 - uniform error surface
            raise RemoteError(
                f"local batched invocation {ref.type_name}.{method} "
                f"failed: {exc}",
                cause=exc,
            ) from exc

    def servant_of(self, ref: RemoteRef) -> Any:
        entry = self._objects.get(ref.object_id)
        if entry is None:
            raise MiddlewareError(f"unknown ref {ref!r}")
        return entry[0]

    def shutdown(self) -> None:
        self._objects.clear()
