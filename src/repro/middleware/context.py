"""Where-am-I context for distributed execution.

Tracks, per thread (= per simulated process):

* the :class:`~repro.cluster.machine.Node` the current activity runs on —
  the cost model charges CPU there and the network computes src→dst
  delays from it;
* whether we are inside a middleware *server dispatch* — the distribution
  aspects consult this to avoid re-redirecting the servant's own
  execution back through the middleware (the server side of the paper's
  Figure 13 executes the call locally).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Node

__all__ = [
    "current_node",
    "use_node",
    "in_server_dispatch",
    "server_dispatch",
]


class _NodeState(threading.local):
    def __init__(self) -> None:
        self.node: "Node | None" = None
        self.dispatch_depth = 0


_STATE = _NodeState()


def current_node() -> "Node | None":
    """The node the calling activity is placed on (``None`` = unplaced,
    treated as colocated/loopback by the network model)."""
    return _STATE.node


@contextmanager
def use_node(node: "Node | None") -> Iterator[None]:
    """Pin the calling thread/process to ``node`` within the block."""
    previous = _STATE.node
    _STATE.node = node
    try:
        yield
    finally:
        _STATE.node = previous


def in_server_dispatch() -> bool:
    """Is this activity executing a servant method on behalf of the
    middleware?"""
    return _STATE.dispatch_depth > 0


@contextmanager
def server_dispatch() -> Iterator[None]:
    """Mark servant execution (distribution aspects must not redirect)."""
    _STATE.dispatch_depth += 1
    try:
        yield
    finally:
        _STATE.dispatch_depth -= 1
