"""Simulated Java RMI.

The cost profile encodes why RMI is the slower middleware in Figure 17:
per-call protocol work on both sides (stub/skeleton, TCP stream per
operation) and relatively expensive Java object serialisation.  Every
invocation is a synchronous request/response; ``oneway`` is *not*
supported (RMI has no fire-and-forget), so asynchrony must come from the
concurrency aspect spawning the call — exactly the paper's composition.

The four source-code modifications RMI imposes (Section 5.3) map to:

1. remote interface        → :meth:`RmiMiddleware.export` accepts any
                             object; the distribution *aspect* declares
                             the interface via ``declare_parents``;
2. export + registry bind  → :meth:`export_and_bind`;
3. client lookup           → :meth:`lookup`;
4. try/catch RemoteException → :class:`~repro.errors.RemoteError` raised
                             from :meth:`invoke`, handled in the aspect.

Server-side skeleton dispatch is plan-backed (inherited from
:class:`~repro.middleware.base.SimMiddleware`): each exported servant
carries a :class:`~repro.aop.plan.MethodTable` whose entries are the
weaver's compiled dispatch plans, so per-request work is one table hit
rather than attribute resolution plus an advice-chain walk.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.machine import Node
from repro.cluster.topology import Cluster
from repro.errors import MiddlewareError
from repro.middleware.base import MiddlewareCosts, RemoteRef, SimMiddleware
from repro.middleware.registry import NameRegistry

__all__ = ["RMI_COSTS", "RmiMiddleware"]

#: Default RMI cost profile (seconds).  Calibrated in bench/costmodel.py;
#: these are literature-plausible magnitudes for JDK 1.5 RMI on GbE.
RMI_COSTS = MiddlewareCosts(
    client_overhead=260e-6,
    server_overhead=200e-6,
    serialize_per_byte=5.0e-9,
    deserialize_per_byte=5.0e-9,
)


class RmiMiddleware(SimMiddleware):
    """RMI: registry + synchronous remote method invocation."""

    name = "rmi"

    def __init__(
        self,
        cluster: Cluster,
        costs: MiddlewareCosts = RMI_COSTS,
        copy_payloads: bool = True,
    ):
        super().__init__(cluster, costs, copy_payloads)
        self.registry = NameRegistry(cluster)

    # -- naming ------------------------------------------------------------

    def export_and_bind(self, name: str, obj: Any, node: Node) -> RemoteRef:
        """Server-side setup (paper modification #2): export the servant
        and register it under ``name``."""
        ref = self.export(obj, node)
        self.registry.bind(name, ref)
        return ref

    def lookup(self, name: str) -> RemoteRef:
        """Client-side initial reference (paper modification #3)."""
        return self.registry.lookup(name)

    # -- invocation --------------------------------------------------------

    def invoke(
        self,
        ref: RemoteRef,
        method: str,
        args: tuple = (),
        kwargs: dict | None = None,
        oneway: bool = False,
    ) -> Any:
        if oneway:
            raise MiddlewareError("RMI has no one-way invocations")
        return super().invoke(ref, method, args, kwargs, oneway=False)

    def invoke_batch(
        self, ref: RemoteRef, method: str, pieces: Any, oneway: bool = False
    ) -> list:
        if oneway:
            raise MiddlewareError("RMI has no one-way invocations")
        return super().invoke_batch(ref, method, pieces, oneway=False)
