"""Middleware interface and shared machinery.

A *middleware* exports objects to cluster nodes and carries invocations
to them.  Both concrete middlewares (RMI and MPP) share:

* a :class:`RemoteRef` — opaque handle naming an exported servant;
* a :class:`MiddlewareCosts` profile — the per-call and per-byte costs
  that distinguish them (this is where "MPP introduces lower
  communication overhead than Java RMI" lives);
* the server-side dispatch pattern: requests arrive on a channel owned by
  the servant's node; each request is served by a fresh activity (RMI
  semantics — concurrent calls overlap unless a synchronisation aspect
  serialises them).  Method resolution goes through a per-servant-class
  :class:`~repro.aop.plan.MethodTable` built at export time: the table's
  entries are the weaver's compiled dispatch plans, refreshed only when
  the weaver's version moves, so the skeleton stops resolving methods
  per request.

Cost charging uses the *caller's* CPU for marshalling and the *servant's*
CPU for unmarshalling + dispatch, with wire time from the cluster network
model.

Every request carries the **originating dispatch-ticket id**
(:func:`repro.runtime.dispatch.dispatch_id`): the server-side activity
re-installs the caller's per-call
:class:`~repro.parallel.partition.base.DispatchContext` around the
servant execution, so work done — and replies produced — on behalf of a
call stay attributed to that call however many calls are in flight on
one servant.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass
from typing import Any

from repro.aop.plan import MethodTable, piece_view
from repro.cluster.machine import Node
from repro.cluster.topology import Cluster
from repro.errors import MiddlewareError, RemoteError
from repro.middleware.context import current_node, server_dispatch, use_node
from repro.middleware.serialize import Serializer, measure_size
from repro.runtime.backend import current_backend
from repro.runtime.dispatch import (
    dispatch_id,
    find_dispatch,
    shield_dispatch,
    use_dispatch,
)
from repro.runtime.simbackend import SimBackend
from repro.sim import Channel, Simulator

__all__ = [
    "MiddlewareCosts",
    "RemoteRef",
    "Middleware",
    "SimMiddleware",
    "perform_request",
]


def perform_request(
    table: MethodTable,
    obj: Any,
    method: str,
    args: Any,
    kwargs: Any,
    batch: bool = False,
) -> tuple[str, Any]:
    """Execute one servant request; returns ``("ok", result)`` or
    ``("error", exc)``.

    The shared server-side dispatch step of every transport — the
    simulated middlewares' per-request activities and the process
    backend's resident workers both call it: execution runs under the
    ``server_dispatch`` marker so every parallelisation aspect steps
    aside (crucial in a forked worker, which inherits the parent's woven
    classes and deployed aspects), and method resolution goes through
    the servant's compiled :class:`~repro.aop.plan.MethodTable`.  For
    batched requests ``args`` holds the pack's piece views.

    An ``async def`` servant method hands back a coroutine here; the
    outcome is resolved through the current backend's ``finish`` hook
    before it is shipped, so a middleware stack either runs it on a
    loop-owning backend or ships the backend's targeted configuration
    error — never a raw, unmarshalable coroutine object.
    """
    try:
        with server_dispatch():
            if batch:
                result = table.invoke_batch(obj, method, args)
            else:
                result = table.invoke(obj, method, args, kwargs or {})
            result = current_backend().finish(result)
        return ("ok", result)
    except Exception as exc:  # noqa: BLE001 - shipped to the client
        return ("error", exc)


@dataclass(frozen=True)
class MiddlewareCosts:
    """Per-invocation cost profile (seconds / seconds-per-byte).

    ``client_overhead``: stub + protocol work on the caller per call;
    ``server_overhead``: skeleton + dispatch work on the servant per call;
    ``serialize_per_byte`` / ``deserialize_per_byte``: marshalling rates.
    """

    client_overhead: float = 0.0
    server_overhead: float = 0.0
    serialize_per_byte: float = 0.0
    deserialize_per_byte: float = 0.0

    def marshal_time(self, size_bytes: int) -> float:
        return self.client_overhead + size_bytes * self.serialize_per_byte

    def unmarshal_time(self, size_bytes: int) -> float:
        return self.server_overhead + size_bytes * self.deserialize_per_byte


class RemoteRef:
    """Handle to an exported servant."""

    _ids = itertools.count(1)

    __slots__ = ("object_id", "node_id", "middleware_name", "type_name")

    def __init__(self, node_id: int, middleware_name: str, type_name: str):
        self.object_id = next(RemoteRef._ids)
        self.node_id = node_id
        self.middleware_name = middleware_name
        self.type_name = type_name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RemoteRef #{self.object_id} {self.type_name}@node{self.node_id} "
            f"via {self.middleware_name}>"
        )


class Middleware(abc.ABC):
    """Export / invoke interface implemented by all middlewares."""

    name: str = "middleware"

    @abc.abstractmethod
    def export(self, obj: Any, node: Node) -> RemoteRef:
        """Install ``obj`` as a servant on ``node``; returns its ref."""

    @abc.abstractmethod
    def invoke(
        self,
        ref: RemoteRef,
        method: str,
        args: tuple = (),
        kwargs: dict | None = None,
        oneway: bool = False,
    ) -> Any:
        """Call ``method`` on the servant behind ``ref``.

        ``oneway=True`` returns immediately after the send (no reply,
        result is ``None``) where the middleware supports it.
        """

    def invoke_batch(
        self, ref: RemoteRef, method: str, pieces: Any, oneway: bool = False
    ) -> list:
        """Call ``method`` once per piece in a single *batched* request.

        ``pieces`` are ``CallPiece``-shaped objects or ``(args, kwargs)``
        pairs; the reply is the list of per-item results in piece order.
        With ``oneway=True`` the pack is fire-and-forget where the
        middleware supports it: the call returns (a list of ``None``
        placeholders) as soon as the send completes, and no reply is
        ever produced or waited for.  The base implementation degrades
        to one :meth:`invoke` per piece (correct, unbatched); transports
        that can ship a pack as one message override it.
        """
        return [
            self.invoke(ref, method, tuple(args), dict(kwargs), oneway=oneway)
            for args, kwargs in map(piece_view, pieces)
        ]

    @abc.abstractmethod
    def shutdown(self) -> None:
        """Stop server activities (end of run)."""


class _Servant:
    """Server-side record for one exported object."""

    __slots__ = ("obj", "node", "channel", "ref", "table")

    def __init__(self, obj: Any, node: Node, channel: Channel, ref: RemoteRef):
        self.obj = obj
        self.node = node
        self.channel = channel
        self.ref = ref
        #: plan-backed dispatch table for the servant's class
        self.table = MethodTable(type(obj))


class _Request:
    __slots__ = (
        "method",
        "args",
        "kwargs",
        "reply_channel",
        "oneway",
        "size",
        "caller_node",
        "batch",
        "context_id",
    )

    def __init__(self, method, args, kwargs, reply_channel, oneway, size,
                 caller_node, batch=False, context_id=None):
        self.method = method
        #: for batched requests ``args`` holds the piece views and
        #: ``kwargs`` is unused
        self.args = args
        self.kwargs = kwargs
        self.reply_channel = reply_channel
        self.oneway = oneway
        self.size = size
        self.caller_node = caller_node
        self.batch = batch
        #: originating per-call dispatch ticket id (None outside any):
        #: the servant side re-installs the ticket so work performed on
        #: behalf of a call — and its reply — stays attributed to it
        self.context_id = context_id


_STOP = object()


class SimMiddleware(Middleware):
    """Common simulated middleware: channels + per-request activities.

    Concrete subclasses supply the cost profile and a name; RMI adds a
    name-server registry on top, MPP adds the rank/collective API.
    """

    def __init__(
        self,
        cluster: Cluster,
        costs: MiddlewareCosts,
        copy_payloads: bool = True,
    ):
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.costs = costs
        self.serializer = Serializer(copy=copy_payloads)
        self.backend = SimBackend(self.sim)
        self._servants: dict[int, _Servant] = {}
        self._servers: list[Any] = []
        self.calls = 0
        self.oneway_calls = 0
        self.batched_calls = 0

    # -- export -----------------------------------------------------------

    def export(self, obj: Any, node: Node) -> RemoteRef:
        ref = RemoteRef(node.node_id, self.name, type(obj).__name__)
        channel = Channel(self.sim, name=f"{self.name}.srv{ref.object_id}")
        servant = _Servant(obj, node, channel, ref)
        self._servants[ref.object_id] = servant
        node.place(obj)
        # shield: the accept loop outlives any call that happens to be
        # exporting (it resolves each request's OWN ticket id instead)
        handle = self.backend.spawn(
            shield_dispatch(lambda: self._serve(servant)),
            name=f"{self.name}.server.{ref.object_id}",
            daemon=True,
        )
        self._servers.append((servant, handle))
        return ref

    def servant_of(self, ref: RemoteRef) -> Any:
        """The actual object behind a ref (testing/metrics use)."""
        servant = self._servants.get(ref.object_id)
        if servant is None:
            raise MiddlewareError(f"unknown ref {ref!r}")
        return servant.obj

    def node_of(self, ref: RemoteRef) -> Node:
        servant = self._servants.get(ref.object_id)
        if servant is None:
            raise MiddlewareError(f"unknown ref {ref!r}")
        return servant.node

    # -- invoke -----------------------------------------------------------

    def invoke(
        self,
        ref: RemoteRef,
        method: str,
        args: tuple = (),
        kwargs: dict | None = None,
        oneway: bool = False,
    ) -> Any:
        kwargs = kwargs or {}
        servant = self._servants.get(ref.object_id)
        if servant is None:
            raise MiddlewareError(f"unknown ref {ref!r}")
        self.calls += 1
        if oneway:
            self.oneway_calls += 1
        src = current_node()
        # 1. marshal on the caller's CPU
        wire_args, size = self.serializer.pack((args, kwargs))
        if src is not None:
            src.execute(self.costs.marshal_time(size))
        # 2. wire transit
        delay = self.cluster.transit_delay(size, src, servant.node)
        reply_channel = (
            None if oneway else Channel(self.sim, name=f"{self.name}.reply")
        )
        servant.channel.send(
            _Request(
                method, wire_args[0], wire_args[1], reply_channel, oneway, size,
                src, context_id=dispatch_id(),
            ),
            delay=delay,
            size_bytes=size,
            tag=method,
        )
        if oneway:
            return None
        # 3. synchronous wait for the reply
        reply = reply_channel.recv()
        outcome, payload = reply.payload
        # 4. unmarshal the reply on the caller's CPU
        if src is not None:
            src.execute(self.costs.unmarshal_time(reply.size_bytes))
        if outcome == "error":
            raise RemoteError(
                f"remote invocation {ref.type_name}.{method} failed: {payload}",
                cause=payload,
            )
        return self.serializer.unpack(payload)

    def invoke_batch(
        self, ref: RemoteRef, method: str, pieces: Any, oneway: bool = False
    ) -> list:
        """Ship a whole pack as ONE request/reply pair.

        The pack's piece views are marshalled together (one marshalling
        pass, one wire transit, one skeleton dispatch through
        :meth:`~repro.aop.plan.MethodTable.invoke_batch`) — this is the
        wire-level face of communication packing: the per-message
        overheads are paid once per pack instead of once per item.

        With ``oneway=True`` the pack is fire-and-forget: no reply
        channel is created, the caller resumes as soon as the send (and
        its marshalling charge) completes, and the per-item results are
        ``None`` placeholders — one message on the wire, zero reply
        wait.
        """
        servant = self._servants.get(ref.object_id)
        if servant is None:
            raise MiddlewareError(f"unknown ref {ref!r}")
        self.calls += 1
        self.batched_calls += 1
        if oneway:
            self.oneway_calls += 1
        src = current_node()
        views = [
            (tuple(args), dict(kwargs))
            for args, kwargs in map(piece_view, pieces)
        ]
        wire_views, size = self.serializer.pack(views)
        if src is not None:
            src.execute(self.costs.marshal_time(size))
        delay = self.cluster.transit_delay(size, src, servant.node)
        reply_channel = (
            None if oneway else Channel(self.sim, name=f"{self.name}.reply")
        )
        servant.channel.send(
            _Request(
                method, wire_views, None, reply_channel, oneway, size, src,
                batch=True, context_id=dispatch_id(),
            ),
            delay=delay,
            size_bytes=size,
            tag=method,
        )
        if oneway:
            return [None] * len(views)
        reply = reply_channel.recv()
        outcome, payload = reply.payload
        if src is not None:
            src.execute(self.costs.unmarshal_time(reply.size_bytes))
        if outcome == "error":
            raise RemoteError(
                f"remote batched invocation {ref.type_name}.{method} "
                f"failed: {payload}",
                cause=payload,
            )
        return self.serializer.unpack(payload)

    # -- server side -----------------------------------------------------------

    def _serve(self, servant: _Servant) -> None:
        """Accept loop: one activity per request (RMI thread-per-call)."""
        with use_node(servant.node):
            while True:
                message = servant.channel.recv()
                if message.payload is _STOP:
                    return
                request: _Request = message.payload
                self.backend.spawn(
                    lambda r=request: self._dispatch(servant, r),
                    name=f"{self.name}.dispatch.{servant.ref.object_id}",
                )

    def _dispatch(self, servant: _Servant, request: _Request) -> None:
        # resolve the originating per-call ticket (it travels the wire as
        # an id, not an object) and execute the servant work under it —
        # the request's reply therefore resolves against the call that
        # sent it, however many calls are in flight on this servant
        context = find_dispatch(request.context_id)
        if context is not None and getattr(context, "cancelled", False):
            # the originating call is gone (shed, or its deadline
            # expired): don't burn servant CPU on work nobody will
            # collect — reply with the cancellation cause (the caller
            # side is unwinding anyway) and keep serving other calls
            if not request.oneway:
                cause = getattr(context, "cancel_cause", None)
                self._reply_error(
                    servant,
                    request,
                    cause
                    if cause is not None
                    else MiddlewareError("originating call was cancelled"),
                )
            return
        if context is not None and hasattr(context, "attribute_remote"):
            context.attribute_remote()
        with use_node(servant.node):
            # unmarshal on the servant's CPU
            servant.node.execute(self.costs.unmarshal_time(request.size))
            with use_dispatch(context):
                outcome = perform_request(
                    servant.table,
                    servant.obj,
                    request.method,
                    request.args,
                    request.kwargs,
                    batch=request.batch,
                )
            if request.oneway:
                return
            wire_result, size = self.serializer.pack(outcome[1])
            servant.node.execute(self.costs.marshal_time(size))
            delay = self.cluster.transit_delay(size, servant.node, request.caller_node)
            request.reply_channel.send(
                (outcome[0], wire_result if outcome[0] == "ok" else outcome[1]),
                delay=delay,
                size_bytes=size,
                tag="reply",
            )

    def _reply_error(
        self, servant: _Servant, request: _Request, exc: BaseException
    ) -> None:
        """Ship an error reply without executing the servant method
        (used for requests whose originating ticket was cancelled)."""
        delay = self.cluster.transit_delay(
            0, servant.node, request.caller_node
        )
        request.reply_channel.send(
            ("error", exc), delay=delay, size_bytes=0, tag="reply"
        )

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self) -> None:
        for servant, _handle in self._servers:
            servant.channel.send(_STOP)
        self._servers.clear()
