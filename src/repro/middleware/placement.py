"""Object-placement policies.

"Distribution aspect is also responsible by the selection of the most
adequate node for a particular object instance.  Several policies can be
implemented in this aspect (e.g., random, round-robin)."  — Section 4.3.

A policy maps the *i*-th placement request onto a node of the cluster.
"""

from __future__ import annotations

import abc
import random
from typing import Any

from repro.cluster.machine import Node
from repro.cluster.topology import Cluster
from repro.errors import PlacementError

__all__ = [
    "PlacementPolicy",
    "RoundRobin",
    "RandomPlacement",
    "BlockPlacement",
    "LeastLoaded",
    "FixedPlacement",
]


class PlacementPolicy(abc.ABC):
    """Chooses the node for each successive exported object."""

    @abc.abstractmethod
    def choose(self, cluster: Cluster, index: int, obj: Any = None) -> Node:
        """Node for the ``index``-th placement (0-based)."""

    def reset(self) -> None:
        """Forget placement history (new experiment run)."""


class RoundRobin(PlacementPolicy):
    """Cycle through nodes, optionally starting at an offset.

    The default (offset 0) also uses the head node: the paper's client
    mostly waits, so its machine hosts filters too.
    """

    def __init__(self, offset: int = 0):
        self.offset = offset

    def choose(self, cluster: Cluster, index: int, obj: Any = None) -> Node:
        return cluster.nodes[(self.offset + index) % len(cluster.nodes)]


class RandomPlacement(PlacementPolicy):
    """Uniform random node, deterministic under a fixed seed."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, cluster: Cluster, index: int, obj: Any = None) -> Node:
        return self._rng.choice(cluster.nodes)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class BlockPlacement(PlacementPolicy):
    """First ``block`` objects on node 0, next ``block`` on node 1, ...

    Natural for heartbeat data partitions where neighbouring blocks
    should share a node.
    """

    def __init__(self, block: int):
        if block < 1:
            raise PlacementError("block size must be >= 1")
        self.block = block

    def choose(self, cluster: Cluster, index: int, obj: Any = None) -> Node:
        node_index = index // self.block
        if node_index >= len(cluster.nodes):
            node_index = node_index % len(cluster.nodes)
        return cluster.nodes[node_index]


class LeastLoaded(PlacementPolicy):
    """Node currently hosting the fewest placed objects (ties → lowest id)."""

    def choose(self, cluster: Cluster, index: int, obj: Any = None) -> Node:
        return min(
            cluster.nodes, key=lambda n: (len(n.resident_objects), n.node_id)
        )


class FixedPlacement(PlacementPolicy):
    """Everything on one node (degenerate case; useful in tests)."""

    def __init__(self, node_id: int = 0):
        self.node_id = node_id

    def choose(self, cluster: Cluster, index: int, obj: Any = None) -> Node:
        return cluster.node(self.node_id)
