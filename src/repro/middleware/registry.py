"""RMI name server.

Java RMI's ``rmiregistry``: servants are *bound* under string names
(the paper generates ``PS<instance number>``) and clients *look up* an
initial reference — the paper's client-side modification #3.

A lookup performed from a simulated process pays one network round-trip
to the registry's node, like a real registry query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import RegistryError
from repro.middleware.context import current_node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Node
    from repro.cluster.topology import Cluster
    from repro.middleware.base import RemoteRef

__all__ = ["NameRegistry"]

_QUERY_BYTES = 128


class NameRegistry:
    """Name → RemoteRef table hosted on one node."""

    def __init__(self, cluster: "Cluster", node: "Node | None" = None):
        self.cluster = cluster
        self.node = node if node is not None else cluster.head
        self._bindings: dict[str, "RemoteRef"] = {}
        self.lookups = 0

    def bind(self, name: str, ref: "RemoteRef") -> None:
        """Bind ``name``; rebinding an existing name is an error
        (``Naming.bind`` semantics — use :meth:`rebind` to replace)."""
        if name in self._bindings:
            raise RegistryError(f"name already bound: {name!r}")
        self._bindings[name] = ref

    def rebind(self, name: str, ref: "RemoteRef") -> None:
        self._bindings[name] = ref

    def unbind(self, name: str) -> None:
        if name not in self._bindings:
            raise RegistryError(f"name not bound: {name!r}")
        del self._bindings[name]

    def lookup(self, name: str) -> "RemoteRef":
        """Resolve ``name``; pays a registry round-trip when called from
        a placed simulated activity."""
        self.lookups += 1
        self._charge_roundtrip()
        ref = self._bindings.get(name)
        if ref is None:
            raise RegistryError(f"name not bound: {name!r}")
        return ref

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._bindings))

    def _charge_roundtrip(self) -> None:
        src = current_node()
        if src is None:
            return
        sim = self.cluster.sim
        delay = self.cluster.transit_delay(
            _QUERY_BYTES, src, self.node
        ) + self.cluster.transit_delay(_QUERY_BYTES, self.node, src)
        if delay > 0:
            sim.hold(delay)
