"""Distribution middlewares: simulated Java RMI, simulated MPP message
passing, a zero-cost in-process transport, and the real out-of-process
pipe transport, plus placement policies, serialisation accounting and
node context."""

from repro.middleware.base import Middleware, MiddlewareCosts, RemoteRef, SimMiddleware
from repro.middleware.context import (
    current_node,
    in_server_dispatch,
    server_dispatch,
    use_node,
)
from repro.middleware.local import LocalMiddleware
from repro.middleware.mpp import MPP_COSTS, CommWorld, MppMiddleware
from repro.middleware.proc import ProcMiddleware
from repro.middleware.placement import (
    BlockPlacement,
    FixedPlacement,
    LeastLoaded,
    PlacementPolicy,
    RandomPlacement,
    RoundRobin,
)
from repro.middleware.registry import NameRegistry
from repro.middleware.rmi import RMI_COSTS, RmiMiddleware
from repro.middleware.serialize import Serializer, measure_size

__all__ = [
    "Middleware",
    "SimMiddleware",
    "MiddlewareCosts",
    "RemoteRef",
    "RmiMiddleware",
    "RMI_COSTS",
    "MppMiddleware",
    "MPP_COSTS",
    "CommWorld",
    "LocalMiddleware",
    "ProcMiddleware",
    "NameRegistry",
    "PlacementPolicy",
    "RoundRobin",
    "RandomPlacement",
    "BlockPlacement",
    "LeastLoaded",
    "FixedPlacement",
    "Serializer",
    "measure_size",
    "current_node",
    "use_node",
    "in_server_dispatch",
    "server_dispatch",
]
