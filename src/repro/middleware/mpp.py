"""Simulated MPP (Message Passing Package).

The paper's MPP is a Java message-passing library over ``java.nio``: raw
buffers, no registry, cheap per-message costs — which is why FarmMPP
beats FarmRMI in Figure 17.  Two layers here:

* :class:`MppMiddleware` — the object-transport the distribution aspect
  uses: same export/invoke surface as RMI but with the cheaper cost
  profile and genuine ``oneway`` sends (a void remote call is a single
  message; the paper's Figure 15 server loop is our servant dispatch);
* :class:`CommWorld` — an MPI-flavoured rank API (send/recv/bcast/
  scatter/gather/barrier) for code written against message passing
  directly, exercised by tests and the hybrid distribution aspect.

Like RMI, the servant-side dispatch loop inherited from
:class:`~repro.middleware.base.SimMiddleware` routes through the
per-servant-class :class:`~repro.aop.plan.MethodTable` of compiled
dispatch plans instead of resolving methods per request.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cluster.machine import Node
from repro.cluster.topology import Cluster
from repro.errors import MiddlewareError
from repro.middleware.base import MiddlewareCosts, SimMiddleware
from repro.middleware.context import current_node, use_node
from repro.middleware.serialize import Serializer
from repro.runtime.simbackend import SimBackend
from repro.sim import Channel

__all__ = ["MPP_COSTS", "MppMiddleware", "CommWorld"]

#: MPP cost profile: nio buffers — low per-message overhead, cheap
#: (near-memcpy) marshalling.
MPP_COSTS = MiddlewareCosts(
    client_overhead=40e-6,
    server_overhead=30e-6,
    serialize_per_byte=1.0e-9,
    deserialize_per_byte=1.0e-9,
)


class MppMiddleware(SimMiddleware):
    """Message-passing object transport with one-way support."""

    name = "mpp"

    def __init__(
        self,
        cluster: Cluster,
        costs: MiddlewareCosts = MPP_COSTS,
        copy_payloads: bool = True,
    ):
        super().__init__(cluster, costs, copy_payloads)


class CommWorld:
    """Rank-addressed point-to-point and collective operations.

    Ranks are placed on nodes round-robin (or per an explicit mapping)
    and run user functions ``fn(comm, rank)`` as simulated processes.
    """

    def __init__(
        self,
        cluster: Cluster,
        n_ranks: int,
        costs: MiddlewareCosts = MPP_COSTS,
        node_of_rank: Callable[[int], int] | None = None,
    ):
        if n_ranks < 1:
            raise MiddlewareError("need at least 1 rank")
        self.cluster = cluster
        self.sim = cluster.sim
        self.n_ranks = n_ranks
        self.costs = costs
        self.serializer = Serializer(copy=True)
        self.backend = SimBackend(self.sim)
        self._node_of_rank = node_of_rank or (lambda r: r % len(cluster.nodes))
        self._mailboxes = [
            Channel(self.sim, name=f"mpp.rank{r}") for r in range(n_ranks)
        ]
        # out-of-order arrivals awaiting a tag-matched recv, per rank
        self._stashes: list[list[Any]] = [[] for _ in range(n_ranks)]
        self._handles: list[Any] = []

    # -- topology ------------------------------------------------------------

    def node(self, rank: int) -> Node:
        self._check_rank(rank)
        return self.cluster.node(self._node_of_rank(rank))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise MiddlewareError(f"rank {rank} out of range 0..{self.n_ranks - 1}")

    # -- process management -----------------------------------------------------

    def spawn_rank(self, rank: int, fn: Callable[["CommWorld", int], Any]) -> Any:
        """Start rank ``rank`` running ``fn(comm, rank)`` on its node."""
        self._check_rank(rank)
        node = self.node(rank)

        def body() -> Any:
            with use_node(node):
                return fn(self, rank)

        handle = self.backend.spawn(body, name=f"mpp.rank{rank}")
        self._handles.append(handle)
        return handle

    def spawn_all(self, fn: Callable[["CommWorld", int], Any]) -> list[Any]:
        return [self.spawn_rank(r, fn) for r in range(self.n_ranks)]

    def join_all(self) -> list[Any]:
        return [h.join() for h in self._handles]

    # -- point-to-point -----------------------------------------------------------

    def send(self, dest: int, payload: Any, tag: str = "") -> None:
        """One-way message to ``dest`` (charges sender CPU + wire)."""
        self._check_rank(dest)
        wire, size = self.serializer.pack(payload)
        src = current_node()
        if src is not None:
            src.execute(self.costs.marshal_time(size))
        delay = self.cluster.transit_delay(size, src, self.node(dest))
        self._mailboxes[dest].send(wire, delay=delay, size_bytes=size, tag=tag)

    def recv(self, rank: int, tag: str | None = None, timeout: float | None = None) -> Any:
        """Blocking receive on ``rank``'s mailbox (charges receiver CPU).

        With a ``tag``, only a matching message is returned; non-matching
        arrivals are stashed for later receives (MPI tag matching).
        """
        self._check_rank(rank)
        stash = self._stashes[rank]
        message = None
        if tag is None:
            if stash:
                message = stash.pop(0)
        else:
            for i, waiting in enumerate(stash):
                if waiting.tag == tag:
                    message = stash.pop(i)
                    break
        while message is None:
            candidate = self._mailboxes[rank].recv(timeout=timeout)
            if tag is None or candidate.tag == tag:
                message = candidate
            else:
                stash.append(candidate)
        dst = current_node()
        if dst is not None:
            dst.execute(self.costs.unmarshal_time(message.size_bytes))
        return self.serializer.unpack(message.payload)

    # -- collectives (root-based, built on p2p) ------------------------------------

    def bcast(self, root: int, rank: int, payload: Any = None) -> Any:
        """Broadcast from ``root``: root sends to all, others receive."""
        if rank == root:
            for dest in range(self.n_ranks):
                if dest != root:
                    self.send(dest, payload, tag="bcast")
            return payload
        return self.recv(rank, tag="bcast")

    def scatter(self, root: int, rank: int, chunks: list[Any] | None = None) -> Any:
        """Scatter ``chunks[i]`` to rank ``i``."""
        if rank == root:
            if chunks is None or len(chunks) != self.n_ranks:
                raise MiddlewareError("scatter needs one chunk per rank")
            for dest in range(self.n_ranks):
                if dest != root:
                    self.send(dest, chunks[dest], tag="scatter")
            return chunks[root]
        return self.recv(rank, tag="scatter")

    def gather(self, root: int, rank: int, payload: Any) -> list[Any] | None:
        """Gather every rank's payload at ``root`` (rank order)."""
        if rank == root:
            parts: dict[int, Any] = {root: payload}
            for _ in range(self.n_ranks - 1):
                sender, value = self.recv(rank, tag="gather")
                parts[sender] = value
            return [parts[r] for r in range(self.n_ranks)]
        self.send(root, (rank, payload), tag="gather")
        return None

    def barrier(self, root: int, rank: int) -> None:
        """Naive two-phase barrier through ``root``."""
        if rank == root:
            for _ in range(self.n_ranks - 1):
                self.recv(rank, tag="barrier-arrive")
            for dest in range(self.n_ranks):
                if dest != root:
                    self.send(dest, None, tag="barrier-release")
        else:
            self.send(root, None, tag="barrier-arrive")
            self.recv(rank, tag="barrier-release")
