"""Serialisation with byte-size accounting.

Every remote call pays twice: CPU time to (de)serialise and wire time
proportional to payload size.  This module measures payload sizes and —
in *copy* mode — actually round-trips payloads through pickle so remote
objects observe value semantics (like Java RMI), not shared references.

Two pitfalls handled here:

* unpickling instances of *woven* classes must not re-trigger
  initialization advice — ``loads`` runs under the construction bypass;
* numpy arrays get a fast path (``nbytes`` + header, ``copy()``) so the
  benchmarks don't spend wall-clock time in pickle.
"""

from __future__ import annotations

import copy
import pickle
from typing import Any

import numpy as np

from repro.aop.cflow import bypassing_construction
from repro.errors import SerializationError

__all__ = ["Serializer", "measure_size"]

_HEADER_BYTES = 64  # envelope / framing overhead per message


def measure_size(payload: Any) -> int:
    """Approximate on-the-wire size of ``payload`` in bytes."""
    return _HEADER_BYTES + _body_size(payload)


def _body_size(payload: Any) -> int:
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8", errors="replace"))
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, (list, tuple)):
        return sum(_body_size(item) for item in payload) + 8 * len(payload)
    if isinstance(payload, dict):
        return sum(
            _body_size(k) + _body_size(v) for k, v in payload.items()
        ) + 16 * len(payload)
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:  # noqa: BLE001
        raise SerializationError(f"cannot size {type(payload).__name__}") from exc


class Serializer:
    """Copy/reference serialisation with cumulative accounting."""

    def __init__(self, copy: bool = True):
        self.copy = copy
        self.bytes_out = 0
        self.messages = 0

    def pack(self, payload: Any) -> tuple[Any, int]:
        """Prepare ``payload`` for transport; returns ``(wire, size)``.

        In copy mode the returned object is independent of the original;
        in reference mode it is the original object (size still measured).
        """
        size = measure_size(payload)
        self.bytes_out += size
        self.messages += 1
        if not self.copy:
            return payload, size
        return self._deep_copy(payload), size

    def unpack(self, wire: Any) -> Any:
        """Materialise a transported payload on the receiving side."""
        return wire

    def clone(self, payload: Any) -> Any:
        """Standalone deep copy with woven-class safety (used to build
        servant instances with value semantics)."""
        return self._deep_copy(payload)

    def _deep_copy(self, payload: Any) -> Any:
        if payload is None or isinstance(payload, (int, float, bool, str, bytes)):
            return payload
        if isinstance(payload, np.ndarray):
            return payload.copy()
        if isinstance(payload, tuple):
            return tuple(self._deep_copy(item) for item in payload)
        if isinstance(payload, list):
            return [self._deep_copy(item) for item in payload]
        if isinstance(payload, dict):
            return {
                self._deep_copy(k): self._deep_copy(v) for k, v in payload.items()
            }
        # Arbitrary objects: value semantics via copy.  ``deepcopy`` (not a
        # pickle round-trip) so module-local classes work in-process; the
        # construction bypass keeps woven classes from re-running
        # initialization advice on the copy.
        try:
            with bypassing_construction():
                return copy.deepcopy(payload)
        except Exception as exc:  # noqa: BLE001
            raise SerializationError(
                f"cannot serialise {type(payload).__name__}: {exc}"
            ) from exc
