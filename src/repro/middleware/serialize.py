"""Serialisation with byte-size accounting and the process wire format.

Every remote call pays twice: CPU time to (de)serialise and wire time
proportional to payload size.  This module measures payload sizes and —
in *copy* mode — actually round-trips payloads through pickle so remote
objects observe value semantics (like Java RMI), not shared references.

Beyond the simulated middlewares' accounting, this module is also the
**real wire format** of the out-of-process backend
(:mod:`repro.runtime.procbackend`): :class:`RequestEnvelope` /
:class:`ReplyEnvelope` are the frames that actually cross the process
boundary, carrying the originating dispatch-ticket id (``context_id``)
so per-call collector routing, deadlines and admission accounting keep
working across it.  :func:`encode_envelope` names the offending *field*
when a payload refuses to pickle — a submit with an unpicklable argument
fails with a targeted :class:`~repro.errors.SerializationError` at the
send site, never a hang on a reply that cannot exist.

Two pitfalls handled here:

* unpickling instances of *woven* classes must not re-trigger
  initialization advice — ``loads`` runs under the construction bypass;
* numpy arrays get a fast path (``nbytes`` + header, ``copy()``) so the
  benchmarks don't spend wall-clock time in pickle.
"""

from __future__ import annotations

import copy
import pickle
import traceback
from typing import Any

import numpy as np

from repro.aop.cflow import bypassing_construction
from repro.errors import SerializationError

__all__ = [
    "Serializer",
    "measure_size",
    "dumps",
    "loads",
    "RequestEnvelope",
    "ReplyEnvelope",
    "ExportEnvelope",
    "encode_envelope",
    "decode_envelope",
    "exception_payload",
]

_HEADER_BYTES = 64  # envelope / framing overhead per message
_PROTOCOL = pickle.HIGHEST_PROTOCOL


def measure_size(payload: Any) -> int:
    """Approximate on-the-wire size of ``payload`` in bytes."""
    return _HEADER_BYTES + _body_size(payload)


def _body_size(payload: Any) -> int:
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8", errors="replace"))
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, (list, tuple)):
        return sum(_body_size(item) for item in payload) + 8 * len(payload)
    if isinstance(payload, dict):
        return sum(
            _body_size(k) + _body_size(v) for k, v in payload.items()
        ) + 16 * len(payload)
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:  # noqa: BLE001
        raise SerializationError(f"cannot size {type(payload).__name__}") from exc


def dumps(payload: Any) -> bytes:
    """Pickle ``payload`` for real transport (process boundary)."""
    try:
        return pickle.dumps(payload, protocol=_PROTOCOL)
    except SerializationError:
        raise
    except Exception as exc:  # noqa: BLE001
        raise SerializationError(
            f"cannot pickle {type(payload).__name__} for transport: {exc}"
        ) from exc


def loads(data: bytes) -> Any:
    """Unpickle a transported payload.

    Runs under the construction bypass: instances of woven classes
    materialise without re-running initialization advice (the servant
    copy must not re-trigger duplication or create-remote logic).
    """
    try:
        with bypassing_construction():
            return pickle.loads(data)
    except SerializationError:
        raise
    except Exception as exc:  # noqa: BLE001
        raise SerializationError(
            f"cannot unpickle wire payload: {exc}"
        ) from exc


class RequestEnvelope:
    """One invocation crossing the process boundary.

    For batched requests ``args`` holds the pack's piece views
    (``(args, kwargs)`` pairs) and ``kwargs`` is unused — the whole pack
    is ONE envelope, so it pays one marshalling pass and one wire frame
    (the process-backend face of communication packing).
    """

    kind = "request"

    __slots__ = (
        "call_id",
        "object_id",
        "method",
        "args",
        "kwargs",
        "oneway",
        "batch",
        "context_id",
    )

    def __init__(
        self,
        call_id: int,
        object_id: int,
        method: str,
        args: Any = (),
        kwargs: Any = None,
        oneway: bool = False,
        batch: bool = False,
        context_id: int | None = None,
    ):
        self.call_id = call_id
        self.object_id = object_id
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.oneway = oneway
        self.batch = batch
        #: originating per-call dispatch ticket id — travels the wire as
        #: an id (tickets are process-local objects) and echoes back in
        #: the reply, so the caller side re-associates work with the call
        self.context_id = context_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RequestEnvelope #{self.call_id} obj{self.object_id}."
            f"{self.method} batch={self.batch} ctx={self.context_id}>"
        )


class ReplyEnvelope:
    """The reply frame: ``outcome`` is ``"ok"`` or ``"error"`` (payload
    then carries the exception, see :func:`exception_payload`)."""

    kind = "reply"

    __slots__ = ("call_id", "outcome", "payload", "context_id")

    def __init__(
        self,
        call_id: int,
        outcome: str,
        payload: Any = None,
        context_id: int | None = None,
    ):
        self.call_id = call_id
        self.outcome = outcome
        self.payload = payload
        self.context_id = context_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReplyEnvelope #{self.call_id} {self.outcome}>"


class ExportEnvelope:
    """Ships one servant instance into its resident worker process."""

    kind = "export"

    __slots__ = ("object_id", "servant", "type_name")

    def __init__(self, object_id: int, servant: Any, type_name: str = ""):
        self.object_id = object_id
        self.servant = servant
        self.type_name = type_name or type(servant).__name__


def encode_envelope(envelope: Any) -> bytes:
    """Pickle an envelope, naming the offending field on failure.

    A request whose argument cannot pickle (an open file, a lambda, a
    thread lock smuggled into a payload) must fail at the *send site*
    with an error that says which field is at fault — not crash the
    worker's decode loop and hang the caller on a reply.
    """
    try:
        return pickle.dumps(envelope, protocol=_PROTOCOL)
    except Exception as exc:  # noqa: BLE001 - re-raised with a culprit
        for slot in getattr(type(envelope), "__slots__", ()):
            value = getattr(envelope, slot, None)
            try:
                pickle.dumps(value, protocol=_PROTOCOL)
            except Exception:  # noqa: BLE001 - this slot is the culprit
                raise SerializationError(
                    f"{type(envelope).__name__}.{slot} cannot cross the "
                    f"process boundary: {type(value).__name__} is not "
                    f"picklable ({exc})"
                ) from exc
        raise SerializationError(
            f"cannot pickle {type(envelope).__name__} for transport: {exc}"
        ) from exc


def decode_envelope(data: bytes) -> Any:
    """Materialise a wire frame (construction bypass, see :func:`loads`)."""
    return loads(data)


def exception_payload(exc: BaseException) -> BaseException:
    """Make ``exc`` shippable as an error-reply payload.

    The remote traceback is rendered to text and attached as
    ``remote_traceback`` (traceback objects never pickle; their text
    does), so the client-side failure stays debuggable.  An exception
    that itself refuses to pickle degrades to a
    :class:`~repro.errors.SerializationError` carrying the rendered
    traceback — the error always crosses the boundary.
    """
    text = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    try:
        exc.remote_traceback = text  # type: ignore[attr-defined]
    except Exception:  # noqa: BLE001 - exotic __slots__ exceptions
        pass
    try:
        pickle.dumps(exc, protocol=_PROTOCOL)
        return exc
    except Exception:  # noqa: BLE001 - degrade, never lose the error
        degraded = SerializationError(
            f"remote call failed with unpicklable "
            f"{type(exc).__name__}: {exc}\n--- remote traceback ---\n{text}"
        )
        degraded.remote_traceback = text  # type: ignore[attr-defined]
        return degraded


class Serializer:
    """Copy/reference serialisation with cumulative accounting."""

    def __init__(self, copy: bool = True):
        self.copy = copy
        self.bytes_out = 0
        self.messages = 0

    def pack(self, payload: Any) -> tuple[Any, int]:
        """Prepare ``payload`` for transport; returns ``(wire, size)``.

        In copy mode the returned object is independent of the original;
        in reference mode it is the original object (size still measured).
        """
        size = measure_size(payload)
        self.bytes_out += size
        self.messages += 1
        if not self.copy:
            return payload, size
        return self._deep_copy(payload), size

    def unpack(self, wire: Any) -> Any:
        """Materialise a transported payload on the receiving side."""
        return wire

    def encode(self, envelope: Any) -> bytes:
        """Pickle an envelope for the REAL wire (process boundary) with
        the same cumulative accounting as :meth:`pack` — ``messages``
        counts marshalling passes, which is what the pack-amortisation
        bench asserts on (one marshal per pack)."""
        data = encode_envelope(envelope)
        self.messages += 1
        self.bytes_out += _HEADER_BYTES + len(data)
        return data

    def decode(self, data: bytes) -> Any:
        """Materialise a received wire frame (not counted: accounting
        charges the sender, matching :meth:`pack`)."""
        return decode_envelope(data)

    def clone(self, payload: Any) -> Any:
        """Standalone deep copy with woven-class safety (used to build
        servant instances with value semantics)."""
        return self._deep_copy(payload)

    def _deep_copy(self, payload: Any) -> Any:
        if payload is None or isinstance(payload, (int, float, bool, str, bytes)):
            return payload
        if isinstance(payload, np.ndarray):
            return payload.copy()
        if isinstance(payload, tuple):
            return tuple(self._deep_copy(item) for item in payload)
        if isinstance(payload, list):
            return [self._deep_copy(item) for item in payload]
        if isinstance(payload, dict):
            return {
                self._deep_copy(k): self._deep_copy(v) for k, v in payload.items()
            }
        # Arbitrary objects: value semantics via copy.  ``deepcopy`` (not a
        # pickle round-trip) so module-local classes work in-process; the
        # construction bypass keeps woven classes from re-running
        # initialization advice on the copy.
        try:
            with bypassing_construction():
                return copy.deepcopy(payload)
        except Exception as exc:  # noqa: BLE001
            raise SerializationError(
                f"cannot serialise {type(payload).__name__}: {exc}"
            ) from exc
