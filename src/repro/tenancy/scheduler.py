"""The cluster-level tenant scheduler: quotas, priorities, fair queueing.

:class:`ClusterScheduler` owns one bounded slot table shared by every
deployment that names it in its spec.  Each :class:`Tenant` declares:

* ``reserved`` — slots only this tenant may use.  A tenant below its
  reserve is *always* admissible, so reserved capacity is the
  starvation-freedom guarantee: no amount of higher-priority or
  heavier-weight traffic can take it away.
* ``burst`` — how far above the reserve the tenant may stretch into the
  shared pool (``None`` = up to whatever the pool has free).
* ``priority`` — strict ordering for *shared-pool* hand-offs: a freed
  shared slot goes to the highest-priority backlogged tenant class.
* ``weight`` — fair share *within* a priority class, enforced by stride
  scheduling: each shared grant advances the tenant's pass by
  ``stride ∝ 1/weight``, and the backlogged tenant with the smallest
  pass wins the next hand-off.  Over any busy interval the grant counts
  of equal-priority backlogged tenants converge to the weight ratio.
* ``overflow`` — what happens when the tenant cannot be admitted:
  ``block`` parks the submitter (FIFO per tenant, deadline-bounded),
  ``fail`` raises :class:`~repro.errors.AdmissionRejected`, and
  ``shed-oldest`` cancels the *tenant's own* oldest live call with
  :class:`~repro.errors.CallShed` — tenant isolation means shedding
  never touches another tenant's work, so a tenant with nothing left to
  shed is rejected instead.

A tenant whose backlog just formed has its pass clamped forward to the
smallest waiting pass, so idle periods bank no credit (the standard
stride-scheduling join rule).  Grants link to the deployment-level
:class:`~repro.runtime.admission.AdmissionSlot` (``attach_slot``) so a
scheduler-level shed cancels the live dispatch ticket exactly like a
deployment-level one, and the slot's release returns the cluster slot.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict, deque
from typing import Any

from repro.errors import AdmissionRejected, CallShed, DeploymentError
from repro.runtime.admission import OVERFLOW_POLICIES, Deadline
from repro.tenancy.placement import PlacementFeedback

__all__ = ["Tenant", "TenantGrant", "ClusterScheduler"]

#: stride numerator: pass += _STRIDE_UNIT / weight per shared grant
_STRIDE_UNIT = float(1 << 16)


class Tenant:
    """One tenant's declared share of the cluster slot table."""

    __slots__ = ("name", "weight", "reserved", "burst", "priority", "overflow")

    def __init__(
        self,
        name: str,
        weight: float = 1.0,
        reserved: int = 0,
        burst: int | None = None,
        priority: int = 0,
        overflow: str = "block",
    ):
        if not name:
            raise DeploymentError("tenant name must be non-empty")
        if not weight > 0:
            raise DeploymentError(
                f"tenant {name!r}: weight must be > 0, got {weight!r}"
            )
        if reserved < 0:
            raise DeploymentError(
                f"tenant {name!r}: reserved must be >= 0, got {reserved!r}"
            )
        if burst is not None and burst < 0:
            raise DeploymentError(
                f"tenant {name!r}: burst must be >= 0 or None, got {burst!r}"
            )
        if overflow not in OVERFLOW_POLICIES:
            raise DeploymentError(
                f"tenant {name!r}: unknown overflow policy {overflow!r} "
                f"(choose from {', '.join(OVERFLOW_POLICIES)})"
            )
        self.name = name
        self.weight = float(weight)
        self.reserved = int(reserved)
        self.burst = None if burst is None else int(burst)
        self.priority = int(priority)
        self.overflow = overflow

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "∞" if self.burst is None else str(self.reserved + self.burst)
        return (
            f"<Tenant {self.name} w={self.weight} reserved={self.reserved} "
            f"cap={cap} prio={self.priority} overflow={self.overflow}>"
        )


class TenantGrant:
    """One admitted cluster slot, owned by a tenant's submission.

    Mirrors :class:`~repro.runtime.admission.AdmissionSlot`'s lifecycle:
    ``attach_slot`` links the deployment-level slot once it is admitted
    (a grant cancelled before the link forwards the cancellation at
    attach time, closing the race both ways), ``cancel`` sheds the call,
    and ``release`` returns the cluster slot exactly once.
    """

    __slots__ = (
        "grant_id",
        "tenant",
        "name",
        "cancelled",
        "cancel_cause",
        "_scheduler",
        "_slot",
        "_released",
        "_lock",
    )

    def __init__(
        self,
        grant_id: int,
        tenant: str,
        name: str,
        scheduler: "ClusterScheduler | None" = None,
    ):
        self.grant_id = grant_id
        self.tenant = tenant
        self.name = name
        self.cancelled = False
        self.cancel_cause: BaseException | None = None
        self._scheduler = scheduler
        self._slot: Any = None
        self._released = False
        self._lock = threading.Lock()

    def attach_slot(self, slot: Any) -> None:
        """Link the deployment-level admission slot to this grant."""
        with self._lock:
            self._slot = slot
            cancelled, cause = self.cancelled, self.cancel_cause
        if cancelled and cause is not None:
            slot.cancel(cause)

    def cancel(self, exc: BaseException) -> None:
        """Shed this grant's call: latch the cause and forward it to the
        linked admission slot (which cancels the live ticket)."""
        with self._lock:
            if self.cancelled:
                return
            self.cancelled = True
            self.cancel_cause = exc
            slot = self._slot
        if slot is not None:
            slot.cancel(exc)

    def release(self) -> None:
        """Return the cluster slot (idempotent)."""
        with self._lock:
            if self._released:
                return
            self._released = True
        if self._scheduler is not None:
            self._scheduler._release(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"<TenantGrant #{self.grant_id} {self.tenant}:{self.name} {state}>"


class _BlockedTenant:
    """FIFO record for one submitter parked by a tenant's ``block``
    policy — direct hand-off, same shape as the admission layer's
    ``_BlockedSubmitter``."""

    __slots__ = ("event", "tenant", "name", "deadline", "grant")

    def __init__(
        self, event: Any, tenant: Tenant, name: str, deadline: Deadline | None
    ):
        self.event = event
        self.tenant = tenant
        self.name = name
        self.deadline = deadline
        self.grant: TenantGrant | None = None


class ClusterScheduler:
    """A shared, bounded slot table carved into per-tenant quotas.

    ``capacity`` is the cluster-wide in-flight bound; every registered
    tenant's ``reserved`` slots are carved out of it and the remainder
    forms the shared pool burst traffic competes for.  Backend
    primitives come from ``backend`` when given, else from the ambient
    backend at wait time — so one scheduler serves many apps as long as
    they run on the same kind of backend (the sim scenarios share one
    simulator).
    """

    def __init__(
        self, capacity: int, backend: Any = None, name: str = "cluster"
    ):
        if capacity < 1:
            raise DeploymentError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self.name = name
        self._backend = backend
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._tenants: dict[str, Tenant] = {}
        #: live grants per tenant in admission order (the shed queue)
        self._held: dict[str, OrderedDict[int, TenantGrant]] = {}
        self._waiters: dict[str, deque[_BlockedTenant]] = {}
        #: stride-scheduling pass per tenant (shared-pool fairness meter)
        self._pass: dict[str, float] = {}
        self._counters: dict[str, dict[str, int]] = {}
        self._reserved_total = 0
        #: placement feedback fed by cluster metrics snapshots
        self.placement = PlacementFeedback()
        self._admission_stats: dict[str, dict] = {}

    # -- registration --------------------------------------------------------

    def register(self, tenant: Tenant) -> Tenant:
        """Register one tenant; reserves must fit inside ``capacity``."""
        with self._lock:
            if tenant.name in self._tenants:
                raise DeploymentError(
                    f"{self.name}: tenant {tenant.name!r} already registered"
                )
            if self._reserved_total + tenant.reserved > self.capacity:
                raise DeploymentError(
                    f"{self.name}: reserving {tenant.reserved} slots for "
                    f"{tenant.name!r} exceeds capacity "
                    f"({self._reserved_total} of {self.capacity} already "
                    f"reserved)"
                )
            self._tenants[tenant.name] = tenant
            self._reserved_total += tenant.reserved
            self._held[tenant.name] = OrderedDict()
            self._waiters[tenant.name] = deque()
            self._pass[tenant.name] = self._min_waiting_pass_locked()
            self._counters[tenant.name] = {
                "admitted_total": 0,
                "rejected": 0,
                "shed": 0,
                "blocked": 0,
                "peak_held": 0,
            }
        return tenant

    def tenant(self, name: str, **kwargs: Any) -> Tenant:
        """Construct-and-register convenience: ``sched.tenant("gold",
        weight=5, reserved=2)``."""
        return self.register(Tenant(name, **kwargs))

    def ensure_tenant(self, name: str) -> Tenant:
        """Look a tenant up, failing with the catalogue (deploy-time
        validation for ``StackSpec.tenant``)."""
        with self._lock:
            tenant = self._tenants.get(name)
            known = sorted(self._tenants)
        if tenant is None:
            raise DeploymentError(
                f"{self.name}: unknown tenant {name!r} "
                f"(registered: {', '.join(known) if known else 'none'})"
            )
        return tenant

    # -- admission -----------------------------------------------------------

    def acquire(
        self,
        tenant: str,
        deadline: Deadline | None = None,
        name: str = "call",
    ) -> TenantGrant:
        """Acquire one cluster slot for ``tenant``, applying its quota
        and overflow policy.  Returns the grant; raises
        :class:`AdmissionRejected` under ``fail`` (or a ``block`` wait
        whose deadline drained, or a ``shed-oldest`` tenant with nothing
        of its own left to shed)."""
        t = self.ensure_tenant(tenant)
        victim: TenantGrant | None = None
        waiter: _BlockedTenant | None = None
        handoffs: list[_BlockedTenant] = []
        donation: AdmissionRejected | None = None
        grant: TenantGrant | None = None
        with self._lock:
            if self._can_admit_locked(t):
                grant = self._grant_locked(t, name)
            elif t.overflow == "fail":
                self._counters[t.name]["rejected"] += 1
                raise AdmissionRejected(
                    f"{self.name}: tenant {t.name!r} is at its quota "
                    f"({len(self._held[t.name])} held) and the shared "
                    f"pool is full (overflow policy 'fail')"
                )
            elif t.overflow == "shed-oldest":
                victim = self._pick_victim_locked(t)
                if victim is None:
                    # nothing of this tenant's own to shed: isolation
                    # forbids shedding a neighbour, so reject instead
                    self._counters[t.name]["rejected"] += 1
                    raise AdmissionRejected(
                        f"{self.name}: tenant {t.name!r} holds no "
                        f"sheddable call and the shared pool is full "
                        f"(overflow policy 'shed-oldest' never touches "
                        f"other tenants)"
                    )
                self._counters[t.name]["shed"] += 1
                if self._should_donate_locked(t):
                    # a below-reserve or strictly-higher-priority tenant
                    # is parked: recycling the slot in place would let a
                    # shed-mode tenant hold its quota forever (it never
                    # *releases*, it swaps) — instead the freed slot
                    # re-enters the fair queue and the new call is
                    # rejected, so priority and reserves stay meaningful
                    # against shed-mode neighbours
                    self._handoff_locked(handoffs)
                    self._counters[t.name]["rejected"] += 1
                    donation = AdmissionRejected(
                        f"{self.name}: tenant {t.name!r} shed its oldest "
                        f"call but donated the slot to a waiting "
                        f"higher-priority (or under-reserve) tenant; "
                        f"{name!r} rejected"
                    )
                else:
                    grant = self._grant_locked(t, name)
            else:  # block
                self._counters[t.name]["blocked"] += 1
                queue = self._waiters[t.name]
                if not queue:
                    # fresh backlog: clamp the pass forward so idle
                    # time banks no stride credit
                    self._pass[t.name] = max(
                        self._pass[t.name], self._min_waiting_pass_locked()
                    )
                waiter = _BlockedTenant(self._make_event(), t, name, deadline)
                queue.append(waiter)
        if victim is not None:
            victim.cancel(
                CallShed(
                    f"{self.name}: tenant {t.name!r} call {victim.name!r} "
                    f"shed to admit {name!r} (overflow policy "
                    f"'shed-oldest', quota reached)"
                )
            )
        for woken in handoffs:
            woken.event.set()
        if donation is not None:
            raise donation
        if waiter is None:
            return grant
        return self._await_handoff(waiter)

    def _should_donate_locked(self, t: Tenant) -> bool:
        """Is a tenant parked that outranks ``t`` for the slot its shed
        just freed?  (Below its reserve, or strictly higher priority.)"""
        for name, queue in self._waiters.items():
            if not queue or name == t.name:
                continue
            u = self._tenants[name]
            if not self._can_admit_locked(u):
                continue
            if len(self._held[name]) < u.reserved or u.priority > t.priority:
                return True
        return False

    def _can_admit_locked(self, t: Tenant) -> bool:
        held = len(self._held[t.name])
        if t.burst is not None and held >= t.reserved + t.burst:
            return False
        if held < t.reserved:
            return True
        return self._shared_in_use_locked() < self.capacity - self._reserved_total

    def _shared_in_use_locked(self) -> int:
        return sum(
            max(0, len(self._held[name]) - tenant.reserved)
            for name, tenant in self._tenants.items()
        )

    def _grant_locked(self, t: Tenant, name: str) -> TenantGrant:
        held = len(self._held[t.name])
        grant = TenantGrant(next(self._ids), t.name, name, scheduler=self)
        self._held[t.name][grant.grant_id] = grant
        counters = self._counters[t.name]
        counters["admitted_total"] += 1
        counters["peak_held"] = max(counters["peak_held"], held + 1)
        if held >= t.reserved:
            # a shared-pool draw spends fairness credit; reserved draws
            # are entitlements and never touch the meter
            self._pass[t.name] += _STRIDE_UNIT / t.weight
        return grant

    def _pick_victim_locked(self, t: Tenant) -> TenantGrant | None:
        # oldest of the TENANT'S OWN live grants; drop it from the table
        # now so repeated sheds walk forward (its release becomes a
        # no-op for capacity) — same shape as the admission layer
        for grant in self._held[t.name].values():
            if not grant.cancelled:
                del self._held[t.name][grant.grant_id]
                return grant
        return None

    def _min_waiting_pass_locked(self) -> float:
        waiting = [
            self._pass[name] for name, q in self._waiters.items() if q
        ]
        return min(waiting, default=0.0)

    def _await_handoff(self, waiter: _BlockedTenant) -> TenantGrant:
        deadline = waiter.deadline
        while True:
            timeout = deadline.remaining() if deadline is not None else None
            woke = waiter.event.wait(timeout)
            with self._lock:
                if waiter.grant is not None:
                    return waiter.grant
                if not woke:  # timed out without a hand-off
                    try:
                        self._waiters[waiter.tenant.name].remove(waiter)
                    except ValueError:  # pragma: no cover - handed off
                        continue  # a hand-off raced the timeout: retry
                    self._counters[waiter.tenant.name]["rejected"] += 1
                    raise AdmissionRejected(
                        f"{self.name}: tenant {waiter.tenant.name!r} "
                        f"submission {waiter.name!r} ran out of deadline "
                        f"budget ({deadline.budget}s) waiting for a slot"
                    )

    # -- release + hand-off --------------------------------------------------

    def _release(self, grant: TenantGrant) -> None:
        handoffs: list[_BlockedTenant] = []
        with self._lock:
            table = self._held.get(grant.tenant)
            if table is None or table.pop(grant.grant_id, None) is None:
                return  # already shed out of the table: capacity moved on
            self._handoff_locked(handoffs)
        for waiter in handoffs:
            waiter.event.set()

    def _handoff_locked(self, handoffs: list[_BlockedTenant]) -> None:
        """Hand freed capacity to parked submitters: tenants below their
        reserve first (the guarantee), then strict priority over the
        shared pool, then smallest stride pass within the class."""
        while True:
            best: Tenant | None = None
            best_rank: tuple | None = None
            for name, queue in self._waiters.items():
                if not queue:
                    continue
                t = self._tenants[name]
                if not self._can_admit_locked(t):
                    continue
                rank = (
                    0 if len(self._held[name]) < t.reserved else 1,
                    -t.priority,
                    self._pass[name],
                    name,
                )
                if best is None or rank < best_rank:
                    best, best_rank = t, rank
            if best is None:
                return
            waiter = self._waiters[best.name].popleft()
            waiter.grant = self._grant_locked(best, waiter.name)
            handoffs.append(waiter)

    # -- placement feedback --------------------------------------------------

    def observe(self, snapshot: dict) -> None:
        """Feed one :func:`repro.cluster.metrics.snapshot` into the
        placement feedback loop."""
        self.placement.observe(snapshot)

    def observe_admission(self, stats: dict) -> None:
        """Feed one deployment's ``AdmissionController.stats()``
        snapshot (keyed by its ``name``) into the scheduler's view."""
        with self._lock:
            self._admission_stats[stats.get("name", "app")] = dict(stats)

    def placement_hint(self, tenant: str = "") -> Any:
        """The least-loaded node for this tenant's next servant; each
        hint adds pending pressure so a hot tenant's repeated asks
        spread instead of piling onto one machine."""
        return self.placement.suggest(tenant)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Read-only snapshot: capacity, per-tenant holds/waits/credit,
        counters, and the deployment admission snapshots observed."""
        with self._lock:
            tenants = {}
            in_use = 0
            for name, t in self._tenants.items():
                held = len(self._held[name])
                in_use += held
                tenants[name] = dict(
                    self._counters[name],
                    held=held,
                    waiting=len(self._waiters[name]),
                    weight=t.weight,
                    reserved=t.reserved,
                    burst=t.burst,
                    priority=t.priority,
                    overflow=t.overflow,
                )
            return {
                "name": self.name,
                "capacity": self.capacity,
                "in_use": in_use,
                "shared_in_use": self._shared_in_use_locked(),
                "reserved_total": self._reserved_total,
                "tenants": tenants,
                "deployments": {
                    k: dict(v) for k, v in self._admission_stats.items()
                },
            }

    def _make_event(self) -> Any:
        backend = self._backend
        if backend is None:
            from repro.runtime.backend import current_backend

            backend = current_backend()
        return backend.make_event(name=f"{self.name}.tenancy")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            in_use = sum(len(t) for t in self._held.values())
        return (
            f"<ClusterScheduler {self.name} {in_use}/{self.capacity} "
            f"tenants={len(self._tenants)}>"
        )
