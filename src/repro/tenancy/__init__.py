"""Multi-tenant cluster scheduling above per-deployment admission.

PR 5's :class:`~repro.runtime.admission.AdmissionController` bounds one
deployment.  This package adds the layer the ROADMAP names next: a
cluster-wide slot table shared by *many* deployments, carved into
per-tenant quotas (reserved + burst), with integer priorities, a
weighted-fair queue for blocked submitters (stride scheduling —
starvation-free by construction), per-tenant overflow policies composed
from the existing block/fail/shed-oldest primitives, and placement
feedback driven by :func:`repro.cluster.metrics.snapshot` so hot
tenants spread across machines.

Wiring: ``StackSpec(tenant="gold", scheduler=sched)`` routes every
``submit``/``map`` unit of that app through the tenant plane — a
:class:`TenantGrant` is acquired before the deployment's own admission
slot and released with it.
"""

from repro.tenancy.placement import PlacementFeedback
from repro.tenancy.scheduler import ClusterScheduler, Tenant, TenantGrant

__all__ = ["ClusterScheduler", "Tenant", "TenantGrant", "PlacementFeedback"]
