"""Placement feedback: spread hot tenants using cluster metrics.

:class:`PlacementFeedback` consumes the dict shape produced by
:func:`repro.cluster.metrics.snapshot` — per-node utilisation and core
counts — and answers "where should this tenant's next servant go?".
Between observations each hint adds *pending* pressure (one outstanding
servant's worth, normalised by the node's cores) to the chosen node, so
a hot tenant asking many times in a burst is spread across the
lightly-loaded machines instead of stacking onto the single currently
least-utilised one.  A fresh observation resets the pending pressure to
what the cluster actually measured.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["PlacementFeedback"]


class PlacementFeedback:
    """Least-loaded-node suggestions with burst spreading."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._utilisation: dict[Any, float] = {}
        self._cores: dict[Any, int] = {}
        self._pending: dict[Any, float] = {}
        self._assignments: dict[str, list[Any]] = {}

    def observe(self, snapshot: dict) -> None:
        """Ingest one cluster metrics snapshot (authoritative: clears
        the pending pressure accumulated since the last one)."""
        with self._lock:
            for node in snapshot.get("nodes", ()):
                node_id = node["node"]
                self._utilisation[node_id] = float(
                    node.get("utilisation", 0.0)
                )
                self._cores[node_id] = max(1, int(node.get("cores", 1)))
                self._pending[node_id] = 0.0

    def suggest(self, tenant: str = "") -> Any:
        """The node with the least observed + pending load, or ``None``
        before any observation.  Records the assignment."""
        with self._lock:
            if not self._utilisation:
                return None

            def load(node_id: Any) -> float:
                return (
                    self._utilisation[node_id]
                    + self._pending[node_id] / self._cores[node_id]
                )

            node_id = min(sorted(self._utilisation), key=load)
            self._pending[node_id] += 1.0
            self._assignments.setdefault(tenant, []).append(node_id)
            return node_id

    def assignments(self, tenant: str = "") -> tuple:
        """The nodes suggested to ``tenant`` so far, in order."""
        with self._lock:
            return tuple(self._assignments.get(tenant, ()))

    def known_nodes(self) -> tuple:
        """Node ids seen in observations so far (sorted)."""
        with self._lock:
            return tuple(sorted(self._utilisation))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return f"<PlacementFeedback nodes={len(self._utilisation)}>"
