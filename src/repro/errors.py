"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, split
into three families mirroring the three layers of the system:

* the AOP engine (:class:`AopError` and friends),
* the discrete-event simulator (:class:`SimulationError` and friends),
* the distribution middleware (:class:`MiddlewareError` and friends).

Keeping the hierarchy in one module lets callers catch a whole layer with
a single ``except`` clause while tests can assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


# ---------------------------------------------------------------------------
# AOP engine errors
# ---------------------------------------------------------------------------


class AopError(ReproError):
    """Base class for errors raised by the aspect-weaving engine."""


class PointcutSyntaxError(AopError):
    """A pointcut expression string failed to parse.

    Carries the offending ``text`` and the character ``position`` where
    parsing stopped, so tooling can point at the error.
    """

    def __init__(self, message: str, text: str = "", position: int = -1):
        super().__init__(message)
        self.text = text
        self.position = position


class WeaveError(AopError):
    """A class could not be woven or unwoven."""


class DeploymentError(AopError):
    """An aspect could not be deployed (e.g. unresolved abstract pointcut)."""


class AdviceError(AopError):
    """Invalid advice declaration or advice execution failure."""


class ProceedError(AopError):
    """``proceed`` was invoked outside an around advice or after the
    joinpoint completed in a non-reentrant context."""


class IntertypeError(AopError):
    """Invalid inter-type declaration (member introduction or
    ``declare parents``)."""


# ---------------------------------------------------------------------------
# Simulation errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulator errors."""


class SimDeadlockError(SimulationError):
    """The event queue drained while processes were still blocked."""


class SimInterrupt(SimulationError):
    """A blocked process was interrupted by another process."""


class SimTimeError(SimulationError):
    """An event was scheduled in the past or with a negative delay."""


class ProcessKilled(BaseException):
    """Raised inside a simulated process when the simulation shuts down.

    Deliberately derives from :class:`BaseException` (like
    ``KeyboardInterrupt``) so application-level ``except Exception``
    blocks cannot swallow it; the kernel uses it to unwind worker
    threads deterministically at the end of a run.
    """


# ---------------------------------------------------------------------------
# Cluster / runtime errors
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """Invalid cluster topology or node configuration."""


class BackendError(ReproError):
    """Execution backend misuse (e.g. sim backend outside a simulation)."""


class FutureError(ReproError):
    """Invalid future usage (e.g. reading a cancelled future)."""


# ---------------------------------------------------------------------------
# Admission control (bounded in-flight calls, deadlines, shedding)
# ---------------------------------------------------------------------------


class AdmissionError(ReproError):
    """Base class for admission-control errors (bounded ticket table)."""


class AdmissionRejected(AdmissionError):
    """A submission was refused admission.

    Raised by the ``fail`` overflow policy when the per-deployment
    ticket table is full, and by a ``block``-policy admission wait that
    ran out of deadline budget before a slot freed.
    """


class CallShed(AdmissionError):
    """An in-flight call was cancelled by the ``shed-oldest`` overflow
    policy to make room for a newer submission.  Delivered through the
    shed call's future; the newer call proceeds normally.
    """


class DeadlineExceeded(AdmissionError):
    """A per-call deadline expired before the call completed.

    Carries the ticket's ``trace`` (the span timeline recorded on the
    call's :class:`~repro.parallel.partition.base.DispatchContext` up to
    the moment of expiry) so the failure is debuggable post mortem.
    """

    def __init__(self, message: str, trace: dict | None = None):
        super().__init__(message)
        self.trace = trace


# ---------------------------------------------------------------------------
# Middleware errors
# ---------------------------------------------------------------------------


class MiddlewareError(ReproError):
    """Base class for distribution middleware errors."""


class RemoteError(MiddlewareError):
    """A remote invocation failed.

    The Python analogue of Java's ``RemoteException``: the distribution
    aspect is responsible for catching these at redirected call sites,
    exactly like the paper's modification #4.
    """

    def __init__(self, message: str, cause: BaseException | None = None):
        super().__init__(message)
        self.cause = cause


class WorkerCrashed(RemoteError):
    """A resident worker process died with calls in flight.

    Raised by the process backend when a worker is found dead while a
    request awaits its reply (or before a send).  Carries the worker's
    name, pid and exit code in the message so post-mortems can tell a
    SIGKILL from a segfault; in-flight splits fail fast through their
    collectors instead of hanging on a reply that will never arrive.
    """


class RegistryError(MiddlewareError):
    """Name-server lookup/bind failure (unknown or duplicate name)."""


# ---------------------------------------------------------------------------
# Fault injection (deterministic failure schedules — repro.faults)
# ---------------------------------------------------------------------------


class InjectedFault(ReproError):
    """Base class for failures raised by the fault-injection layer.

    Schedules (:class:`~repro.faults.FaultSchedule`) deliver
    ``raise_in_piece`` events as this class directly; the more specific
    subclasses mark the two structured misbehaviours.  Retry policies
    treat the whole family as retryable by default.
    """


class WorkerKilled(InjectedFault):
    """An injected fault killed the worker a piece was routed to.

    On the thread backend this is the *simulation* of a worker death
    (the piece fails before running, best-effort flagging); on the
    process backend the resident worker really is SIGKILLed and the
    failure surfaces as :class:`WorkerCrashed` instead.
    """


class ReplyDropped(InjectedFault):
    """An injected fault discarded a completed call's reply.

    The work ran — possibly with side effects — but the caller never
    sees the result, modelling a lost response message.  Re-dispatch
    therefore needs reply deduplication on the collector (keyed
    deposits) to keep exactly-once result delivery.
    """


class SerializationError(MiddlewareError):
    """An object could not be (de)serialised for transport."""


class PlacementError(MiddlewareError):
    """No node satisfies a placement request."""
