"""ASCII rendering of experiment series in the paper's format.

Each figure is a table: rows = filter counts (the x-axis of Figures
16/17), columns = the plotted series.  ``render_series`` also prints a
crude inline bar so trends are visible in a terminal log.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["render_series", "render_table1", "render_checks"]


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[int],
    series: Mapping[str, Sequence[float]],
    unit: str = "s",
    bar_for: str | None = None,
) -> str:
    """Tabulate ``series[name][i]`` against ``xs[i]``."""
    names = list(series)
    width = max(9, *(len(n) + 2 for n in names))
    lines = [title, "=" * len(title)]
    header = f"{x_label:>8} |" + "".join(f"{n:>{width}}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    all_values = [v for vs in series.values() for v in vs]
    peak = max(all_values) if all_values else 1.0
    for i, x in enumerate(xs):
        row = f"{x:>8} |"
        for name in names:
            value = series[name][i]
            row += f"{value:>{width - 1}.3f}{unit[:1]}"
        if bar_for is not None:
            value = series[bar_for][i]
            row += "  " + "#" * max(1, round(24 * value / peak))
        lines.append(row)
    return "\n".join(lines)


def render_table1(rows: Iterable[Mapping[str, str]]) -> str:
    """Regenerate Table 1 (tested module combinations)."""
    lines = [
        "Table 1 - Tested module combinations",
        "====================================",
        f"{'name':<12} {'partition':<14} {'concurrency':<12} {'distribution':<12}",
        "-" * 52,
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<12} {row['partition']:<14} "
            f"{row['concurrency']:<12} {row['distribution']:<12}"
        )
    return "\n".join(lines)


def render_checks(title: str, checks: Sequence[tuple[str, bool]]) -> str:
    """Shape-assertion summary (what EXPERIMENTS.md records)."""
    lines = [title, "-" * len(title)]
    for label, ok in checks:
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {label}")
    return "\n".join(lines)
