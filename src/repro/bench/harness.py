"""Experiment harness: one function per measured configuration.

``run_sieve`` assembles the named combination as a declarative
:class:`~repro.api.app.ParallelApp` (via
:func:`~repro.apps.primes.sieve_app`), deploys it, and drives the full
sieve through the futures-first submission API — ``app.start`` builds
the woven filter, ``app.submit`` dispatches the filter call and drives
the simulator to completion.  The output is validated against the
independent reference and returned as a :class:`RunResult` with the
simulated time plus the observability counters that explain it
(messages, per-node utilisation).

``run_handcoded`` does the same for the no-AOP baselines of Figure 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

import numpy as np

from repro.aop.weaver import Weaver, default_weaver
from repro.apps.primes import (
    HandCodedFarmRMI,
    HandCodedPipelineRMI,
    SieveWorkload,
    expected_sieve_output,
    sieve_app,
    sieve_cost_aspect,
)
from repro.bench.costmodel import HANDCODED_COST_MODEL, PAPER_COST_MODEL, CostModel
from repro.cluster import paper_testbed, single_node, snapshot
from repro.middleware.context import use_node
from repro.runtime import SimBackend, use_backend
from repro.sim import Simulator

__all__ = ["RunResult", "run_sieve", "run_handcoded", "reference_for"]


@dataclass
class RunResult:
    """Outcome + observability for one configuration run."""

    combo: str
    filters: int
    maximum: int
    packs: int
    sim_time: float
    survivors: int
    correct: bool
    messages: int = 0
    remote_messages: int = 0
    bytes: int = 0
    middleware_calls: int = 0
    mean_utilisation: float = 0.0
    detail: dict[str, Any] = field(default_factory=dict)

    def row(self) -> tuple:
        return (self.combo, self.filters, round(self.sim_time, 3), self.correct)


@lru_cache(maxsize=8)
def reference_for(maximum: int) -> tuple:
    """Cached reference survivors for one workload scale."""
    return tuple(expected_sieve_output(maximum).tolist())


def _validate(survivors: np.ndarray, maximum: int) -> bool:
    return tuple(np.sort(np.asarray(survivors)).tolist()) == reference_for(maximum)


def run_sieve(
    combo: str,
    n_filters: int,
    maximum: int = 10_000_000,
    packs: int = 50,
    cost_model: CostModel = PAPER_COST_MODEL,
    weaver: Weaver | None = None,
    validate: bool = True,
) -> RunResult:
    """Run one woven configuration on the simulated testbed.

    FarmThreads (no distribution aspect) runs on a single machine, as in
    the paper; every distributed combination uses the 7-node testbed.
    The run itself is one ``start`` + one ``submit`` on the assembled
    :class:`~repro.api.app.ParallelApp` — called from outside the
    simulator, both drive it to completion transparently.
    """
    sim = Simulator()
    cluster = (
        single_node(sim)
        if combo in ("FarmThreads", "PipeThreads", "Sequential")
        else paper_testbed(sim)
    )
    workload = SieveWorkload(maximum, packs)
    cost = sieve_cost_aspect(
        cost_model.ns_per_op,
        aop_factor=cost_model.aop_factor,
        dispatch_cost=cost_model.dispatch_cost,
    )
    app = sieve_app(combo, workload, n_filters, cluster=cluster, cost=cost)
    if weaver is not None:
        app.weaver = weaver
    out: dict[str, Any] = {}

    try:
        with app:
            app.start(2, workload.sqrt)
            out["survivors"] = np.asarray(app.submit(workload.candidates).result())
            out["time"] = sim.now
    finally:
        sim.shutdown()

    survivors = out["survivors"]
    return RunResult(
        combo=combo,
        filters=n_filters,
        maximum=maximum,
        packs=packs,
        sim_time=out["time"],
        survivors=int(len(survivors)),
        correct=_validate(survivors, maximum) if validate else True,
        messages=cluster.network.messages,
        remote_messages=cluster.network.remote_messages,
        bytes=cluster.network.bytes,
        middleware_calls=getattr(app.middleware, "calls", 0),
        mean_utilisation=snapshot(cluster)["mean_utilisation"],
        detail={
            "cost_charged": cost.total_charged,
            "spawned": getattr(app.async_aspect, "spawned_calls", 0)
            if app.async_aspect
            else 0,
        },
    )


def run_handcoded(
    kind: str,
    n_filters: int,
    maximum: int = 10_000_000,
    packs: int = 50,
    cost_model: CostModel = HANDCODED_COST_MODEL,
    validate: bool = True,
) -> RunResult:
    """Run a hand-coded (no-AOP) baseline: ``"pipeline"`` or ``"farm"``."""
    sim = Simulator()
    cluster = paper_testbed(sim)
    workload = SieveWorkload(maximum, packs)
    backend = SimBackend(sim)
    app_cls = {"pipeline": HandCodedPipelineRMI, "farm": HandCodedFarmRMI}[kind]
    app = app_cls(cluster, backend, workload, n_filters, cost_model.ns_per_op)
    out: dict[str, Any] = {}

    def main() -> None:
        with use_backend(backend), use_node(cluster.head):
            app.setup()
            out["survivors"] = app.run()
            out["time"] = sim.now

    try:
        sim.spawn(main, name="main")
        sim.run()
    finally:
        app.shutdown()
        sim.shutdown()

    survivors = out["survivors"]
    return RunResult(
        combo=f"handcoded-{kind}",
        filters=n_filters,
        maximum=maximum,
        packs=packs,
        sim_time=out["time"],
        survivors=int(len(survivors)),
        correct=_validate(survivors, maximum) if validate else True,
        messages=cluster.network.messages,
        remote_messages=cluster.network.remote_messages,
        bytes=cluster.network.bytes,
        middleware_calls=app.rmi.calls,
        mean_utilisation=snapshot(cluster)["mean_utilisation"],
    )
