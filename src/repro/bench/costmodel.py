"""Calibrated cost-model constants for the simulated testbed.

The aim is the paper's *shape*, anchored by literature-plausible
magnitudes for a 2005-era dual Xeon 3.2 GHz / JDK 1.5 / Gigabit setup:

* ``ns_per_op = 16.5 ns`` — one remainder operation in the JIT-compiled
  inner filter loop (~50 cycles at 3.2 GHz including loop/bounds
  overhead).  With the paper workload (max = 10 M ⇒ ~380 M counted
  divisions) the sequential sieve lands near the ~6.3 s the figures
  show for one filter.
* ``aop_factor = 1.03``, ``dispatch_cost = 2 µs`` — the "<5 %" Figure 16
  gap: advice bodies are out-of-line calls the JIT no longer inlines,
  plus a small per-joinpoint dispatch cost.
* middleware profiles live with the middlewares (``RMI_COSTS``,
  ``MPP_COSTS``); the network preset is ``GIGABIT_ETHERNET``.

Nothing here is fitted to the paper's exact numbers — EXPERIMENTS.md
compares shapes, not absolutes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "PAPER_COST_MODEL", "HANDCODED_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Application-level compute cost constants."""

    #: seconds per counted division in the filter inner loop
    ns_per_op: float = 16.5e-9
    #: multiplicative compute overhead of woven vs hand-inlined code
    aop_factor: float = 1.03
    #: additive per-joinpoint interception cost (seconds)
    dispatch_cost: float = 2e-6

    @property
    def seconds_per_op(self) -> float:
        return self.ns_per_op


#: the woven (AspectJ-analogue) configuration
PAPER_COST_MODEL = CostModel()

#: the hand-coded (Figure 16 "Java") configuration: same work, no AOP tax
HANDCODED_COST_MODEL = CostModel(aop_factor=1.0, dispatch_cost=0.0)
