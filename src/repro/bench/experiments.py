"""Experiment generators for every table and figure of the paper.

Each ``figNN``/``tableN`` function sweeps the corresponding
configurations, returns the raw series, renders the paper-format table,
and evaluates the *shape checks* EXPERIMENTS.md records:

* **Figure 16** — hand-coded RMI vs woven AspectJ-analogue sieve;
  check: overhead < 5 % at every filter count (compute-bound scale).
* **Table 1** — the five module combinations (regenerated from the
  composition metadata, not hard-coded strings).
* **Figure 17** — execution time vs filters for the five combinations;
  checks: farm beats pipeline, threads flatten past one machine's
  cores, MPP below RMI, dynamic ≈ static farm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.apps.primes import TABLE1_COMBINATIONS, SieveWorkload, build_sieve_stack
from repro.bench.costmodel import HANDCODED_COST_MODEL, PAPER_COST_MODEL, CostModel
from repro.bench.harness import RunResult, run_handcoded, run_sieve
from repro.bench.report import render_checks, render_series, render_table1
from repro.parallel.concern import Concern

__all__ = ["ExperimentResult", "FILTER_COUNTS", "fig16", "fig17", "table1"]

#: the x-axis of Figures 16 and 17
FILTER_COUNTS: tuple[int, ...] = (1, 4, 7, 10, 13, 16)


@dataclass
class ExperimentResult:
    """Series + rendered report + shape-check outcomes."""

    name: str
    xs: Sequence[int]
    series: dict[str, list[float]]
    checks: list[tuple[str, bool]] = field(default_factory=list)
    report: str = ""
    runs: list[RunResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(ok for _, ok in self.checks)


def fig16(
    filters: Sequence[int] = FILTER_COUNTS,
    maximum: int = 10_000_000,
    packs: int = 50,
    woven_cost: CostModel = PAPER_COST_MODEL,
    hand_cost: CostModel = HANDCODED_COST_MODEL,
) -> ExperimentResult:
    """Figure 16 — performance of Java (hand-coded) versus AspectJ."""
    series: dict[str, list[float]] = {"AspectJ": [], "Java": []}
    runs: list[RunResult] = []
    for n in filters:
        woven = run_sieve("PipeRMI", n, maximum, packs, cost_model=woven_cost)
        hand = run_handcoded("pipeline", n, maximum, packs, cost_model=hand_cost)
        assert woven.correct and hand.correct
        series["AspectJ"].append(woven.sim_time)
        series["Java"].append(hand.sim_time)
        runs += [woven, hand]
    overhead = [
        (aj - java) / java
        for aj, java in zip(series["AspectJ"], series["Java"])
    ]
    checks = [
        (
            f"AOP overhead < 5% at every filter count "
            f"(max {max(overhead):.1%})",
            max(overhead) < 0.05,
        ),
        (
            "AspectJ version is never faster than hand-coded",
            min(overhead) >= -0.01,
        ),
        (
            "both curves decrease from 1 to 16 filters",
            series["AspectJ"][-1] < series["AspectJ"][0]
            and series["Java"][-1] < series["Java"][0],
        ),
    ]
    report = (
        render_series(
            "Figure 16 - Performance of Java versus AspectJ (prime sieve, "
            f"max={maximum:,}, {packs} packs)",
            "filters",
            list(filters),
            series,
            bar_for="AspectJ",
        )
        + "\n"
        + render_checks("shape checks", checks)
    )
    return ExperimentResult("fig16", list(filters), series, checks, report, runs)


def table1() -> ExperimentResult:
    """Table 1 — regenerated from the composition metadata itself."""
    from repro.cluster import paper_testbed
    from repro.sim import Simulator

    workload = SieveWorkload(10_000, 2)
    rows = []
    for combo in TABLE1_COMBINATIONS:
        stack = build_sieve_stack(combo, workload, 2, cluster=paper_testbed(Simulator()))
        partition_modules = stack.composition.by_concern(Concern.PARTITION)
        partition = partition_modules[0].name if partition_modules else "-"
        merged = any(
            getattr(m, "provides_concurrency", False) for m in partition_modules
        )
        concurrency = (
            "merged"
            if merged
            else ("yes" if stack.composition.by_concern(Concern.CONCURRENCY) else "no")
        )
        dist_modules = stack.composition.by_concern(Concern.DISTRIBUTION)
        distribution = (
            dist_modules[0].name.replace("distribution-", "").upper()
            if dist_modules
            else "no"
        )
        rows.append(
            {
                "name": combo,
                "partition": partition,
                "concurrency": concurrency,
                "distribution": distribution,
            }
        )
        stack.shutdown()
    expected = {
        "FarmThreads": ("farm", "no"),
        "PipeRMI": ("pipeline", "RMI"),
        "FarmRMI": ("farm", "RMI"),
        "FarmDRMI": ("dynamic-farm", "RMI"),
        "FarmMPP": ("farm", "MPP"),
    }
    checks = [
        (
            f"{row['name']}: partition={row['partition']} "
            f"distribution={row['distribution']}",
            (row["partition"], row["distribution"]) == expected[row["name"]],
        )
        for row in rows
    ]
    report = render_table1(rows) + "\n" + render_checks("row checks", checks)
    result = ExperimentResult("table1", [], {}, checks, report)
    result.rows = rows  # type: ignore[attr-defined]
    return result


def fig17(
    filters: Sequence[int] = FILTER_COUNTS,
    maximum: int = 10_000_000,
    packs: int = 50,
    combos: Sequence[str] = TABLE1_COMBINATIONS,
    cost_model: CostModel = PAPER_COST_MODEL,
) -> ExperimentResult:
    """Figure 17 — execution times of the module combinations."""
    series: dict[str, list[float]] = {combo: [] for combo in combos}
    runs: list[RunResult] = []
    for combo in combos:
        for n in filters:
            result = run_sieve(combo, n, maximum, packs, cost_model=cost_model)
            assert result.correct, f"{combo}@{n} incorrect"
            series[combo].append(result.sim_time)
            runs.append(result)
    xs = list(filters)
    checks = _fig17_checks(xs, series)
    report = (
        render_series(
            f"Figure 17 - Performance of AspectJ versions (max={maximum:,}, "
            f"{packs} packs, 7-node testbed)",
            "filters",
            xs,
            series,
        )
        + "\n"
        + render_checks("shape checks", checks)
    )
    return ExperimentResult("fig17", xs, series, checks, report, runs)


def _fig17_checks(
    xs: Sequence[int], series: dict[str, list[float]]
) -> list[tuple[str, bool]]:
    checks: list[tuple[str, bool]] = []

    def have(*names: str) -> bool:
        return all(n in series for n in names)

    if have("FarmThreads"):
        threads = series["FarmThreads"]
        beyond = [t for x, t in zip(xs, threads) if x >= 7]
        if beyond and len(threads) >= 2:
            flat = max(beyond) > 0 and (
                max(beyond) - min(beyond)
            ) / max(beyond) < 0.15
            checks.append(
                ("FarmThreads flattens beyond one machine's cores", flat)
            )
    if have("FarmRMI", "PipeRMI"):
        farm_wins = all(
            f <= p * 1.02
            for x, f, p in zip(xs, series["FarmRMI"], series["PipeRMI"])
            if x >= 4
        )
        checks.append(("farm beats pipeline at every point >= 4 filters", farm_wins))
    if have("FarmMPP", "FarmRMI"):
        mpp_wins = all(
            m < r
            for x, m, r in zip(xs, series["FarmMPP"], series["FarmRMI"])
            if x >= 4
        )
        checks.append(("FarmMPP below FarmRMI at every point >= 4 filters", mpp_wins))
    if have("FarmDRMI", "FarmRMI"):
        close = all(
            abs(d - s) / s < 0.25
            for d, s in zip(series["FarmDRMI"], series["FarmRMI"])
        )
        checks.append(
            ("dynamic farm within 25% of static farm (no load imbalance)", close)
        )
    if have("FarmRMI"):
        farm = series["FarmRMI"]
        through_13 = [t for x, t in zip(xs, farm) if x <= 13]
        decreasing = all(
            later <= earlier * 1.02
            for earlier, later in zip(through_13, through_13[1:])
        )
        checks.append(("FarmRMI decreases monotonically through 13 filters", decreasing))
        # At 16 filters, 7 nodes host the 16 static workers unevenly
        # (2 nodes carry 3); stragglers may lift the static farm slightly
        # off its minimum — it must still stay near it.
        checks.append(
            (
                "FarmRMI at 16 filters stays within 25% of its best point",
                farm[-1] <= min(farm) * 1.25,
            )
        )
        if have("FarmDRMI") and xs and xs[-1] == 16:
            checks.append(
                (
                    "demand-driven farm absorbs the 16-filter imbalance "
                    "(FarmDRMI <= FarmRMI at 16)",
                    series["FarmDRMI"][-1] <= farm[-1] * 1.02,
                )
            )
    if have("FarmThreads", "FarmRMI") and xs and xs[0] == 1:
        checks.append(
            (
                "without distribution overhead FarmThreads wins at 1 filter",
                series["FarmThreads"][0] <= series["FarmRMI"][0],
            )
        )
    return checks
