"""Experiment harness: calibrated cost model, per-configuration runners,
figure/table generators and paper-format reporting."""

from repro.bench.costmodel import HANDCODED_COST_MODEL, PAPER_COST_MODEL, CostModel
from repro.bench.experiments import (
    FILTER_COUNTS,
    ExperimentResult,
    fig16,
    fig17,
    table1,
)
from repro.bench.harness import RunResult, run_handcoded, run_sieve
from repro.bench.report import render_checks, render_series, render_table1

__all__ = [
    "CostModel",
    "PAPER_COST_MODEL",
    "HANDCODED_COST_MODEL",
    "RunResult",
    "run_sieve",
    "run_handcoded",
    "ExperimentResult",
    "FILTER_COUNTS",
    "fig16",
    "fig17",
    "table1",
    "render_series",
    "render_table1",
    "render_checks",
]
