"""Deterministic fault injection and retry policies.

The runtime's correctness claims (overlap, admission, deadlines) assume
workers never die and replies never vanish.  This package makes failure
a first-class *test axis*: a seeded :class:`FaultSchedule` of
``kill_worker`` / ``drop_reply`` / ``delay_reply`` / ``raise_in_piece``
events fires at the dispatch boundaries every skeleton already shares —
:func:`~repro.parallel.partition.base.dispatch_piece`, the
:class:`~repro.parallel.concurrency.asynchronous.PooledSpawner` worker
loops, and :class:`~repro.middleware.proc.ProcMiddleware`'s reply wait
— while :class:`RetryPolicy` supplies the recovery semantics that make
those faults survivable (re-dispatch to a healthy worker instead of
latching failure).

See ``docs/ARCHITECTURE.md`` ("Fault injection and retry") for the hook
point diagram and lifecycle.
"""

from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultEvent,
    FaultSchedule,
    current_faults,
    fire_fault,
    install_faults,
    remove_faults,
    use_faults,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultEvent",
    "FaultSchedule",
    "RetryPolicy",
    "current_faults",
    "fire_fault",
    "install_faults",
    "remove_faults",
    "use_faults",
]
