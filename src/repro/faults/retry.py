"""Per-call retry policies for failed piece dispatches.

A :class:`RetryPolicy` travels with an admitted call (``StackSpec.retry``
→ :class:`~repro.runtime.admission.AdmissionSlot` →
:meth:`~repro.parallel.partition.base.DispatchContext.adopt_retry`) and
tells the per-call :class:`~repro.parallel.partition.base.ResultCollector`
and the skeletons' dispatch loops how to respond when a piece fails:
how many attempts a piece gets, how long to back off between them, and
which exception classes are worth retrying at all.

The default ``retry_on`` is deliberately narrow —
:class:`~repro.errors.InjectedFault` and
:class:`~repro.errors.WorkerCrashed` — i.e. infrastructure failures.
A genuine application error raised by servant code (wrapped in a plain
:class:`~repro.errors.RemoteError` by the distribution aspect) is
deterministic: re-running the piece would fail again, so it latches
immediately.  :class:`~repro.errors.AdmissionError` (shed calls, blown
deadlines) is *never* retryable regardless of configuration — those are
verdicts about the call, not the worker.
"""

from __future__ import annotations

import time

from repro.errors import AdmissionError, AdviceError, InjectedFault, WorkerCrashed

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """How many times a failed piece is re-dispatched, and for what.

    ``max_attempts`` counts *total* attempts (first dispatch included),
    so ``max_attempts=1`` means fail-fast.  ``backoff`` is a linear
    pause in seconds — attempt ``n`` sleeps ``backoff * n`` before the
    re-dispatch.  ``retry_on`` is a tuple of exception classes worth
    retrying; anything else (and any :class:`AdmissionError`) latches
    the original failure immediately.
    """

    __slots__ = ("max_attempts", "backoff", "retry_on")

    def __init__(
        self,
        max_attempts: int = 3,
        backoff: float = 0.0,
        retry_on: tuple[type[BaseException], ...] | None = None,
    ):
        if max_attempts < 1:
            raise AdviceError("max_attempts must be >= 1")
        if backoff < 0:
            raise AdviceError("backoff must be >= 0")
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.retry_on = (
            (InjectedFault, WorkerCrashed) if retry_on is None else tuple(retry_on)
        )
        for cls in self.retry_on:
            if not (isinstance(cls, type) and issubclass(cls, BaseException)):
                raise AdviceError("retry_on entries must be exception classes")

    def retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth another attempt.  Admission verdicts
        (shed, deadline, rejected) are never retryable."""
        if isinstance(exc, AdmissionError):
            return False
        return isinstance(exc, self.retry_on)

    def pause(self, attempt: int) -> None:
        """Linear backoff before re-dispatching attempt ``attempt + 1``."""
        if self.backoff > 0:
            time.sleep(self.backoff * attempt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(cls.__name__ for cls in self.retry_on)
        return (
            f"<RetryPolicy max_attempts={self.max_attempts} "
            f"backoff={self.backoff} retry_on=({kinds})>"
        )
