"""Seeded fault schedules and the ambient fault plane.

A :class:`FaultSchedule` is a *deterministic* description of when the
runtime misbehaves: a list of explicit :class:`FaultEvent` entries
(keyed by hook site, worker index and per-site call count) and/or a
seeded random event stream (``rates=``) drawn from one
``random.Random(seed)`` in fire order — the same schedule replayed over
the same deterministic workload (the sim backend's virtual time)
produces the identical event trace, which is what the golden-trace
regression test pins down.

The schedule is installed on a process-global *plane* (a stack, like
the ambient backend) rather than a thread-local one on purpose: faults
must be visible from every activity the runtime creates — resident pool
workers, per-call spawned activities, middleware reply waits — none of
which share the installing thread.  Hook sites consult the plane with
:func:`fire_fault`, which is a no-op costing one truthiness check when
no schedule is installed, so the production hot path stays unpriced.

Hook sites (the ``site`` key):

* ``"dispatch"`` — :func:`~repro.parallel.partition.base.dispatch_piece`,
  the boundary every skeleton's piece crosses (``index`` = the worker
  index the piece was routed to, when the strategy knows one);
* ``"pool"``     — the :class:`~repro.parallel.concurrency.asynchronous.PooledSpawner`
  worker loop, between pulling a task and running it (``index`` = the
  resident worker's pin index);
* ``"proc"``     — :class:`~repro.middleware.proc.ProcMiddleware`'s
  request/reply round trip (``index`` = the resident worker process
  index);
* ``"loop"``     — the :class:`~repro.runtime.asyncbackend.AsyncioBackend`'s
  bridged event-loop tasks, once per task before its coroutine is
  awaited (``index`` is unused — loop tasks have no stable worker
  identity).  ``delay_reply`` here is an ``await asyncio.sleep`` (the
  loop keeps serving every other task while the reply stalls).
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Any, Iterable, Iterator

from repro.errors import AdviceError

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultEvent",
    "FaultSchedule",
    "current_faults",
    "fire_fault",
    "install_faults",
    "remove_faults",
    "use_faults",
]

#: the four injectable misbehaviours
FAULT_KINDS = ("kill_worker", "drop_reply", "delay_reply", "raise_in_piece")
#: the four hook sites (see module docstring)
FAULT_SITES = ("dispatch", "pool", "proc", "loop")


class FaultEvent:
    """One scheduled misbehaviour.

    ``site`` names the hook point, ``index`` pins the event to one
    worker index (``None`` matches any), and exactly one of ``on_call``
    (fire on the N-th matching consultation, once) or ``every`` (fire on
    every N-th consultation, repeatedly) selects *when*.  Counts are
    kept per ``(site, index)`` when the event is index-pinned and per
    site otherwise, so "kill worker 0's first call" and "drop every 50th
    dispatch" are both one event.
    """

    __slots__ = ("kind", "site", "index", "on_call", "every", "delay", "fired")

    def __init__(
        self,
        kind: str,
        site: str = "dispatch",
        index: int | None = None,
        on_call: int = 1,
        every: int | None = None,
        delay: float = 0.0,
    ):
        if kind not in FAULT_KINDS:
            raise AdviceError(
                f"unknown fault kind {kind!r} (choose from "
                f"{', '.join(FAULT_KINDS)})"
            )
        if site not in FAULT_SITES:
            raise AdviceError(
                f"unknown fault site {site!r} (choose from "
                f"{', '.join(FAULT_SITES)})"
            )
        if on_call < 1:
            raise AdviceError("on_call counts from 1")
        if every is not None and every < 1:
            raise AdviceError("every must be >= 1")
        if delay < 0:
            raise AdviceError("delay must be >= 0")
        self.kind = kind
        self.site = site
        self.index = index
        self.on_call = on_call
        self.every = every
        self.delay = delay
        self.fired = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"{self.site}[{self.index}]" if self.index is not None else self.site
        when = f"every={self.every}" if self.every else f"on_call={self.on_call}"
        return f"<FaultEvent {self.kind}@{where} {when}>"


class FaultSchedule:
    """A deterministic plan of injected faults, with an event trace.

    Two event sources compose:

    * ``events`` — explicit :class:`FaultEvent` entries, matched in
      declaration order (the first unexhausted match per consultation
      wins);
    * ``rates`` — a ``{kind: probability}`` map drawn from one seeded
      ``random.Random``; the RNG is consumed once per consultation in
      fire order, so over a deterministic workload (virtual time, or a
      concurrency-free run) the drawn events replay identically.

    Every fired event is appended to :attr:`trace` as a
    ``[sequence, site, index, count, kind]`` row — plain data, suitable
    for committing as a golden trace.
    """

    def __init__(
        self,
        events: Iterable[FaultEvent] = (),
        seed: int | None = None,
        rates: dict[str, float] | None = None,
        name: str = "faults",
    ):
        self.events = list(events)
        self.seed = seed
        self.rates = dict(rates) if rates else {}
        for kind in self.rates:
            if kind not in FAULT_KINDS:
                raise AdviceError(f"unknown fault kind {kind!r} in rates")
        self.name = name
        self._rng = random.Random(seed)
        self._counts: dict[Any, int] = {}
        #: fired events as [sequence, site, index, count, kind] rows
        self.trace: list[list[Any]] = []
        self._lock = threading.Lock()

    def fire(self, site: str, index: int | None = None) -> FaultEvent | None:
        """Consult the schedule at a hook site: bump the site's call
        counters, return the matching event (at most one per
        consultation) and record it in the trace, or ``None``."""
        with self._lock:
            site_count = self._counts.get(site, 0) + 1
            self._counts[site] = site_count
            pinned_count = None
            if index is not None:
                key = (site, index)
                pinned_count = self._counts.get(key, 0) + 1
                self._counts[key] = pinned_count
            event = self._match_locked(site, index, site_count, pinned_count)
            if event is None and self.rates:
                event = self._draw_locked(site, index)
            if event is not None:
                count = pinned_count if event.index is not None else site_count
                self.trace.append(
                    [len(self.trace), site, index, count, event.kind]
                )
            return event

    def _match_locked(
        self,
        site: str,
        index: int | None,
        site_count: int,
        pinned_count: int | None,
    ) -> FaultEvent | None:
        for event in self.events:
            if event.site != site:
                continue
            if event.index is not None:
                if index is None or event.index != index:
                    continue
                count = pinned_count
            else:
                count = site_count
            if event.every is not None:
                if count % event.every == 0:
                    return event
            elif not event.fired and count == event.on_call:
                event.fired = True
                return event
        return None

    def _draw_locked(self, site: str, index: int | None) -> FaultEvent | None:
        # one draw per consultation, whatever the outcome: the RNG
        # consumption order IS the determinism contract
        draw = self._rng.random()
        floor = 0.0
        for kind, rate in self.rates.items():
            if floor <= draw < floor + rate:
                return FaultEvent(kind, site=site, index=index)
            floor += rate
        return None

    def fired_count(self) -> int:
        """Events fired so far (trace length)."""
        with self._lock:
            return len(self.trace)

    def trace_snapshot(self) -> list[list[Any]]:
        """An immutable copy of the fired-event trace."""
        with self._lock:
            return [list(row) for row in self.trace]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultSchedule {self.name} events={len(self.events)} "
            f"fired={len(self.trace)}>"
        )


# ---------------------------------------------------------------------------
# The ambient fault plane
# ---------------------------------------------------------------------------

#: installed schedules, innermost last — deliberately process-global
#: (NOT thread-local): pool residents and spawned activities must see
#: the schedule the deploying thread installed
_ACTIVE: list[FaultSchedule] = []
_PLANE_LOCK = threading.Lock()


def install_faults(schedule: FaultSchedule) -> FaultSchedule:
    """Push ``schedule`` onto the fault plane (innermost wins); returns
    the schedule as the removal token."""
    with _PLANE_LOCK:
        _ACTIVE.append(schedule)
    return schedule


def remove_faults(schedule: FaultSchedule) -> None:
    """Remove one installation of ``schedule`` (idempotent)."""
    with _PLANE_LOCK:
        for position in range(len(_ACTIVE) - 1, -1, -1):
            if _ACTIVE[position] is schedule:
                del _ACTIVE[position]
                return


@contextmanager
def use_faults(schedule: FaultSchedule | None) -> Iterator[FaultSchedule | None]:
    """Install ``schedule`` for the block (``None`` is a pass-through)."""
    if schedule is None:
        yield None
        return
    install_faults(schedule)
    try:
        yield schedule
    finally:
        remove_faults(schedule)


def current_faults() -> FaultSchedule | None:
    """The innermost installed schedule, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


def fire_fault(site: str, index: int | None = None) -> FaultEvent | None:
    """Consult the innermost schedule at a hook site.  The fast path —
    no schedule installed — is one truthiness check, so instrumented
    boundaries cost nothing in production."""
    if not _ACTIVE:
        return None
    schedule = _ACTIVE[-1]
    return schedule.fire(site, index)
