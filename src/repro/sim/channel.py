"""Message channels with transit delay.

A :class:`Channel` is a unidirectional mailbox between simulated
processes.  ``send`` is non-blocking for the sender (the network card
model: the payload leaves after a *transit delay* computed by the owner —
latency + size/bandwidth in the cluster layer).  ``recv`` blocks until a
message *arrives* (send time + delay).

Messages carry envelope metadata used by the metrics layer.
"""

from __future__ import annotations

from typing import Any

from repro.sim.kernel import Simulator
from repro.sim.sync import SimQueue

__all__ = ["Message", "Channel"]


class Message:
    """Envelope for one transmitted payload."""

    __slots__ = ("payload", "sent_at", "delivered_at", "size_bytes", "tag", "sender")

    def __init__(
        self,
        payload: Any,
        sent_at: float,
        delivered_at: float,
        size_bytes: int = 0,
        tag: str = "",
        sender: str = "",
    ):
        self.payload = payload
        self.sent_at = sent_at
        self.delivered_at = delivered_at
        self.size_bytes = size_bytes
        self.tag = tag
        self.sender = sender

    @property
    def transit_time(self) -> float:
        return self.delivered_at - self.sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message tag={self.tag!r} {self.size_bytes}B "
            f"{self.sent_at:g}->{self.delivered_at:g}>"
        )


class Channel:
    """FIFO delivery with per-message delay.

    Delivery order: messages become visible in *arrival-time* order;
    ties resolve in send order (the kernel's sequence numbers guarantee
    this).  With a constant delay this is plain FIFO — adequate for a
    switched full-duplex Ethernet model.
    """

    def __init__(self, sim: Simulator, name: str = "channel"):
        self.sim = sim
        self.name = name
        self._arrivals = SimQueue(sim, name=f"{name}.arrivals")
        #: counters for the metrics layer
        self.sent_count = 0
        self.sent_bytes = 0

    def send(
        self,
        payload: Any,
        delay: float = 0.0,
        size_bytes: int = 0,
        tag: str = "",
        sender: str = "",
    ) -> Message:
        """Enqueue ``payload`` to arrive ``delay`` sim-seconds from now.

        Non-blocking; callable from process or kernel context.
        """
        message = Message(
            payload,
            sent_at=self.sim.now,
            delivered_at=self.sim.now + delay,
            size_bytes=size_bytes,
            tag=tag,
            sender=sender,
        )
        self.sent_count += 1
        self.sent_bytes += size_bytes
        if delay <= 0:
            self._arrivals.put(message)
        else:
            self.sim.call_later(delay, lambda: self._arrivals.put(message))
        return message

    def recv(self, timeout: float | None = None) -> Message:
        """Block until a message arrives; returns the envelope."""
        return self._arrivals.get(timeout=timeout)

    def try_recv(self) -> Message | None:
        ok, message = self._arrivals.try_get()
        return message if ok else None

    @property
    def pending(self) -> int:
        """Messages already arrived and not yet received."""
        return len(self._arrivals)
