"""Deterministic discrete-event simulation kernel.

The substrate that replaces the paper's physical testbed.  Design goals:

* **Plain code runs inside the simulation.**  Simulated processes are
  real Python threads lock-stepped on virtual time: exactly one entity
  (the kernel or a single process) runs at any instant, handing control
  over explicitly.  Woven application code therefore needs no rewriting
  into coroutines — the same aspects run under the thread backend and the
  simulation backend.
* **Determinism.**  The event queue is ordered by ``(time, sequence)``;
  thread handoffs are strictly serialized, so a given program produces
  the same event order, the same simulated timings, and the same results
  on every run.  (The GIL is irrelevant: simulated time, not wall time,
  is what experiments measure.)
* **Fail fast.**  An uncaught exception inside a process aborts
  :meth:`Simulator.run` with the original traceback; a drained queue with
  still-blocked processes raises :class:`~repro.errors.SimDeadlockError`
  naming them.

Example::

    sim = Simulator()

    def worker():
        sim.hold(2.0)
        print(sim.now)          # 2.0

    sim.spawn(worker)
    sim.run()
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Callable, Iterable

from repro.errors import ProcessKilled, SimDeadlockError, SimTimeError, SimulationError

__all__ = ["Simulator", "SimProcess", "current_process", "current_simulator"]

_LOCAL = threading.local()


def current_process() -> "SimProcess | None":
    """The :class:`SimProcess` running on this thread, if any."""
    return getattr(_LOCAL, "process", None)


def current_simulator() -> "Simulator | None":
    """The :class:`Simulator` owning the current thread, if any."""
    proc = current_process()
    return proc.sim if proc is not None else None


class SimProcess:
    """A simulated process: a real thread scheduled on virtual time."""

    _ids = 0

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[[], Any],
        name: str | None,
        daemon: bool = False,
    ):
        SimProcess._ids += 1
        self.sim = sim
        self.fn = fn
        self.name = name or f"process-{SimProcess._ids}"
        #: daemon processes (server accept loops) may stay blocked when
        #: the queue drains without tripping deadlock detection
        self.daemon = daemon
        self.finished = False
        self.killed = False
        self.result: Any = None
        self.exception: BaseException | None = None
        #: What the process is blocked on (human-readable, for deadlock
        #: reports); ``None`` while runnable/running.
        self.blocked_on: str | None = None
        self._resume_evt = threading.Event()
        self._started = False
        self._thread = threading.Thread(
            target=self._bootstrap, name=f"sim:{self.name}", daemon=True
        )
        # processes waiting in join()
        self._joiners: list[SimProcess] = []

    # -- thread body --------------------------------------------------------

    def _bootstrap(self) -> None:
        self._resume_evt.wait()
        self._resume_evt.clear()
        _LOCAL.process = self
        try:
            if not self.killed:
                self.result = self.fn()
        except ProcessKilled:
            pass
        except BaseException as exc:  # noqa: BLE001 - forwarded to run()
            self.exception = exc
            self.sim._failure = exc
        finally:
            self.finished = True
            _LOCAL.process = None
            self.sim._on_process_finished(self)

    # -- kernel-side control --------------------------------------------------

    def _resume(self) -> None:
        if not self._started:
            self._started = True
            self._thread.start()
        self._resume_evt.set()

    # -- process-side API -------------------------------------------------------

    def join(self) -> Any:
        """Block the *calling* process until this one finishes; returns
        its result (or raises its exception).

        Callable from outside the simulation only once the process has
        finished (collecting results after ``run()``).
        """
        caller = current_process()
        if caller is None:
            if self.finished:
                if self.exception is not None:
                    raise self.exception
                return self.result
            raise SimulationError(
                "join() on an unfinished process must be called from inside a process"
            )
        if caller is self:
            raise SimulationError("a process cannot join itself")
        if not self.finished:
            self._joiners.append(caller)
            self.sim._block(f"join({self.name})")
        if self.exception is not None:
            raise self.exception
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "finished"
            if self.finished
            else (f"blocked:{self.blocked_on}" if self.blocked_on else "ready")
        )
        return f"<SimProcess {self.name} {state}>"


class Simulator:
    """The event loop and virtual clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        # heap entries: (time, seq, kind, payload); kinds:
        #   "resume"  payload=SimProcess
        #   "timer"   payload=callable run in kernel context
        self._queue: list[tuple[float, int, str, Any]] = []
        self._processes: list[SimProcess] = []
        self._kernel_evt = threading.Event()
        self._running = False
        self._failure: BaseException | None = None
        self._finished_hooks: list[Callable[[SimProcess], None]] = []

    # -- clock -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    # -- scheduling ---------------------------------------------------------------

    def _push(self, at: float, kind: str, payload: Any) -> int:
        if at < self._now - 1e-12:
            raise SimTimeError(
                f"cannot schedule at {at} (now={self._now}): time is monotonic"
            )
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, kind, payload))
        return self._seq

    def schedule_resume(self, proc: SimProcess, delay: float = 0.0) -> None:
        """Make ``proc`` runnable after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimTimeError(f"negative delay {delay}")
        proc.blocked_on = None
        self._push(self._now + delay, "resume", proc)

    def call_at(self, at: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` in kernel context at absolute time ``at`` (used by
        resources to model completions without a dedicated process)."""
        self._push(at, "timer", fn)

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise SimTimeError(f"negative delay {delay}")
        self.call_at(self._now + delay, fn)

    # -- process management -----------------------------------------------------

    def spawn(
        self,
        fn: Callable[[], Any],
        name: str | None = None,
        delay: float = 0.0,
        daemon: bool = False,
    ) -> SimProcess:
        """Create a process running ``fn`` after ``delay`` sim-seconds."""
        proc = SimProcess(self, fn, name, daemon=daemon)
        self._processes.append(proc)
        self._push(self._now + delay, "resume", proc)
        return proc

    @property
    def processes(self) -> tuple[SimProcess, ...]:
        return tuple(self._processes)

    def add_finished_hook(self, hook: Callable[[SimProcess], None]) -> None:
        """Kernel-context callback run whenever a process finishes."""
        self._finished_hooks.append(hook)

    # -- blocking protocol (called from process threads) ----------------------------

    def hold(self, duration: float) -> None:
        """Advance this process ``duration`` simulated seconds."""
        proc = self._require_process()
        if duration < 0:
            raise SimTimeError(f"negative hold {duration}")
        self._push(self._now + duration, "resume", proc)
        self._yield(proc, f"hold({duration:g})")

    def _block(self, reason: str) -> None:
        """Block the calling process indefinitely; something else must
        ``schedule_resume`` it."""
        proc = self._require_process()
        self._yield(proc, reason)

    def _require_process(self) -> SimProcess:
        proc = current_process()
        if proc is None or proc.sim is not self:
            raise SimulationError(
                "this operation must be called from inside a process of this simulator"
            )
        return proc

    def _yield(self, proc: SimProcess, reason: str) -> None:
        """Hand control back to the kernel; returns when resumed."""
        proc.blocked_on = reason
        self._kernel_evt.set()
        proc._resume_evt.wait()
        proc._resume_evt.clear()
        if proc.killed:
            raise ProcessKilled(f"{proc.name} killed at t={self._now}")
        proc.blocked_on = None

    def _on_process_finished(self, proc: SimProcess) -> None:
        """Called on the process thread as it exits; wakes joiners then
        returns control to the kernel."""
        for joiner in proc._joiners:
            self.schedule_resume(joiner)
        proc._joiners.clear()
        for hook in self._finished_hooks:
            hook(proc)
        self._kernel_evt.set()

    # -- main loop ---------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Run until the event queue drains (or simulated ``until``).

        Returns the final simulated time.  Raises the first uncaught
        process exception, or :class:`SimDeadlockError` if processes
        remain blocked with nothing scheduled.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._queue:
                at, _seq, kind, payload = heapq.heappop(self._queue)
                if until is not None and at > until:
                    heapq.heappush(self._queue, (at, _seq, kind, payload))
                    self._now = until
                    break
                self._now = at
                if kind == "timer":
                    payload()
                    continue
                proc: SimProcess = payload
                if proc.finished or proc.killed:
                    continue
                self._kernel_evt.clear()
                proc._resume()
                self._kernel_evt.wait()
                if self._failure is not None:
                    failure, self._failure = self._failure, None
                    raise failure
            blocked = [
                p
                for p in self._processes
                if not p.finished
                and not p.killed
                and not p.daemon
                and p.blocked_on
                and p._started
            ]
            if blocked and until is None:
                names = ", ".join(f"{p.name}[{p.blocked_on}]" for p in blocked)
                raise SimDeadlockError(
                    f"event queue drained at t={self._now} with blocked "
                    f"processes: {names}"
                )
            return self._now
        finally:
            self._running = False

    # -- shutdown -----------------------------------------------------------------

    def shutdown(self) -> None:
        """Kill all unfinished processes and reap their threads (used by
        tests and the benchmark harness for hygiene)."""
        for proc in self._processes:
            if not proc.finished:
                proc.killed = True
                if proc._started:
                    self._kernel_evt.clear()
                    proc._resume_evt.set()
                    # The thread either finishes or re-blocks killed; wait
                    # for it to reach _on_process_finished.
                    proc._thread.join(timeout=5.0)

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Simulator t={self._now:g} queued={len(self._queue)}>"
