"""Deterministic discrete-event simulation kernel.

Thread-backed simulated processes (plain code, no coroutines), virtual
time, FIFO synchronisation primitives, delayed-delivery channels, and a
processor-sharing CPU model with hyper-threading — the substrate standing
in for the paper's 7-node Xeon cluster.
"""

from repro.sim.channel import Channel, Message
from repro.sim.kernel import SimProcess, Simulator, current_process, current_simulator
from repro.sim.resources import ProcessorSharingCPU, total_rate
from repro.sim.sync import SimBarrier, SimEvent, SimLock, SimQueue, SimSemaphore
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "Simulator",
    "SimProcess",
    "current_process",
    "current_simulator",
    "SimEvent",
    "SimLock",
    "SimSemaphore",
    "SimBarrier",
    "SimQueue",
    "Channel",
    "Message",
    "ProcessorSharingCPU",
    "total_rate",
    "Trace",
    "TraceEvent",
]
