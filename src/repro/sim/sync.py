"""Synchronisation primitives on simulated time.

All primitives follow one rule that keeps the kernel deterministic: a
blocked process is resumed **exactly once**.  Every wait registers a
:class:`_Waiter` token; both the granting path and the timeout path must
win a check-and-set on that token before scheduling the resume.

Provided: :class:`SimEvent`, :class:`SimLock` (FIFO), :class:`SimSemaphore`,
:class:`SimBarrier`, and :class:`SimQueue` (unbounded FIFO used by
channels and mailboxes).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.sim.kernel import SimProcess, Simulator, current_process

__all__ = ["SimEvent", "SimLock", "SimSemaphore", "SimBarrier", "SimQueue"]


class _Waiter:
    """One blocked process; ``claim()`` may succeed exactly once."""

    __slots__ = ("proc", "woken", "timed_out")

    def __init__(self, proc: SimProcess):
        self.proc = proc
        self.woken = False
        self.timed_out = False

    def claim(self) -> bool:
        if self.woken:
            return False
        self.woken = True
        return True


def _wait_here(sim: Simulator, waiter: _Waiter, reason: str, timeout: float | None) -> bool:
    """Common blocking tail: optionally arm a timeout, then block.

    Returns ``True`` if woken normally, ``False`` on timeout.
    """
    if timeout is not None:

        def on_timeout() -> None:
            if waiter.claim():
                waiter.timed_out = True
                sim.schedule_resume(waiter.proc)

        sim.call_later(timeout, on_timeout)
    sim._block(reason)
    return not waiter.timed_out


def _require(sim_owner: Simulator) -> SimProcess:
    proc = current_process()
    if proc is None or proc.sim is not sim_owner:
        raise SimulationError(
            "primitive used outside a process of its owning simulator"
        )
    return proc


class SimEvent:
    """Level-triggered event: once set, waits return immediately."""

    def __init__(self, sim: Simulator, name: str = "event"):
        self.sim = sim
        self.name = name
        self._set = False
        self._value: Any = None
        self._waiters: deque[_Waiter] = deque()

    @property
    def is_set(self) -> bool:
        return self._set

    @property
    def value(self) -> Any:
        return self._value

    def set(self, value: Any = None) -> None:
        """Set the event and wake all current waiters.

        Callable from process context or kernel context (timers).
        """
        if self._set:
            return
        self._set = True
        self._value = value
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.claim():
                self.sim.schedule_resume(waiter.proc)

    def clear(self) -> None:
        self._set = False
        self._value = None

    def wait(self, timeout: float | None = None) -> bool:
        """Block until set; ``True`` if set, ``False`` on timeout."""
        proc = _require(self.sim)
        if self._set:
            return True
        waiter = _Waiter(proc)
        self._waiters.append(waiter)
        return _wait_here(self.sim, waiter, f"event:{self.name}", timeout)


class SimLock:
    """FIFO mutual-exclusion lock (the paper's ``synchronized`` blocks)."""

    def __init__(self, sim: Simulator, name: str = "lock"):
        self.sim = sim
        self.name = name
        self._owner: SimProcess | None = None
        self._waiters: deque[_Waiter] = deque()
        #: total number of acquisitions that had to wait (contention stat)
        self.contended = 0

    @property
    def locked(self) -> bool:
        return self._owner is not None

    @property
    def owner(self) -> SimProcess | None:
        return self._owner

    def acquire(self) -> None:
        proc = _require(self.sim)
        if self._owner is None:
            self._owner = proc
            return
        if self._owner is proc:
            raise SimulationError(f"lock {self.name} is not reentrant")
        self.contended += 1
        waiter = _Waiter(proc)
        self._waiters.append(waiter)
        self.sim._block(f"lock:{self.name}")
        # ownership transferred by release()

    def release(self) -> None:
        proc = _require(self.sim)
        if self._owner is not proc:
            raise SimulationError(
                f"lock {self.name} released by {proc.name}, "
                f"owned by {self._owner.name if self._owner else 'nobody'}"
            )
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.claim():
                self._owner = waiter.proc
                self.sim.schedule_resume(waiter.proc)
                return
        self._owner = None

    def __enter__(self) -> "SimLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class SimSemaphore:
    """Counting semaphore with FIFO wakeup."""

    def __init__(self, sim: Simulator, value: int = 1, name: str = "semaphore"):
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: deque[_Waiter] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> None:
        proc = _require(self.sim)
        if self._value > 0:
            self._value -= 1
            return
        waiter = _Waiter(proc)
        self._waiters.append(waiter)
        self.sim._block(f"semaphore:{self.name}")

    def release(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.claim():
                self.sim.schedule_resume(waiter.proc)
                return
        self._value += 1

    def __enter__(self) -> "SimSemaphore":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class SimBarrier:
    """Cyclic barrier for ``parties`` processes (heartbeat phase sync)."""

    def __init__(self, sim: Simulator, parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("barrier needs >= 1 party")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._waiting: list[_Waiter] = []
        #: completed barrier cycles
        self.generation = 0

    def wait(self) -> int:
        """Block until ``parties`` processes arrive; returns the arrival
        index (0 = first, parties-1 = releasing arrival)."""
        proc = _require(self.sim)
        index = len(self._waiting)
        if index == self.parties - 1:
            for waiter in self._waiting:
                if waiter.claim():
                    self.sim.schedule_resume(waiter.proc)
            self._waiting.clear()
            self.generation += 1
            return index
        waiter = _Waiter(proc)
        self._waiting.append(waiter)
        self.sim._block(f"barrier:{self.name}")
        return index


class SimQueue:
    """Unbounded FIFO queue with blocking ``get`` (mailbox building block)."""

    def __init__(self, sim: Simulator, name: str = "queue"):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[_Waiter] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue; callable from process or kernel (timer) context."""
        self._items.append(item)
        while self._getters and self._items:
            waiter = self._getters.popleft()
            if waiter.claim():
                self.sim.schedule_resume(waiter.proc)
                break

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue, blocking while empty.

        Raises :class:`TimeoutError` on timeout (distinct from a ``None``
        item).
        """
        proc = _require(self.sim)
        while not self._items:
            waiter = _Waiter(proc)
            self._getters.append(waiter)
            if not _wait_here(self.sim, waiter, f"queue:{self.name}", timeout):
                raise TimeoutError(f"queue {self.name} get() timed out")
        return self._items.popleft()

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking dequeue: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None
