"""Structured event tracing and counters for simulations.

Optional: the kernel never depends on tracing; components *emit* into a
:class:`Trace` when one is attached.  Benchmarks use counters to report
message counts and the examples use the event log to show interleavings.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable

__all__ = ["TraceEvent", "Trace"]


class TraceEvent:
    """One recorded simulation event."""

    __slots__ = ("time", "category", "label", "data")

    def __init__(self, time: float, category: str, label: str, data: dict | None):
        self.time = time
        self.category = category
        self.label = label
        self.data = data or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.time:10.6f} [{self.category}] {self.label}>"


class Trace:
    """Append-only event log + named counters."""

    def __init__(self, capacity: int | None = None):
        self.events: list[TraceEvent] = []
        self.counters: Counter[str] = Counter()
        self.capacity = capacity

    def emit(
        self, time: float, category: str, label: str, **data: Any
    ) -> None:
        """Record an event (dropped once ``capacity`` is reached)."""
        if self.capacity is None or len(self.events) < self.capacity:
            self.events.append(TraceEvent(time, category, label, data))
        self.counters[category] += 1

    def count(self, category: str) -> int:
        return self.counters.get(category, 0)

    def of(self, category: str) -> list[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def between(self, start: float, end: float) -> list[TraceEvent]:
        return [e for e in self.events if start <= e.time <= end]

    def format(self, events: Iterable[TraceEvent] | None = None) -> str:
        """Human-readable rendering of (a slice of) the log."""
        lines = []
        for event in events if events is not None else self.events:
            extra = " ".join(f"{k}={v}" for k, v in event.data.items())
            lines.append(
                f"{event.time:12.6f}  {event.category:<12} {event.label} {extra}".rstrip()
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
