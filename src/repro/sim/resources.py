"""CPU resources with processor-sharing and a hyper-threading model.

The paper's nodes are dual Xeon 3.2 GHz with Hyper-Threading.  We model a
node's CPU complex as a single *processor-sharing* resource:

* with ``n <= cores`` runnable jobs, each runs at full speed
  (total service rate ``n``);
* with ``cores < n`` runnable jobs, SMT adds a bounded throughput bonus:
  total rate ramps from ``cores`` to ``cores * ht_factor`` as the extra
  hardware threads fill, then saturates — beyond that, jobs time-share.

``ht_factor = 1.3`` reproduces the classic "HT buys ~30 %" rule of thumb
and, in Figure 17 terms, is what makes the threads-only sieve flatten
just past 4 filters on one dual-CPU node.

The implementation is the standard event-driven PS scheme: on every
change of the job set, elapsed virtual work is settled against each job's
remaining demand, and the next completion event is (re)scheduled.  A
version counter discards stale completion timers.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SimulationError, SimTimeError
from repro.sim.kernel import SimProcess, Simulator, current_process
from repro.sim.sync import SimEvent

__all__ = ["ProcessorSharingCPU", "total_rate"]


def total_rate(n_jobs: int, cores: int, ht_factor: float) -> float:
    """Aggregate service rate (in job-seconds per second) of the complex.

    Pure function so tests and the docs can table it::

        cores=2, ht=1.3:  n=1 -> 1.0, n=2 -> 2.0, n=3 -> 2.3, n>=4 -> 2.6
    """
    if n_jobs <= 0:
        return 0.0
    if n_jobs <= cores:
        return float(n_jobs)
    logical = 2 * cores  # two hardware threads per core
    bonus_total = cores * (ht_factor - 1.0)
    extra = min(n_jobs, logical) - cores
    return cores + bonus_total * (extra / cores)


class _Job:
    __slots__ = ("proc", "remaining", "done")

    def __init__(self, proc: SimProcess | None, remaining: float, done: SimEvent):
        self.proc = proc
        self.remaining = remaining
        self.done = done


class ProcessorSharingCPU:
    """One node's CPU complex as a processor-sharing server."""

    def __init__(
        self,
        sim: Simulator,
        cores: int = 2,
        ht_factor: float = 1.3,
        speed: float = 1.0,
        name: str = "cpu",
    ):
        if cores < 1:
            raise SimulationError("cpu needs >= 1 core")
        if ht_factor < 1.0:
            raise SimulationError("ht_factor must be >= 1.0")
        if speed <= 0:
            raise SimulationError("speed must be positive")
        self.sim = sim
        self.cores = cores
        self.ht_factor = ht_factor
        self.speed = speed
        self.name = name
        self._jobs: list[_Job] = []
        self._last_settle = 0.0
        self._timer_version = 0
        #: integral of busy rate over time (for utilisation reports)
        self.busy_time = 0.0
        self.jobs_completed = 0

    # -- PS accounting -----------------------------------------------------

    def _per_job_rate(self, n: int) -> float:
        if n == 0:
            return 0.0
        return self.speed * total_rate(n, self.cores, self.ht_factor) / n

    def _settle(self) -> None:
        """Charge elapsed time against every active job's demand."""
        now = self.sim.now
        elapsed = now - self._last_settle
        if elapsed > 0 and self._jobs:
            rate = self._per_job_rate(len(self._jobs))
            for job in self._jobs:
                job.remaining -= elapsed * rate
            self.busy_time += elapsed * self.speed * total_rate(
                len(self._jobs), self.cores, self.ht_factor
            )
        self._last_settle = now

    def _reschedule(self) -> None:
        """Schedule the completion of the job(s) finishing soonest."""
        self._timer_version += 1
        if not self._jobs:
            return
        version = self._timer_version
        rate = self._per_job_rate(len(self._jobs))
        soonest = min(job.remaining for job in self._jobs)
        delay = max(soonest, 0.0) / rate

        def on_complete() -> None:
            if version != self._timer_version:
                return  # job set changed since this was armed
            self._settle()
            eps = 1e-9
            finished = [job for job in self._jobs if job.remaining <= eps]
            for job in finished:
                self._jobs.remove(job)
                self.jobs_completed += 1
                job.done.set()
            self._reschedule()

        self.sim.call_later(delay, on_complete)

    # -- public API ----------------------------------------------------------

    def execute(self, work: float) -> None:
        """Consume ``work`` seconds-at-full-speed of CPU; blocks the
        calling process for the processor-shared duration."""
        proc = current_process()
        if proc is None or proc.sim is not self.sim:
            raise SimulationError("execute() must run inside a simulated process")
        if work < 0:
            raise SimTimeError(f"negative work {work}")
        if work == 0:
            return
        done = SimEvent(self.sim, name=f"{self.name}.job")
        self._settle()
        self._jobs.append(_Job(proc, work, done))
        self._reschedule()
        done.wait()

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def utilisation(self, horizon: float | None = None) -> float:
        """Average busy fraction of the *physical cores* over ``horizon``
        (defaults to current sim time)."""
        horizon = self.sim.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return self.busy_time / (horizon * self.cores * self.speed)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ProcessorSharingCPU {self.name} cores={self.cores} "
            f"jobs={len(self._jobs)}>"
        )
