"""repro — reproduction of *Incrementally Developing Parallel Applications
with AspectJ* (J. L. Sobral, IPPS 2006).

The package is layered exactly like the paper's methodology:

``repro.aop``
    An AspectJ-analogue AOP engine (joinpoints, pointcuts, advice,
    weaving, deploy/undeploy).
``repro.sim`` / ``repro.cluster``
    A deterministic discrete-event simulator and a model of the paper's
    testbed (7 dual-Xeon HT nodes on Gigabit Ethernet).
``repro.runtime`` / ``repro.middleware``
    Concurrency backends (real threads or simulated processes), futures,
    and the RMI / MPP distribution middlewares.
``repro.parallel``
    The paper's contribution: partition, concurrency, distribution and
    optimisation concerns packaged as pluggable aspect modules, plus the
    named module combinations of Table 1.
``repro.apps``
    Case studies: the prime-number sieve (Section 5), a farm
    (Mandelbrot), a heartbeat (Jacobi), and a pipeline (word count).
``repro.bench``
    The experiment harness regenerating Figures 16/17 and Table 1.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
