"""Per-tenant outcome and latency percentile recording.

:class:`PercentileRecorder` is the measurement half of the traffic
plane: handlers report each request's outcome — completed (with its
virtual latency), shed, rejected, or deadline-missed — and
:meth:`report` reduces everything to the per-tenant numbers the
scenarios gate on: p50/p95/p99 latency (nearest-rank on the exact
sample set; no interpolation, so reports are bit-stable across runs)
and shed/reject/miss rates against offered load.
"""

from __future__ import annotations

import math
import threading
from typing import Any

from repro.errors import (
    AdmissionRejected,
    CallShed,
    DeadlineExceeded,
)

__all__ = ["PercentileRecorder"]

#: outcome keys a handler can report (completed carries a latency)
_OUTCOMES = ("completed", "shed", "rejected", "deadline_missed", "failed")


def _nearest_rank(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in (0, 1]) of a sorted sample."""
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


class PercentileRecorder:
    """Thread-safe per-tenant counters and latency samples."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: dict[str, list[float]] = {}
        self._counts: dict[str, dict[str, int]] = {}

    def _tenant(self, tenant: str) -> dict[str, int]:
        counts = self._counts.get(tenant)
        if counts is None:
            counts = {"offered": 0, **{key: 0 for key in _OUTCOMES}}
            self._counts[tenant] = counts
            self._latencies[tenant] = []
        return counts

    # -- reporting -----------------------------------------------------------

    def offered(self, tenant: str) -> None:
        """One request arrived for ``tenant`` (count it before its fate
        is known — offered load is the denominator of every rate)."""
        with self._lock:
            self._tenant(tenant)["offered"] += 1

    def completed(self, tenant: str, latency: float) -> None:
        """One request finished, ``latency`` virtual seconds after it
        arrived."""
        with self._lock:
            self._tenant(tenant)["completed"] += 1
            self._latencies[tenant].append(float(latency))

    def shed(self, tenant: str) -> None:
        """One request was cancelled by a shed-oldest policy."""
        with self._lock:
            self._tenant(tenant)["shed"] += 1

    def rejected(self, tenant: str) -> None:
        """One request was turned away at admission."""
        with self._lock:
            self._tenant(tenant)["rejected"] += 1

    def deadline_missed(self, tenant: str) -> None:
        """One request ran out of its deadline budget."""
        with self._lock:
            self._tenant(tenant)["deadline_missed"] += 1

    def failed(self, tenant: str) -> None:
        """One request failed for any other reason."""
        with self._lock:
            self._tenant(tenant)["failed"] += 1

    def observe(self, tenant: str, exc: BaseException | None, latency: float) -> None:
        """Classify one finished request by its exception (``None`` =
        success): the convenience the open-loop handler uses."""
        if exc is None:
            self.completed(tenant, latency)
        elif isinstance(exc, CallShed):
            self.shed(tenant)
        elif isinstance(exc, DeadlineExceeded):
            self.deadline_missed(tenant)
        elif isinstance(exc, AdmissionRejected):
            self.rejected(tenant)
        else:
            self.failed(tenant)

    # -- reduction -----------------------------------------------------------

    def tenants(self) -> tuple:
        """Tenant names seen so far (sorted)."""
        with self._lock:
            return tuple(sorted(self._counts))

    def report(self) -> dict[str, dict[str, Any]]:
        """Per-tenant reduction: counts, rates against offered load,
        and nearest-rank p50/p95/p99 of completed-request latency
        (``None`` when the tenant completed nothing)."""
        with self._lock:
            out: dict[str, dict[str, Any]] = {}
            for tenant in sorted(self._counts):
                counts = dict(self._counts[tenant])
                offered = counts["offered"]
                latencies = sorted(self._latencies[tenant])
                row: dict[str, Any] = dict(counts)
                for key in ("shed", "rejected", "deadline_missed"):
                    row[f"{key}_rate"] = (
                        counts[key] / offered if offered else 0.0
                    )
                for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                    row[label] = (
                        _nearest_rank(latencies, q) if latencies else None
                    )
                out[tenant] = row
            return out

    def total(self, key: str) -> int:
        """Sum of one counter across tenants (e.g. ``"offered"``)."""
        with self._lock:
            return sum(counts[key] for counts in self._counts.values())

    def percentile(self, q: float, tenant: str | None = None) -> float | None:
        """Nearest-rank latency percentile for one tenant, or across
        all tenants when ``tenant`` is ``None``."""
        with self._lock:
            if tenant is None:
                samples = [
                    value
                    for values in self._latencies.values()
                    for value in values
                ]
            else:
                samples = list(self._latencies.get(tenant, ()))
        if not samples:
            return None
        return _nearest_rank(sorted(samples), q)
