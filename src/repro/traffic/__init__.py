"""Replayable open-loop traffic for the simulated cluster.

The sim backend's virtual clock makes load testing a *computation*: a
seeded arrival process (:mod:`repro.traffic.arrivals`), a Zipf tenant
population over millions of simulated users
(:mod:`repro.traffic.population`), and a per-tenant percentile recorder
(:mod:`repro.traffic.recorder`) feed the open-loop generator
(:mod:`repro.traffic.generator`), which holds virtual time to each
arrival instant and spawns one handler activity per request — arrivals
never wait for completions, so overload builds exactly as it would
against a real service.  Everything is driven by ``random.Random``
seeds: the same scenario replays bit-identically, which is what lets
latency percentiles and shed rates under overload live in the committed
benchmark trajectory instead of being anecdotes.
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    BurstArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.traffic.generator import Arrival, TrafficGenerator, open_loop
from repro.traffic.population import TenantPopulation
from repro.traffic.recorder import PercentileRecorder

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "BurstArrivals",
    "TenantPopulation",
    "PercentileRecorder",
    "Arrival",
    "TrafficGenerator",
    "open_loop",
]
