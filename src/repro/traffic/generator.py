"""The open-loop generator: replay a traffic scenario on virtual time.

Open-loop means arrivals never wait for completions: a single driver
activity holds the simulator to each arrival instant and spawns one
handler activity per request, exactly like users who keep clicking
whether or not the service is keeping up — the load model under which
overload, shedding and queueing actually show their shapes (a
closed-loop driver would self-throttle and hide them).

Determinism: the arrival process replays from its own seed, and the
generator's seed drives the per-arrival population draw (then the
optional service-time draw) in a fixed order.  ``trace(n)`` returns the
first n arrivals as plain dicts — the golden-trace test commits them so
refactors cannot silently shift any draw.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator

__all__ = ["Arrival", "TrafficGenerator", "open_loop"]


class Arrival:
    """One scheduled request: when, which user, hence which tenant."""

    __slots__ = ("index", "time", "user", "tenant", "cost")

    def __init__(
        self, index: int, time: float, user: int, tenant: str, cost: float
    ):
        self.index = index
        self.time = time
        self.user = user
        self.tenant = tenant
        self.cost = cost

    def as_dict(self) -> dict:
        """Plain-dict view (golden traces, logs)."""
        return {
            "index": self.index,
            "time": self.time,
            "user": self.user,
            "tenant": self.tenant,
            "cost": self.cost,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Arrival #{self.index} t={self.time:.4f} "
            f"user={self.user} tenant={self.tenant}>"
        )


class TrafficGenerator:
    """Seeded arrivals × population → a replayable request stream.

    ``service`` (optional) draws each request's nominal service demand
    from the generator's rng — e.g. ``lambda rng:
    rng.expovariate(1/0.05)`` — so heavy requests land on the same
    arrivals in every replay.
    """

    def __init__(
        self,
        arrivals: Any,
        population: Any,
        seed: int = 0,
        service: Callable[[random.Random], float] | None = None,
    ):
        self.arrivals = arrivals
        self.population = population
        self.seed = seed
        self.service = service

    def schedule(
        self, limit: int | None = None, horizon: float | None = None
    ) -> Iterator[Arrival]:
        """The arrival stream, bounded by count (``limit``) and/or
        virtual time (``horizon``) — fresh replay from the seeds."""
        rng = random.Random(self.seed)
        for index, time in enumerate(self.arrivals.times()):
            if limit is not None and index >= limit:
                return
            if horizon is not None and time > horizon:
                return
            user, tenant = self.population.draw(rng)
            cost = self.service(rng) if self.service is not None else 0.0
            yield Arrival(index, time, user, tenant, cost)

    def trace(self, n: int) -> list[dict]:
        """The first ``n`` arrivals as dicts (the golden-trace shape)."""
        return [arrival.as_dict() for arrival in self.schedule(limit=n)]

    def run(
        self,
        sim: Any,
        handler: Callable[[Arrival], None],
        limit: int | None = None,
        horizon: float | None = None,
    ) -> None:
        """Spawn the open-loop driver into ``sim``: it holds virtual
        time to each arrival and spawns ``handler(arrival)`` as its own
        activity.  The caller still owns ``sim.run()``."""

        def driver() -> None:
            for arrival in self.schedule(limit=limit, horizon=horizon):
                delay = arrival.time - sim.now
                if delay > 0:
                    sim.hold(delay)
                sim.spawn(
                    lambda a=arrival: handler(a),
                    name=f"traffic.{arrival.index}",
                )

        sim.spawn(driver, name="traffic.driver")


def open_loop(
    sim: Any,
    generator: TrafficGenerator,
    apps: dict[str, Any],
    recorder: Any,
    payload: Callable[[Arrival], tuple] | None = None,
    timeout: float | None = None,
    limit: int | None = None,
    horizon: float | None = None,
) -> dict:
    """Drive a full open-loop scenario to completion and report.

    ``apps`` maps tenant names to deployed :class:`ParallelApp`\\ s (all
    on ``sim``'s backend).  Each arrival submits
    ``payload(arrival)`` (default ``(user, cost)``) to its tenant's
    app with ``timeout``; the recorder classifies the outcome — shed,
    rejected, deadline-missed, failed, or completed with its virtual
    latency.  Returns ``recorder.report()``.
    """
    if payload is None:
        payload = lambda arrival: (arrival.user, arrival.cost)  # noqa: E731

    def handle(arrival: Arrival) -> None:
        recorder.offered(arrival.tenant)
        app = apps[arrival.tenant]
        started = sim.now
        exc: BaseException | None = None
        try:
            app.submit(*payload(arrival), timeout=timeout).result()
        except Exception as caught:  # noqa: BLE001 - classified below
            exc = caught
        recorder.observe(arrival.tenant, exc, sim.now - started)

    generator.run(sim, handle, limit=limit, horizon=horizon)
    sim.run()
    return recorder.report()
