"""Tenant population model: a Zipf over N simulated users.

Real multi-tenant traffic is heavy-tailed: a few users generate most of
the requests.  :class:`TenantPopulation` models N users (a million is
cheap — sampling is O(1) per draw) whose request frequency follows a
bounded Zipf law with exponent ``s``, sampled by Hörmann's
rejection-inversion (no per-rank tables, so the population size costs
nothing).  Tenants own contiguous *rank bands*: giving a tenant the top
0.1% of ranks makes it *hot* (it receives a disproportionate share of
the traffic), the middle bands are *warm*, and the long tail is *cold*
— the hot/warm/cold mix falls out of the band boundaries and the Zipf
exponent alone.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Any, Iterable

__all__ = ["TenantPopulation"]


class _ZipfSampler:
    """Bounded Zipf(s) over ``{1..n}`` via rejection-inversion.

    One or two ``rng.random()`` draws per sample (the expected number of
    rejections is below one for every exponent); the draw order is part
    of the determinism contract the golden-trace test pins.
    """

    __slots__ = ("n", "s", "_h_x1", "_h_n", "_threshold")

    def __init__(self, n: int, s: float):
        if n < 1:
            raise ValueError(f"population must have >= 1 user, got {n!r}")
        if not s > 0:
            raise ValueError(f"Zipf exponent must be > 0, got {s!r}")
        self.n = int(n)
        self.s = float(s)
        self._h_x1 = self._h_integral(1.5) - 1.0
        self._h_n = self._h_integral(self.n + 0.5)
        self._threshold = 2.0 - self._h_integral_inverse(
            self._h_integral(2.5) - self._h(2.0)
        )

    def _h(self, x: float) -> float:
        return x ** -self.s

    def _h_integral(self, x: float) -> float:
        if self.s == 1.0:
            return math.log(x)
        return (x ** (1.0 - self.s) - 1.0) / (1.0 - self.s)

    def _h_integral_inverse(self, x: float) -> float:
        if self.s == 1.0:
            return math.exp(x)
        t = x * (1.0 - self.s)
        if t < -1.0:
            t = -1.0
        return (1.0 + t) ** (1.0 / (1.0 - self.s))

    def sample(self, rng: random.Random) -> int:
        while True:
            u = self._h_n + rng.random() * (self._h_x1 - self._h_n)
            x = self._h_integral_inverse(u)
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > self.n:
                k = self.n
            if k - x <= self._threshold or u >= (
                self._h_integral(k + 0.5) - self._h(k)
            ):
                return k


class TenantPopulation:
    """N Zipf-distributed users carved into per-tenant rank bands.

    ``bands`` maps tenant names to population *fractions* (must sum to
    1 within rounding); band order matters — earlier tenants own lower
    (hotter) ranks.  ``draw(rng)`` samples one request's user and
    returns ``(rank, tenant)``.
    """

    def __init__(
        self,
        bands: "dict[str, float] | Iterable[tuple[str, float]]",
        users: int = 1_000_000,
        exponent: float = 1.1,
    ):
        pairs = list(bands.items()) if isinstance(bands, dict) else list(bands)
        if not pairs:
            raise ValueError("need at least one tenant band")
        total = sum(fraction for _, fraction in pairs)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(
                f"band fractions must sum to 1, got {total!r} "
                f"from {pairs!r}"
            )
        for name, fraction in pairs:
            if not fraction > 0:
                raise ValueError(
                    f"band {name!r}: fraction must be > 0, got {fraction!r}"
                )
        self.users = int(users)
        self.exponent = float(exponent)
        self._sampler = _ZipfSampler(self.users, self.exponent)
        self._names = [name for name, _ in pairs]
        # cumulative upper rank bound per band; the last band absorbs
        # rounding so every rank maps to exactly one tenant
        self._bounds: list[int] = []
        cumulative = 0.0
        for _, fraction in pairs:
            cumulative += fraction
            self._bounds.append(min(self.users, round(cumulative * self.users)))
        self._bounds[-1] = self.users

    @property
    def tenants(self) -> tuple:
        """Tenant names, hot band first."""
        return tuple(self._names)

    def band(self, tenant: str) -> tuple[int, int]:
        """The inclusive rank range ``(lo, hi)`` a tenant owns."""
        index = self._names.index(tenant)
        lo = 1 if index == 0 else self._bounds[index - 1] + 1
        return lo, self._bounds[index]

    def tenant_of(self, rank: int) -> str:
        """The tenant owning user ``rank`` (1-based)."""
        if not 1 <= rank <= self.users:
            raise ValueError(
                f"rank must be in [1, {self.users}], got {rank!r}"
            )
        return self._names[bisect.bisect_left(self._bounds, rank)]

    def draw(self, rng: random.Random) -> tuple[int, str]:
        """One request's ``(user_rank, tenant)``."""
        rank = self._sampler.sample(rng)
        return rank, self.tenant_of(rank)

    def expected_share(self, tenant: str) -> float:
        """The tenant's expected fraction of total traffic (continuous
        approximation of the partial generalized-harmonic sum — exact
        enough for scenario design at millions of users)."""
        lo, hi = self.band(tenant)
        h = self._sampler._h_integral
        total = h(self.users + 0.5) - h(0.5)
        return (h(hi + 0.5) - h(lo - 0.5)) / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TenantPopulation {self.users} users s={self.exponent} "
            f"bands={self._names}>"
        )
