"""Case-study applications: core functionality written as plain
sequential OO code, parallelised purely by plugging aspect modules."""
