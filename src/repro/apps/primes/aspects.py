"""Sieve-specific parallelisation stacks — the rows of Table 1.

Everything here is *configuration*: the pointcuts naming the sieve's
joinpoints, the cost function reading the sieve's operation counters,
and builders assembling the named module combinations:

=============  ============  ===========  ============
name           partition     concurrency  distribution
=============  ============  ===========  ============
FarmThreads    farm          yes          no
PipeRMI        pipeline      yes          RMI
FarmRMI        farm          yes          RMI
FarmDRMI       dynamic farm  (merged)     RMI
FarmMPP        farm          yes          MPP
=============  ============  ===========  ============

plus extra combinations used by the ablation benches (PipeThreads,
PipeMPP, FarmHybrid, Sequential).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.api.app import ParallelApp
from repro.api.spec import StackSpec
from repro.apps.primes.core import PrimeFilter
from repro.apps.primes.workload import SieveWorkload
from repro.cluster.topology import Cluster
from repro.errors import DeploymentError
from repro.middleware.base import Middleware
from repro.middleware.placement import PlacementPolicy, RoundRobin
from repro.parallel import ComputeCostAspect, Composition, ParallelModule

__all__ = [
    "SIEVE_CREATION",
    "SIEVE_WORK",
    "IPrimeFilter",
    "SieveStack",
    "sieve_cost_aspect",
    "sieve_spec",
    "sieve_app",
    "build_sieve_stack",
    "TABLE1_COMBINATIONS",
]

#: the sieve's two joinpoint families (paper Figure 8)
SIEVE_CREATION = "initialization(PrimeFilter.new(..))"
SIEVE_WORK = "call(PrimeFilter.filter(..))"

#: Table 1 rows, in the paper's order
TABLE1_COMBINATIONS = ("FarmThreads", "PipeRMI", "FarmRMI", "FarmDRMI", "FarmMPP")


class IPrimeFilter(abc.ABC):
    """The remote interface RMI requires (paper modification #1) —
    declared onto :class:`PrimeFilter` by the distribution aspect."""

    @abc.abstractmethod
    def filter(self, candidates):  # pragma: no cover - marker only
        ...


def sieve_cost_fn(ns_per_op: float):
    """Work model: the filter's counted divisions × seconds-per-division."""

    def cost(jp, result) -> float:
        if jp.name != "filter":
            return 0.0
        return jp.target.ops_last * ns_per_op

    return cost


def sieve_cost_aspect(
    ns_per_op: float,
    aop_factor: float = 1.0,
    dispatch_cost: float = 0.0,
) -> ComputeCostAspect:
    return ComputeCostAspect(
        cost_fn=sieve_cost_fn(ns_per_op),
        work_calls=SIEVE_WORK,
        aop_factor=aop_factor,
        dispatch_cost=dispatch_cost,
    )


@dataclass
class SieveStack:
    """One assembled combination, with handles for tests and metrics."""

    name: str
    composition: Composition
    partition: Any = None
    async_aspect: Any = None
    distribution: Any = None
    middleware: Middleware | None = None
    extra_middleware: Middleware | None = None
    cost: ComputeCostAspect | None = None
    modules: dict[str, ParallelModule] = field(default_factory=dict)
    #: the ParallelApp this stack was assembled from
    app: ParallelApp | None = None

    def shutdown(self) -> None:
        for mw in (self.middleware, self.extra_middleware):
            if mw is not None:
                mw.shutdown()


def sieve_spec(
    combo: str,
    workload: SieveWorkload,
    n_filters: int,
    cluster: Cluster | None = None,
    placement: PlacementPolicy | None = None,
    cost: ComputeCostAspect | None = None,
) -> StackSpec:
    """The declarative :class:`StackSpec` for one named combination —
    Table 1 as data.  ``cluster`` is required for the distributed
    combinations; ``cost`` is attached for simulated runs."""
    partition_kind, middleware_kind = _parse_combo(combo)
    if partition_kind == "pipeline":
        splitter = workload.pipeline_splitter(n_filters)
    elif partition_kind == "none":
        splitter = None
    else:  # farm and dynamic-farm share the broadcast splitter
        splitter = workload.farm_splitter(n_filters)
    middleware_options: dict[str, Any] = {}
    if middleware_kind == "rmi":
        middleware_options = {
            "remote_interface": IPrimeFilter,
            "distributed_classes": (PrimeFilter,),
        }
    elif middleware_kind == "hybrid":
        middleware_options = {"data_methods": ("filter",)}
    return StackSpec(
        target=PrimeFilter,
        work=SIEVE_WORK,
        creation=SIEVE_CREATION,
        work_method="filter",
        splitter=splitter,
        strategy=partition_kind,
        # the dynamic farm provides its own concurrency; Sequential has none
        concurrency=partition_kind in ("pipeline", "farm"),
        middleware=middleware_kind,
        middleware_options=middleware_options,
        cluster=cluster,
        placement=placement if placement is not None else RoundRobin(),
        cost=cost,
        name=combo,
    )


def sieve_app(
    combo: str,
    workload: SieveWorkload,
    n_filters: int,
    cluster: Cluster | None = None,
    placement: PlacementPolicy | None = None,
    cost: ComputeCostAspect | None = None,
) -> ParallelApp:
    """Assemble one named combination as a ready-to-deploy
    :class:`~repro.api.app.ParallelApp`."""
    try:
        return ParallelApp(
            sieve_spec(combo, workload, n_filters, cluster, placement, cost)
        )
    except DeploymentError as exc:
        raise DeploymentError(f"combination {combo!r}: {exc}") from exc


def build_sieve_stack(
    combo: str,
    workload: SieveWorkload,
    n_filters: int,
    cluster: Cluster | None = None,
    placement: PlacementPolicy | None = None,
    cost: ComputeCostAspect | None = None,
) -> SieveStack:
    """Assemble one named module combination for ``n_filters`` filters.

    Thin wrapper over :func:`sieve_app` keeping the legacy
    :class:`SieveStack` handle surface for tests and metrics readers.
    """
    app = sieve_app(combo, workload, n_filters, cluster, placement, cost)
    return SieveStack(
        combo,
        app.composition,
        partition=app.partition,
        async_aspect=app.async_aspect,
        distribution=app.distribution,
        middleware=app.middleware,
        extra_middleware=app.extra_middleware,
        cost=cost,
        modules=app.modules,
        app=app,
    )


def _parse_combo(combo: str) -> tuple[str, str]:
    """Map a combination name to (partition kind, middleware kind)."""
    table = {
        "Sequential": ("none", "none"),
        "FarmThreads": ("farm", "none"),
        "PipeThreads": ("pipeline", "none"),
        "PipeRMI": ("pipeline", "rmi"),
        "FarmRMI": ("farm", "rmi"),
        "FarmDRMI": ("dynamic-farm", "rmi"),
        "FarmMPP": ("farm", "mpp"),
        "PipeMPP": ("pipeline", "mpp"),
        "FarmDMPP": ("dynamic-farm", "mpp"),
        "FarmHybrid": ("farm", "hybrid"),
    }
    if combo not in table:
        raise DeploymentError(
            f"unknown combination {combo!r}; known: {sorted(table)}"
        )
    return table[combo]
