"""Sieve-specific parallelisation stacks — the rows of Table 1.

Everything here is *configuration*: the pointcuts naming the sieve's
joinpoints, the cost function reading the sieve's operation counters,
and builders assembling the named module combinations:

=============  ============  ===========  ============
name           partition     concurrency  distribution
=============  ============  ===========  ============
FarmThreads    farm          yes          no
PipeRMI        pipeline      yes          RMI
FarmRMI        farm          yes          RMI
FarmDRMI       dynamic farm  (merged)     RMI
FarmMPP        farm          yes          MPP
=============  ============  ===========  ============

plus extra combinations used by the ablation benches (PipeThreads,
PipeMPP, FarmHybrid, Sequential).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.apps.primes.core import PrimeFilter
from repro.apps.primes.workload import SieveWorkload
from repro.cluster.topology import Cluster
from repro.errors import DeploymentError
from repro.middleware.base import Middleware
from repro.middleware.mpp import MppMiddleware
from repro.middleware.placement import PlacementPolicy, RoundRobin
from repro.middleware.rmi import RmiMiddleware
from repro.parallel import (
    Composition,
    ComputeCostAspect,
    Concern,
    ParallelModule,
    concurrency_module,
    dynamic_farm_module,
    farm_module,
    hybrid_distribution_module,
    mpp_distribution_module,
    pipeline_module,
    rmi_distribution_module,
)

__all__ = [
    "SIEVE_CREATION",
    "SIEVE_WORK",
    "IPrimeFilter",
    "SieveStack",
    "sieve_cost_aspect",
    "build_sieve_stack",
    "TABLE1_COMBINATIONS",
]

#: the sieve's two joinpoint families (paper Figure 8)
SIEVE_CREATION = "initialization(PrimeFilter.new(..))"
SIEVE_WORK = "call(PrimeFilter.filter(..))"

#: Table 1 rows, in the paper's order
TABLE1_COMBINATIONS = ("FarmThreads", "PipeRMI", "FarmRMI", "FarmDRMI", "FarmMPP")


class IPrimeFilter(abc.ABC):
    """The remote interface RMI requires (paper modification #1) —
    declared onto :class:`PrimeFilter` by the distribution aspect."""

    @abc.abstractmethod
    def filter(self, candidates):  # pragma: no cover - marker only
        ...


def sieve_cost_fn(ns_per_op: float):
    """Work model: the filter's counted divisions × seconds-per-division."""

    def cost(jp, result) -> float:
        if jp.name != "filter":
            return 0.0
        return jp.target.ops_last * ns_per_op

    return cost


def sieve_cost_aspect(
    ns_per_op: float,
    aop_factor: float = 1.0,
    dispatch_cost: float = 0.0,
) -> ComputeCostAspect:
    return ComputeCostAspect(
        cost_fn=sieve_cost_fn(ns_per_op),
        work_calls=SIEVE_WORK,
        aop_factor=aop_factor,
        dispatch_cost=dispatch_cost,
    )


@dataclass
class SieveStack:
    """One assembled combination, with handles for tests and metrics."""

    name: str
    composition: Composition
    partition: Any = None
    async_aspect: Any = None
    distribution: Any = None
    middleware: Middleware | None = None
    extra_middleware: Middleware | None = None
    cost: ComputeCostAspect | None = None
    modules: dict[str, ParallelModule] = field(default_factory=dict)

    def shutdown(self) -> None:
        for mw in (self.middleware, self.extra_middleware):
            if mw is not None:
                mw.shutdown()


def build_sieve_stack(
    combo: str,
    workload: SieveWorkload,
    n_filters: int,
    cluster: Cluster | None = None,
    placement: PlacementPolicy | None = None,
    cost: ComputeCostAspect | None = None,
) -> SieveStack:
    """Assemble one named module combination for ``n_filters`` filters.

    ``cluster`` is required for the distributed combinations; ``cost``
    (an instrumentation aspect) is attached when provided (simulated
    runs) and omitted for functional-mode runs.
    """
    placement = placement if placement is not None else RoundRobin()
    stack = SieveStack(combo, Composition(combo))

    def add(module: ParallelModule) -> ParallelModule:
        stack.composition.plug(module)
        stack.modules[module.name] = module
        return module

    def need_cluster() -> Cluster:
        if cluster is None:
            raise DeploymentError(f"combination {combo!r} needs a cluster")
        return cluster

    partition_kind, middleware_kind = _parse_combo(combo)

    # -- partition ---------------------------------------------------------
    if partition_kind == "pipeline":
        module = add(
            pipeline_module(
                workload.pipeline_splitter(n_filters), SIEVE_CREATION, SIEVE_WORK
            )
        )
        stack.partition = module.coordinator  # type: ignore[attr-defined]
    elif partition_kind == "farm":
        module = add(
            farm_module(
                workload.farm_splitter(n_filters), SIEVE_CREATION, SIEVE_WORK
            )
        )
        stack.partition = module.coordinator  # type: ignore[attr-defined]
    elif partition_kind == "dynamic-farm":
        module = add(
            dynamic_farm_module(
                workload.farm_splitter(n_filters), SIEVE_CREATION, SIEVE_WORK
            )
        )
        stack.partition = module.coordinator  # type: ignore[attr-defined]
    elif partition_kind != "none":  # pragma: no cover - guarded by _parse_combo
        raise DeploymentError(f"unknown partition {partition_kind!r}")

    # -- concurrency (dynamic farm brings its own) ---------------------------
    if partition_kind in ("pipeline", "farm"):
        module = add(concurrency_module(SIEVE_WORK, SIEVE_WORK))
        stack.async_aspect = module.async_aspect  # type: ignore[attr-defined]

    # -- distribution --------------------------------------------------------
    if middleware_kind == "rmi":
        stack.middleware = RmiMiddleware(need_cluster())
        module = add(
            rmi_distribution_module(
                stack.middleware,
                SIEVE_CREATION,
                SIEVE_WORK,
                placement=placement,
                remote_interface=IPrimeFilter,
                distributed_classes=(PrimeFilter,),
            )
        )
        stack.distribution = module.aspect  # type: ignore[attr-defined]
    elif middleware_kind == "mpp":
        stack.middleware = MppMiddleware(need_cluster())
        module = add(
            mpp_distribution_module(
                stack.middleware, SIEVE_CREATION, SIEVE_WORK, placement=placement
            )
        )
        stack.distribution = module.aspect  # type: ignore[attr-defined]
    elif middleware_kind == "hybrid":
        stack.middleware = RmiMiddleware(need_cluster())
        stack.extra_middleware = MppMiddleware(need_cluster())
        module = add(
            hybrid_distribution_module(
                stack.middleware,
                stack.extra_middleware,
                data_methods=("filter",),
                remote_new=SIEVE_CREATION,
                remote_calls=SIEVE_WORK,
                placement=placement,
            )
        )
        stack.distribution = module.aspect  # type: ignore[attr-defined]
    elif middleware_kind != "none":  # pragma: no cover
        raise DeploymentError(f"unknown middleware {middleware_kind!r}")

    # -- instrumentation ------------------------------------------------------
    if cost is not None:
        stack.cost = cost
        add(ParallelModule("cost-model", Concern.INSTRUMENTATION, [cost]))

    return stack


def _parse_combo(combo: str) -> tuple[str, str]:
    """Map a combination name to (partition kind, middleware kind)."""
    table = {
        "Sequential": ("none", "none"),
        "FarmThreads": ("farm", "none"),
        "PipeThreads": ("pipeline", "none"),
        "PipeRMI": ("pipeline", "rmi"),
        "FarmRMI": ("farm", "rmi"),
        "FarmDRMI": ("dynamic-farm", "rmi"),
        "FarmMPP": ("farm", "mpp"),
        "PipeMPP": ("pipeline", "mpp"),
        "FarmDMPP": ("dynamic-farm", "mpp"),
        "FarmHybrid": ("farm", "hybrid"),
    }
    if combo not in table:
        raise DeploymentError(
            f"unknown combination {combo!r}; known: {sorted(table)}"
        )
    return table[combo]
