"""Sieve workload generator and partition strategy descriptions.

Reproduces the evaluation workload of Section 6: "The maximum prime
number was set to 10.000.000 and there are 50 messages of 100.000
numbers (only odd numbers are sent to the pipeline)."

The :class:`SieveWorkload` also builds the :class:`WorkSplitter`
instances the partition aspects consume:

* **pipeline** — constructor duplication carves the base-prime range
  ``[2, sqrt(max)]`` into contiguous chunks, one per stage; each stage
  forwards its survivors to the next;
* **farm / dynamic farm** — constructor arguments are broadcast (every
  worker owns *all* base primes) and each pack is routed to one worker.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.primes.core import base_primes
from repro.parallel.partition.base import CallPiece, WorkSplitter

__all__ = ["SieveWorkload"]


class SieveWorkload:
    """Candidates, packs, and splitters for one sieve experiment."""

    def __init__(self, maximum: int = 10_000_000, packs: int = 50):
        if maximum < 9:
            raise ValueError("maximum must be >= 9")
        if packs < 1:
            raise ValueError("packs must be >= 1")
        self.maximum = maximum
        self.packs = packs
        self.sqrt = math.isqrt(maximum)
        #: the pre-calculated primes up to sqrt(max) (paper: "pre-calculates
        #: the primes up to the square root of the largest number")
        self.base = base_primes(self.sqrt)
        first_odd = self.sqrt + 1 if (self.sqrt + 1) % 2 == 1 else self.sqrt + 2
        #: only odd numbers are sent through the sieve
        self.candidates = np.arange(first_odd, maximum + 1, 2, dtype=np.int64)

    # -- packs -------------------------------------------------------------

    def pack_list(self) -> list[np.ndarray]:
        """The candidate array as ``packs`` near-equal messages."""
        return [np.ascontiguousarray(p) for p in np.array_split(self.candidates, self.packs)]

    @property
    def pack_size(self) -> int:
        return math.ceil(len(self.candidates) / self.packs)

    # -- splitter building blocks ----------------------------------------------

    def split_call(self, args: tuple, kwargs: dict) -> list[CallPiece]:
        """Split a ``filter(candidates)`` call into per-pack pieces."""
        (candidates,) = args
        chunks = np.array_split(np.asarray(candidates), self.packs)
        return [
            CallPiece(i, (np.ascontiguousarray(chunk),))
            for i, chunk in enumerate(chunks)
            if len(chunk) > 0
        ]

    @staticmethod
    def combine(results: list) -> np.ndarray:
        """Aggregate survivors (pipeline deposits arrive unordered)."""
        parts = [np.asarray(r) for r in results if r is not None and len(r) > 0]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    @staticmethod
    def merge_pieces(pieces) -> CallPiece:
        """Coalesce consecutive packs (communication packing)."""
        arrays = [piece.args[0] for piece in pieces]
        return CallPiece(pieces[0].index, (np.concatenate(arrays),))

    def stage_ranges(self, stages: int) -> list[tuple[int, int]]:
        """Carve ``[2, sqrt]`` into ``stages`` contiguous prime ranges.

        Range boundaries follow the base-prime *list* so stages hold
        near-equal prime counts (the paper's "range of prime numbers").
        """
        chunks = np.array_split(self.base, stages)
        ranges: list[tuple[int, int]] = []
        previous_hi = 1
        for chunk in chunks:
            if len(chunk) == 0:
                # more stages than primes: give an empty range
                ranges.append((previous_hi + 1, previous_hi))
                continue
            lo, hi = int(chunk[0]), int(chunk[-1])
            ranges.append((lo, hi))
            previous_hi = hi
        return ranges

    # -- splitters -----------------------------------------------------------

    def pipeline_splitter(self, stages: int) -> WorkSplitter:
        ranges = self.stage_ranges(stages)

        def ctor_args(args, kwargs, index, count):
            lo, hi = ranges[index]
            return (lo, hi), {}

        return WorkSplitter(
            duplicates=stages,
            ctor_args=ctor_args,
            split=self.split_call,
            combine=self.combine,
            merge_pieces=self.merge_pieces,
        )

    def farm_splitter(self, workers: int) -> WorkSplitter:
        # constructor parameters broadcast: every worker gets [2, sqrt]
        return WorkSplitter(
            duplicates=workers,
            split=self.split_call,
            combine=self.combine,
            merge_pieces=self.merge_pieces,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SieveWorkload max={self.maximum} packs={self.packs} "
            f"candidates={len(self.candidates)} base={len(self.base)}>"
        )
