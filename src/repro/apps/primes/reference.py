"""Independent reference results for validating every sieve variant.

Deliberately *not* built on :class:`PrimeFilter` — a separate
odd-only segmented check — so a shared bug cannot validate itself.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["primes_up_to", "expected_sieve_output"]


def primes_up_to(n: int) -> np.ndarray:
    """All primes ``<= n`` (odd-wheel boolean sieve)."""
    if n < 2:
        return np.empty(0, dtype=np.int64)
    if n == 2:
        return np.array([2], dtype=np.int64)
    size = (n - 1) // 2  # index i -> odd number 2i + 3
    composite = np.zeros(size, dtype=bool)
    for i in range(math.isqrt(n) // 2 + 1):
        if not composite[i]:
            p = 2 * i + 3
            start = (p * p - 3) // 2
            if start < size:
                composite[start::p] = True
    odds = 2 * np.flatnonzero(~composite).astype(np.int64) + 3
    return np.concatenate(([2], odds[odds <= n]))


def expected_sieve_output(maximum: int) -> np.ndarray:
    """What a full sieve run must produce: primes in (sqrt(max), max]."""
    primes = primes_up_to(maximum)
    return primes[primes > math.isqrt(maximum)]
