"""Prime-number sieve core functionality (paper Section 5.1).

The class mirrors the paper's skeleton exactly::

    public class PrimeFilter {
      // calculates primes between [pmin,pmax]
      public PrimeFilter(int pmin, int pmax);
      // remove non-primes from num list
      public void filter(int num[]);
    }

Differences, both documented in DESIGN.md:

* ``filter`` *returns* the surviving candidates instead of mutating the
  array in place — Python/numpy idiom, and it gives the partition
  aspects a clean value to forward through the pipeline;
* the class keeps division-operation counters (``ops_last`` /
  ``ops_total``).  These are ordinary application statistics; the
  cost-model aspect reads them to charge simulated CPU time, keeping the
  core oblivious of the simulation.

The implementation is vectorised with numpy (the per-prime modulo pass
over the shrinking candidate array), so benchmark runs at the paper's
full 10 M scale stay fast while performing the *real* computation.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["PrimeFilter", "base_primes"]


def base_primes(limit: int) -> np.ndarray:
    """All primes ``<= limit`` via a boolean sieve of Eratosthenes."""
    if limit < 2:
        return np.empty(0, dtype=np.int64)
    composite = np.zeros(limit + 1, dtype=bool)
    composite[:2] = True
    for p in range(2, math.isqrt(limit) + 1):
        if not composite[p]:
            composite[p * p :: p] = True
    return np.flatnonzero(~composite).astype(np.int64)


class PrimeFilter:
    """Filters candidate numbers against the primes in ``[pmin, pmax]``.

    A candidate *survives* if no prime in this filter's range divides
    it.  A full sieve run feeds candidates in ``(sqrt(Max), Max]``
    through filters that jointly cover ``[2, sqrt(Max)]``; the survivors
    are exactly the primes above ``sqrt(Max)``.
    """

    def __init__(self, pmin: int, pmax: int):
        # An empty range (pmin > pmax) is a valid degenerate filter that
        # passes every candidate through — the pipeline partition creates
        # these when it has more stages than base primes.
        self.pmin = pmin
        self.pmax = pmax
        primes = base_primes(pmax)
        self.primes = primes[primes >= pmin]
        #: divisions performed by the most recent :meth:`filter` call
        self.ops_last = 0
        #: divisions performed over this filter's lifetime
        self.ops_total = 0
        #: packs processed (observability)
        self.packs_filtered = 0

    def filter(self, candidates: np.ndarray) -> np.ndarray:
        """Remove multiples of this filter's primes from ``candidates``.

        Returns the survivors (ascending order is preserved).
        """
        remaining = np.asarray(candidates, dtype=np.int64)
        ops = 0
        for p in self.primes:
            if remaining.size == 0:
                break
            ops += int(remaining.size)
            remaining = remaining[remaining % p != 0]
        self.ops_last = ops
        self.ops_total += ops
        self.packs_filtered += 1
        return remaining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PrimeFilter [{self.pmin},{self.pmax}] "
            f"{len(self.primes)} primes, {self.packs_filtered} packs>"
        )
