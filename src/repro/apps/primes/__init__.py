"""The paper's case study: a prime-number sieve (Section 5)."""

from repro.apps.primes.aspects import (
    SIEVE_CREATION,
    SIEVE_WORK,
    TABLE1_COMBINATIONS,
    IPrimeFilter,
    SieveStack,
    build_sieve_stack,
    sieve_app,
    sieve_cost_aspect,
    sieve_spec,
)
from repro.apps.primes.core import PrimeFilter, base_primes
from repro.apps.primes.handcoded import (
    CostedPrimeFilter,
    HandCodedFarmRMI,
    HandCodedPipelineRMI,
)
from repro.apps.primes.reference import expected_sieve_output, primes_up_to
from repro.apps.primes.workload import SieveWorkload

__all__ = [
    "PrimeFilter",
    "base_primes",
    "SieveWorkload",
    "primes_up_to",
    "expected_sieve_output",
    "SIEVE_CREATION",
    "SIEVE_WORK",
    "TABLE1_COMBINATIONS",
    "IPrimeFilter",
    "SieveStack",
    "build_sieve_stack",
    "sieve_spec",
    "sieve_app",
    "sieve_cost_aspect",
    "CostedPrimeFilter",
    "HandCodedFarmRMI",
    "HandCodedPipelineRMI",
]
