"""Hand-coded distributed sieve — the Figure 16 "Java" baseline.

What the methodology *avoids*: partition, concurrency, distribution and
cost accounting written directly into application code, tangled across
one module.  Functionally identical to the woven PipeRMI / FarmRMI
stacks, so comparing their simulated execution times isolates the AOP
overhead, exactly like the paper's first test.

The compute cost is charged inline by :class:`CostedPrimeFilter`
(``aop_factor`` = 1.0 — hand-written code is what the woven version's
factor is measured against).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.apps.primes.core import PrimeFilter
from repro.apps.primes.workload import SieveWorkload
from repro.cluster.topology import Cluster
from repro.middleware.context import current_node
from repro.middleware.placement import PlacementPolicy, RoundRobin
from repro.middleware.rmi import RmiMiddleware
from repro.runtime.backend import ExecutionBackend

__all__ = ["CostedPrimeFilter", "HandCodedPipelineRMI", "HandCodedFarmRMI"]


class CostedPrimeFilter(PrimeFilter):
    """PrimeFilter with the platform cost model tangled into it.

    This is the point: the hand-coded version cannot keep the core
    clean — timing code sits inside ``filter`` itself.
    """

    def __init__(self, pmin: int, pmax: int, ns_per_op: float):
        super().__init__(pmin, pmax)
        self.ns_per_op = ns_per_op

    def filter(self, candidates: np.ndarray) -> np.ndarray:
        survivors = super().filter(candidates)
        node = current_node()
        if node is not None:
            node.execute(self.ops_last * self.ns_per_op)
        return survivors


class _HandCodedBase:
    """Shared tangle: explicit RMI export, lookup, threads, locks."""

    def __init__(
        self,
        cluster: Cluster,
        backend: ExecutionBackend,
        workload: SieveWorkload,
        n_filters: int,
        ns_per_op: float,
        placement: PlacementPolicy | None = None,
    ):
        self.cluster = cluster
        self.backend = backend
        self.workload = workload
        self.n_filters = n_filters
        self.ns_per_op = ns_per_op
        self.placement = placement if placement is not None else RoundRobin()
        self.rmi = RmiMiddleware(cluster)
        self.refs: list[Any] = []
        self.locks: list[Any] = []

    def _export(self, pmin: int, pmax: int, index: int) -> None:
        servant = CostedPrimeFilter(pmin, pmax, self.ns_per_op)
        node = self.placement.choose(self.cluster, index)
        name = f"PS{index + 1}"
        self.rmi.export_and_bind(name, servant, node)
        self.refs.append(self.rmi.lookup(name))
        self.locks.append(self.backend.make_lock(name=f"hand.lock{index}"))

    def shutdown(self) -> None:
        self.rmi.shutdown()


class HandCodedPipelineRMI(_HandCodedBase):
    """Explicitly coded pipeline over RMI (no aspects anywhere)."""

    def setup(self) -> None:
        for index, (lo, hi) in enumerate(
            self.workload.stage_ranges(self.n_filters)
        ):
            self._export(lo, hi, index)

    def run(self) -> np.ndarray:
        """Feed every pack through all stages; one activity per pack."""
        packs = self.workload.pack_list()
        results: list[Any] = [None] * len(packs)

        def drive(pack_index: int, pack: np.ndarray) -> None:
            data = pack
            for stage, ref in enumerate(self.refs):
                with self.locks[stage]:  # a stage filters one pack at a time
                    data = self.rmi.invoke(ref, "filter", (data,))
            results[pack_index] = data

        handles = [
            self.backend.spawn(lambda i=i, p=pack: drive(i, p), name=f"pack{i}")
            for i, pack in enumerate(packs)
        ]
        for handle in handles:
            handle.join()
        return self.workload.combine(results)


class HandCodedFarmRMI(_HandCodedBase):
    """Explicitly coded farm over RMI (no aspects anywhere)."""

    def setup(self) -> None:
        for index in range(self.n_filters):
            self._export(2, self.workload.sqrt, index)

    def run(self) -> np.ndarray:
        packs = self.workload.pack_list()
        results: list[Any] = [None] * len(packs)

        def drive(pack_index: int, pack: np.ndarray) -> None:
            worker = pack_index % self.n_filters
            with self.locks[worker]:
                results[pack_index] = self.rmi.invoke(
                    self.refs[worker], "filter", (pack,)
                )

        handles = [
            self.backend.spawn(lambda i=i, p=pack: drive(i, p), name=f"pack{i}")
            for i, pack in enumerate(packs)
        ]
        for handle in handles:
            handle.join()
        return self.workload.combine(results)
