"""Pipeline case study: streaming word count."""

from repro.apps.wordcount.aspects import (
    WC_CREATION,
    WC_WORK,
    wordcount_spec,
    wordcount_splitter,
)
from repro.apps.wordcount.core import ALL_ROLES, TextPipeline

__all__ = [
    "TextPipeline",
    "ALL_ROLES",
    "wordcount_splitter",
    "wordcount_spec",
    "WC_CREATION",
    "WC_WORK",
]
