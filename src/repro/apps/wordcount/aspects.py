"""Pipeline strategy description for the word-count application.

Each stage is constructed with exactly one role; document batches are
split into sub-batches; stage results (transformed data) forward to the
next stage; final-stage Counters merge into one.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.api.spec import StackSpec
from repro.apps.wordcount.core import ALL_ROLES
from repro.parallel.partition.base import CallPiece, WorkSplitter

__all__ = ["wordcount_splitter", "wordcount_spec", "WC_CREATION", "WC_WORK"]

WC_CREATION = "initialization(TextPipeline.new(..))"
WC_WORK = "call(TextPipeline.process(..))"


def wordcount_splitter(batches: int) -> WorkSplitter:
    """One stage per role; batches split evenly; Counters merged."""
    stages = len(ALL_ROLES)

    def ctor_args(args: tuple, kwargs: dict, index: int, count: int):
        # stage i applies role i; with more stages than roles the tail
        # stages are identity (empty role tuple)
        role = (ALL_ROLES[index],) if index < stages else ()
        return (role,), {}

    def split(args: tuple, kwargs: dict) -> list[CallPiece]:
        (documents,) = args
        if not documents:
            return [CallPiece(0, (list(documents),))]
        size = max(1, (len(documents) + batches - 1) // batches)
        pieces = []
        for i in range(0, len(documents), size):
            pieces.append(CallPiece(len(pieces), (list(documents[i : i + size]),)))
        return pieces

    def combine(results: Sequence) -> Counter:
        total: Counter[str] = Counter()
        for result in results:
            total.update(result)
        return total

    return WorkSplitter(
        duplicates=stages,
        ctor_args=ctor_args,
        split=split,
        combine=combine,
    )


def wordcount_spec(batches: int, **overrides) -> StackSpec:
    """The declarative pipeline stack for the word counter — one stage
    per text-processing role, document batches streaming through."""
    from repro.apps.wordcount.core import TextPipeline

    return StackSpec(
        target=TextPipeline,
        work=WC_WORK,
        creation=WC_CREATION,
        work_method="process",
        splitter=wordcount_splitter(batches),
        strategy="pipeline",
        name="wordcount-pipeline",
        **overrides,
    )
