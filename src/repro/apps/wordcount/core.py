"""Streaming word-count — a second pipeline case study.

A three-role text pipeline (tokenise → normalise → count) expressed as a
*single* core class processing documents end-to-end; the pipeline
partition re-expresses it as stages, each owning one role — showing the
partition mechanism on a call whose payload is transformed (not merely
filtered) between stages.

The class's ``process`` method applies the roles in ``self.roles``; the
pipeline splitter constructs each stage with a single role.
"""

from __future__ import annotations

import re
from collections import Counter

__all__ = ["TextPipeline", "ALL_ROLES"]

_TOKEN_RE = re.compile(r"[A-Za-z']+")

ALL_ROLES = ("tokenise", "normalise", "count")


class TextPipeline:
    """Applies a subset of the roles to a batch of documents."""

    def __init__(self, roles: tuple[str, ...] = ALL_ROLES):
        unknown = set(roles) - set(ALL_ROLES)
        if unknown:
            raise ValueError(f"unknown roles: {sorted(unknown)}")
        self.roles = tuple(roles)
        self.batches = 0

    def process(self, batch):
        """Run this stage's roles over ``batch``.

        Input/output types depend on the roles applied: documents →
        token lists → normalised token lists → a Counter.
        """
        self.batches += 1
        data = batch
        for role in self.roles:
            if role == "tokenise":
                data = [_TOKEN_RE.findall(doc) for doc in data]
            elif role == "normalise":
                data = [
                    [token.lower().strip("'") for token in tokens if len(token) > 1]
                    for tokens in data
                ]
            elif role == "count":
                counter: Counter[str] = Counter()
                for tokens in data:
                    counter.update(tokens)
                data = counter
        return data
