"""Farm case study: Mandelbrot escape-time rendering."""

from repro.apps.mandelbrot.aspects import mandelbrot_spec, mandelbrot_splitter
from repro.apps.mandelbrot.core import MandelbrotRenderer, MandelbrotScene

__all__ = [
    "MandelbrotRenderer",
    "MandelbrotScene",
    "mandelbrot_splitter",
    "mandelbrot_spec",
]
