"""Mandelbrot escape-time renderer — farm-with-separable-dependencies.

The paper reports parallelisation strategies for "the three most common
categories: pipeline, farm with separable dependencies and heartbeat".
This is the farm representative: rows of the image are independent, so
any worker can compute any band (a classic embarrassingly parallel
workload with *separable* data dependencies — the constructor parameters
are broadcast, each call carries its own band).

Core functionality only: plain sequential OO code with the "adequate
joinpoints" the methodology needs — a constructor describing the scene
and a ``render(rows)`` method computing a band of rows.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MandelbrotRenderer", "MandelbrotScene"]


class MandelbrotScene:
    """Viewing window + resolution (value object shared by workers)."""

    def __init__(
        self,
        width: int = 200,
        height: int = 200,
        x_min: float = -2.0,
        x_max: float = 0.6,
        y_min: float = -1.3,
        y_max: float = 1.3,
        max_iter: int = 100,
    ):
        if width < 1 or height < 1:
            raise ValueError("resolution must be positive")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.width = width
        self.height = height
        self.x_min, self.x_max = x_min, x_max
        self.y_min, self.y_max = y_min, y_max
        self.max_iter = max_iter

    def xs(self) -> np.ndarray:
        return np.linspace(self.x_min, self.x_max, self.width)

    def y_of_row(self, row: int) -> float:
        return self.y_min + (self.y_max - self.y_min) * row / max(
            1, self.height - 1
        )


class MandelbrotRenderer:
    """Renders bands of rows; keeps iteration counters as statistics."""

    def __init__(self, scene: MandelbrotScene):
        self.scene = scene
        #: iterations performed by the most recent :meth:`render` call
        self.ops_last = 0
        self.ops_total = 0

    def render(self, rows: np.ndarray) -> np.ndarray:
        """Escape-time counts for the given row indices.

        Returns an array of shape ``(len(rows), width)``; vectorised over
        the x axis, iterating rows.
        """
        scene = self.scene
        xs = scene.xs()
        out = np.zeros((len(rows), scene.width), dtype=np.int32)
        ops = 0
        for i, row in enumerate(np.asarray(rows)):
            c = xs + 1j * scene.y_of_row(int(row))
            z = np.zeros_like(c)
            alive = np.ones(c.shape, dtype=bool)
            counts = np.zeros(c.shape, dtype=np.int32)
            for _ in range(scene.max_iter):
                if not alive.any():
                    break
                ops += int(alive.sum())
                z[alive] = z[alive] * z[alive] + c[alive]
                escaped = alive & (np.abs(z) > 2.0)
                counts[escaped] = counts[escaped]
                alive &= ~escaped
                counts[alive] += 1
            out[i] = counts
        self.ops_last = ops
        self.ops_total += ops
        return out

    def render_all(self) -> np.ndarray:
        """Sequential whole-image render (the core-functionality main)."""
        return self.render(np.arange(self.scene.height))
