"""Partition strategy description for the Mandelbrot farm.

Demonstrates the paper's reuse claim: "moving from a parallel
application to another using the same parallelisation strategy is
performed by copying the parallelisation aspects and updating these
modules to the new application."  Only this splitter is
application-specific — the farm aspect, the concurrency module and the
distribution aspects are reused verbatim from the sieve.
"""

from __future__ import annotations

import numpy as np

from repro.api.spec import StackSpec
from repro.parallel.partition.base import CallPiece, WorkSplitter

__all__ = [
    "mandelbrot_splitter",
    "mandelbrot_spec",
    "MANDEL_CREATION",
    "MANDEL_WORK",
]

MANDEL_CREATION = "initialization(MandelbrotRenderer.new(..))"
MANDEL_WORK = "call(MandelbrotRenderer.render(..))"


def mandelbrot_splitter(workers: int, bands: int) -> WorkSplitter:
    """Broadcast the scene; split ``render(rows)`` into ``bands`` pieces.

    Results (row-band arrays) are re-stitched in *row* order using the
    piece index — the farm preserves piece order by construction.
    """

    def split(args: tuple, kwargs: dict) -> list[CallPiece]:
        (rows,) = args
        chunks = np.array_split(np.asarray(rows), bands)
        return [
            CallPiece(i, (chunk,)) for i, chunk in enumerate(chunks) if len(chunk)
        ]

    def combine(results: list) -> np.ndarray:
        return np.vstack([np.asarray(r) for r in results])

    def merge_pieces(pieces) -> CallPiece:
        rows = np.concatenate([p.args[0] for p in pieces])
        return CallPiece(pieces[0].index, (rows,))

    return WorkSplitter(
        duplicates=workers,
        split=split,
        combine=combine,
        merge_pieces=merge_pieces,
    )


def mandelbrot_spec(workers: int, bands: int, **overrides) -> StackSpec:
    """The declarative farm stack for the renderer — pass ``overrides``
    (middleware, cluster, backend, ...) to vary the deployment without
    touching the strategy description."""
    from repro.apps.mandelbrot.core import MandelbrotRenderer

    return StackSpec(
        target=MandelbrotRenderer,
        work=MANDEL_WORK,
        creation=MANDEL_CREATION,
        work_method="render",
        splitter=mandelbrot_splitter(workers, bands),
        strategy="farm",
        name="mandelbrot-farm",
        **overrides,
    )
