"""Heartbeat strategy description for the Jacobi solver.

The client's ``JacobiGrid(rows, cols)`` construction is re-expressed as
one block per worker; the client's ``solve(iterations)`` call becomes
the heartbeat rhythm (compute one sweep everywhere, exchange halos,
repeat).  Only the joinpoint names and this splitter are
application-specific.
"""

from __future__ import annotations

import numpy as np

from repro.api.spec import StackSpec
from repro.parallel.partition.base import WorkSplitter

__all__ = [
    "jacobi_splitter",
    "jacobi_spec",
    "block_ranges",
    "JACOBI_CREATION",
    "JACOBI_WORK",
    "stitch_blocks",
]

JACOBI_CREATION = "initialization(JacobiGrid.new(..))"
JACOBI_WORK = "call(JacobiGrid.solve(..))"


def block_ranges(rows: int, blocks: int) -> list[tuple[int, int]]:
    """Near-equal contiguous row ranges covering ``[0, rows)``."""
    edges = np.linspace(0, rows, blocks + 1).astype(int)
    return [
        (int(edges[i]), int(edges[i + 1]))
        for i in range(blocks)
        if edges[i + 1] > edges[i]
    ]


def jacobi_splitter(blocks: int) -> WorkSplitter:
    """Duplicate the grid as row blocks; combine residuals with max."""

    def ctor_args(args: tuple, kwargs: dict, index: int, count: int):
        rows, cols = args[0], args[1]
        ranges = block_ranges(rows, count)
        if index >= len(ranges):
            # degenerate: more blocks than rows; give a 1-row slice of
            # the last range (keeps worker count stable for tiny grids)
            lo, hi = ranges[-1]
        else:
            lo, hi = ranges[index]
        merged_kwargs = dict(kwargs)
        merged_kwargs.update({"row_lo": lo, "row_hi": hi})
        return (rows, cols), merged_kwargs

    def combine(results: list) -> float:
        values = [float(r) for r in results if r is not None]
        return max(values) if values else 0.0

    return WorkSplitter(duplicates=blocks, ctor_args=ctor_args, combine=combine)


def jacobi_spec(blocks: int, **overrides) -> StackSpec:
    """The declarative heartbeat stack for the solver — block-duplicated
    grids stepping in rhythm with halo exchange between iterations."""
    from repro.apps.jacobi.core import JacobiGrid

    return StackSpec(
        target=JacobiGrid,
        work=JACOBI_WORK,
        creation=JACOBI_CREATION,
        work_method="solve",
        splitter=jacobi_splitter(blocks),
        strategy="heartbeat",
        name="jacobi-heartbeat",
        **overrides,
    )


def stitch_blocks(workers) -> np.ndarray:
    """Reassemble the global interior from the block workers (in block
    order) — used by tests and examples to compare against the
    sequential solution."""
    return np.vstack([w.interior() for w in workers])
