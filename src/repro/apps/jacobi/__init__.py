"""Heartbeat case study: Jacobi 5-point stencil solver."""

from repro.apps.jacobi.aspects import (
    JACOBI_CREATION,
    JACOBI_WORK,
    block_ranges,
    jacobi_spec,
    jacobi_splitter,
    stitch_blocks,
)
from repro.apps.jacobi.core import JacobiGrid

__all__ = [
    "JacobiGrid",
    "jacobi_splitter",
    "jacobi_spec",
    "block_ranges",
    "stitch_blocks",
    "JACOBI_CREATION",
    "JACOBI_WORK",
]
