"""Jacobi 5-point stencil solver — the heartbeat case study.

A steady-state heat-diffusion grid iterated with the Jacobi method.  The
heartbeat parallelisation partitions the grid into horizontal blocks;
every iteration each block computes locally, then exchanges its first
and last interior rows with its neighbours (the *heartbeat*: compute,
exchange, repeat).

Core functionality contract for the heartbeat aspect:

* the constructor takes an explicit row range so the partition aspect
  can re-parameterise it per block;
* ``step(iterations)`` advances the block and returns the max residual;
* ``get_boundary(side)`` / ``set_boundary(side, row)`` expose the halo
  rows (``side`` is ``"top"`` or ``"bottom"``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["JacobiGrid"]


class JacobiGrid:
    """One block of the global grid, with one halo row on each side.

    The global problem is ``rows × cols`` interior points with fixed
    boundary values: ``top_value`` along the first halo row and zero on
    the other three edges.  A block covers global interior rows
    ``[row_lo, row_hi)``.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        row_lo: int = 0,
        row_hi: int | None = None,
        top_value: float = 100.0,
    ):
        if rows < 1 or cols < 1:
            raise ValueError("grid must be at least 1x1")
        row_hi = rows if row_hi is None else row_hi
        if not 0 <= row_lo < row_hi <= rows:
            raise ValueError(f"invalid block [{row_lo},{row_hi}) of {rows}")
        self.rows = rows
        self.cols = cols
        self.row_lo = row_lo
        self.row_hi = row_hi
        self.top_value = top_value
        block = row_hi - row_lo
        # interior block + one halo row above and below
        self.grid = np.zeros((block + 2, cols + 2), dtype=np.float64)
        if row_lo == 0:
            self.grid[0, 1:-1] = top_value
        #: stencil point-updates performed by the last step() call
        self.ops_last = 0
        self.ops_total = 0
        self.iterations_done = 0

    # -- the heartbeat-visible API ------------------------------------------

    def step(self, iterations: int = 1) -> float:
        """Run Jacobi sweeps over this block; returns the max residual."""
        residual = 0.0
        for _ in range(iterations):
            interior = self.grid[1:-1, 1:-1]
            new = 0.25 * (
                self.grid[:-2, 1:-1]
                + self.grid[2:, 1:-1]
                + self.grid[1:-1, :-2]
                + self.grid[1:-1, 2:]
            )
            residual = float(np.abs(new - interior).max()) if new.size else 0.0
            self.grid[1:-1, 1:-1] = new
            self.ops_last = int(new.size)
            self.ops_total += self.ops_last
            self.iterations_done += 1
        return residual

    def get_boundary(self, side: str) -> np.ndarray:
        """First ('top') or last ('bottom') *interior* row of the block."""
        if side == "top":
            return self.grid[1, :].copy()
        if side == "bottom":
            return self.grid[-2, :].copy()
        raise ValueError(f"unknown side {side!r}")

    def set_boundary(self, side: str, row: np.ndarray) -> None:
        """Install a neighbour's interior row into this block's halo."""
        row = np.asarray(row, dtype=np.float64)
        if row.shape != (self.cols + 2,):
            raise ValueError(f"boundary row must have {self.cols + 2} values")
        if side == "top":
            self.grid[0, :] = row
        elif side == "bottom":
            self.grid[-1, :] = row
        else:
            raise ValueError(f"unknown side {side!r}")

    # -- whole-problem (sequential core) -------------------------------------

    def solve(self, iterations: int) -> float:
        """The sequential driver the heartbeat aspect intercepts."""
        residual = 0.0
        for _ in range(iterations):
            residual = self.step(1)
        return residual

    def interior(self) -> np.ndarray:
        """This block's interior values (without halos)."""
        return self.grid[1:-1, 1:-1].copy()
