"""High-level facade: one call from sequential class to parallel stack.

The paper's future work announces "a domain-specific aspect library for
parallel computing, based on reusable aspects"; this module is that
library's front door.  :func:`parallelise` assembles a complete
composition — partition strategy, concurrency, optional distribution,
optional cost instrumentation — from a strategy name and a
:class:`~repro.parallel.partition.base.WorkSplitter`::

    stack = parallelise(
        PrimeFilter,
        splitter=workload.farm_splitter(8),
        creation="initialization(PrimeFilter.new(..))",
        work="call(PrimeFilter.filter(..))",
        strategy="farm",
        middleware="rmi",
        cluster=cluster,
    )
    with stack:
        ...

Everything remains individually pluggable afterwards through
``stack.composition``.
"""

from __future__ import annotations

from typing import Any

from repro.aop.weaver import Weaver, default_weaver
from repro.cluster.topology import Cluster
from repro.errors import DeploymentError
from repro.middleware.mpp import MppMiddleware
from repro.middleware.placement import PlacementPolicy
from repro.middleware.rmi import RmiMiddleware
from repro.parallel.composition import Composition, ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.concurrency import concurrency_module
from repro.parallel.distribution import (
    mpp_distribution_module,
    rmi_distribution_module,
)
from repro.parallel.instrumentation import ComputeCostAspect
from repro.parallel.partition import (
    WorkSplitter,
    dynamic_farm_module,
    farm_module,
    heartbeat_module,
    pipeline_module,
)

__all__ = ["ParallelStack", "parallelise", "STRATEGIES", "MIDDLEWARES"]

STRATEGIES = ("pipeline", "farm", "dynamic-farm", "heartbeat")
MIDDLEWARES = ("none", "rmi", "mpp")


class ParallelStack:
    """A deployed-or-deployable composition with its handles."""

    def __init__(
        self,
        target: type,
        composition: Composition,
        partition: Any,
        middleware: Any = None,
        weaver: Weaver | None = None,
    ):
        self.target = target
        self.composition = composition
        self.partition = partition
        self.middleware = middleware
        self.weaver = weaver if weaver is not None else default_weaver

    def deploy(self) -> "ParallelStack":
        self.composition.deploy(self.weaver, targets=[self.target])
        return self

    def undeploy(self) -> None:
        self.composition.undeploy()

    def shutdown(self) -> None:
        if self.middleware is not None:
            self.middleware.shutdown()

    def __enter__(self) -> "ParallelStack":
        return self.deploy()

    def __exit__(self, *exc: Any) -> None:
        self.undeploy()
        self.shutdown()

    def describe(self) -> str:
        return self.composition.describe()


def parallelise(
    target: type,
    splitter: WorkSplitter,
    creation: str,
    work: str,
    strategy: str = "farm",
    concurrency: bool = True,
    middleware: str = "none",
    cluster: Cluster | None = None,
    placement: PlacementPolicy | None = None,
    cost: ComputeCostAspect | None = None,
    weaver: Weaver | None = None,
    **strategy_kwargs: Any,
) -> ParallelStack:
    """Assemble a full parallelisation stack for ``target``.

    Parameters mirror the methodology's decision points: the *strategy*
    (partition category), whether to add the concurrency module, which
    *middleware* to distribute over (requires a ``cluster``), and an
    optional cost-instrumentation aspect for simulated runs.
    """
    if strategy not in STRATEGIES:
        raise DeploymentError(f"unknown strategy {strategy!r}; choose {STRATEGIES}")
    if middleware not in MIDDLEWARES:
        raise DeploymentError(
            f"unknown middleware {middleware!r}; choose {MIDDLEWARES}"
        )

    composition = Composition(f"{strategy}+{middleware}")
    if strategy == "pipeline":
        module = pipeline_module(splitter, creation, work, **strategy_kwargs)
    elif strategy == "farm":
        module = farm_module(splitter, creation, work, **strategy_kwargs)
    elif strategy == "dynamic-farm":
        module = dynamic_farm_module(splitter, creation, work, **strategy_kwargs)
    else:
        module = heartbeat_module(splitter, creation, work, **strategy_kwargs)
    composition.plug(module)
    partition = module.coordinator  # type: ignore[attr-defined]

    merged = getattr(module, "provides_concurrency", False)
    if concurrency and not merged:
        composition.plug(concurrency_module(work, work))

    mw_instance = None
    if middleware != "none":
        if cluster is None:
            raise DeploymentError(f"middleware {middleware!r} needs a cluster")
        if middleware == "rmi":
            mw_instance = RmiMiddleware(cluster)
            composition.plug(
                rmi_distribution_module(
                    mw_instance, creation, work, placement=placement
                )
            )
        else:
            mw_instance = MppMiddleware(cluster)
            composition.plug(
                mpp_distribution_module(
                    mw_instance, creation, work, placement=placement
                )
            )

    if cost is not None:
        composition.plug(
            ParallelModule("cost-model", Concern.INSTRUMENTATION, [cost])
        )

    return ParallelStack(target, composition, partition, mw_instance, weaver)
