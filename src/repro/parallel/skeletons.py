"""Compatibility facade: ``parallelise()`` as a shim over ``repro.api``.

The original front door assembled the stack by hand from hard-coded
``STRATEGIES``/``MIDDLEWARES`` tuples.  It is now a *thin shim* over the
declarative API — :func:`parallelise` builds a
:class:`~repro.api.spec.StackSpec`, assembles a
:class:`~repro.api.app.ParallelApp`, and wraps it in the legacy
:class:`ParallelStack` surface::

    stack = parallelise(
        PrimeFilter,
        splitter=workload.farm_splitter(8),
        creation="initialization(PrimeFilter.new(..))",
        work="call(PrimeFilter.filter(..))",
        strategy="farm",
        middleware="rmi",
        cluster=cluster,
    )
    with stack:
        ...

New code should use :class:`repro.api.ParallelApp` directly — it adds
eager validation, registry-extensible strategies/middlewares/backends,
and the futures-first ``submit``/``map`` API.  ``STRATEGIES`` and
``MIDDLEWARES`` survive as snapshots of the open registries; unknown
names now raise :class:`~repro.api.registry.UnknownNameError` (a
``DeploymentError``) listing the registered names and suggesting the
nearest match.
"""

from __future__ import annotations

from typing import Any

from repro.api.app import ParallelApp
from repro.api.registry import MIDDLEWARES as _MIDDLEWARE_REGISTRY
from repro.api.registry import STRATEGIES as _STRATEGY_REGISTRY
from repro.api.spec import StackSpec
from repro.aop.weaver import Weaver, default_weaver
from repro.cluster.topology import Cluster
from repro.middleware.placement import PlacementPolicy
from repro.parallel.composition import Composition
from repro.parallel.instrumentation import ComputeCostAspect
from repro.parallel.partition import WorkSplitter

__all__ = ["ParallelStack", "parallelise", "STRATEGIES", "MIDDLEWARES"]

#: legacy catalogue views — snapshots of the open registries (excluding
#: the null entries, which the old tuples never listed)
STRATEGIES = tuple(n for n in _STRATEGY_REGISTRY.names() if n != "none")
MIDDLEWARES = ("none",) + tuple(
    n for n in _MIDDLEWARE_REGISTRY.names() if n != "none"
)


class ParallelStack:
    """A deployed-or-deployable composition with its handles.

    Legacy surface kept for existing callers; internally every stack is
    a :class:`~repro.api.app.ParallelApp`, reachable as ``stack.app``.
    """

    def __init__(
        self,
        target: type,
        composition: Composition,
        partition: Any,
        middleware: Any = None,
        weaver: Weaver | None = None,
        app: ParallelApp | None = None,
    ):
        self.target = target
        self.composition = composition
        self.partition = partition
        self.middleware = middleware
        self.weaver = weaver if weaver is not None else default_weaver
        #: the ParallelApp this stack wraps (None only for hand-built stacks)
        self.app = app

    @classmethod
    def from_app(cls, app: ParallelApp) -> "ParallelStack":
        """Wrap a ParallelApp in the legacy stack surface."""
        return cls(
            app.spec.target,
            app.composition,
            app.partition,
            middleware=app.middleware,
            weaver=app.weaver,
            app=app,
        )

    @property
    def async_aspect(self) -> Any:
        return self.app.async_aspect if self.app is not None else None

    @property
    def in_flight(self) -> int:
        """Live per-call dispatch tickets on the partition coordinator
        (each overlapped ``submit`` holds one for its duration)."""
        return getattr(self.partition, "in_flight", 0)

    def deploy(self) -> "ParallelStack":
        self.composition.deploy(self.weaver, targets=[self.target])
        return self

    def undeploy(self) -> None:
        self.composition.undeploy()

    def shutdown(self) -> None:
        if self.app is not None:
            self.app.shutdown()
        elif self.middleware is not None:
            self.middleware.shutdown()

    def __enter__(self) -> "ParallelStack":
        return self.deploy()

    def __exit__(self, *exc: Any) -> None:
        self.undeploy()
        self.shutdown()

    def describe(self) -> str:
        return self.composition.describe()


def parallelise(
    target: type,
    splitter: WorkSplitter,
    creation: str,
    work: str,
    strategy: str = "farm",
    concurrency: bool = True,
    middleware: str = "none",
    cluster: Cluster | None = None,
    placement: PlacementPolicy | None = None,
    cost: ComputeCostAspect | None = None,
    weaver: Weaver | None = None,
    **strategy_kwargs: Any,
) -> ParallelStack:
    """Assemble a full parallelisation stack for ``target``.

    Compatibility shim: builds a :class:`~repro.api.spec.StackSpec` from
    the keyword soup and delegates assembly (and its eager validation,
    including did-you-mean suggestions for unknown strategy/middleware
    names) to :class:`~repro.api.app.ParallelApp`.
    """
    spec = StackSpec(
        target=target,
        work=work,
        creation=creation,
        splitter=splitter,
        strategy=strategy,
        strategy_options=dict(strategy_kwargs),
        concurrency=concurrency,
        middleware=middleware,
        cluster=cluster,
        placement=placement,
        cost=cost,
        weaver=weaver,
    )
    return ParallelStack.from_app(ParallelApp(spec))
