"""Parallelisation concern categories.

Section 4 of the paper separates parallelisation into four categories.
Each category gets a default aspect *precedence layer* so that woven
advice nests the way the methodology prescribes:

* **partition** (outermost) — splits work before anything else sees it;
* **concurrency** — spawns/synchronises each split call;
* **partition-forward** — the pipeline's stage-to-stage forwarding runs
  *inside* the spawned activity (paper Figure 11);
* **distribution** — redirects the (possibly spawned) call to a node;
* **optimisation / instrumentation** (innermost) — platform tuning and
  cost accounting closest to the actual execution.

Layers are spaced so applications can slot custom aspects between them.
"""

from __future__ import annotations

import enum

from repro.aop import Aspect
from repro.middleware.context import in_server_dispatch

__all__ = ["Concern", "LAYER", "ParallelAspect"]


class Concern(enum.Enum):
    """The paper's four categories (plus instrumentation for the cost
    model, which the paper folds into optimisation)."""

    PARTITION = "partition"
    CONCURRENCY = "concurrency"
    DISTRIBUTION = "distribution"
    OPTIMISATION = "optimisation"
    INSTRUMENTATION = "instrumentation"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Default precedence per layer (higher = runs outermost).
LAYER: dict[str, int] = {
    "partition": 400,
    "concurrency": 300,
    "partition-forward": 250,
    "distribution": 200,
    "optimisation": 150,
    "instrumentation": 100,
}


class ParallelAspect(Aspect):
    """Base class for parallelisation-concern aspects.

    Provides the *server-side passthrough* rule: when a servant method
    executes on behalf of the middleware, partition / concurrency /
    distribution advice must not apply again (the server side of
    Figure 13 runs the call locally).  Advice bodies call
    :meth:`passthrough` first::

        @around("stage_call")
        def split(self, jp):
            if self.passthrough(jp):
                return jp.proceed()
            ...
    """

    concern: Concern = Concern.OPTIMISATION
    #: aspects that apply on the servant side set this to True
    applies_server_side: bool = False

    def passthrough(self, jp) -> bool:
        """Should this advice step aside for the current call?"""
        return not self.applies_server_side and in_server_dispatch()

    def describe(self) -> str:
        """One-line description used by composition reports."""
        return f"{type(self).__name__} ({self.concern})"
