"""Compute-cost instrumentation aspect.

The bridge between woven application code and the simulated testbed: an
(innermost) around advice that charges the current node's CPU for the
work a call performed.  The cost function receives the joinpoint and the
call's result; applications derive work from their own statistics (the
sieve charges ``ops × ns_per_op`` using the division counter the core
class exposes).

Two knobs model Figure 16's AOP overhead:

* ``aop_factor`` — multiplicative compute overhead of woven vs inlined
  code ("code that is no longer inlined in object classes but placed in
  separated classes by the AspectJ compiler");
* ``dispatch_cost`` — additive per-joinpoint interception cost.

The hand-coded (Java) harness charges the same cost function with
``aop_factor=1.0, dispatch_cost=0`` — the comparison the paper plots.

This aspect applies on the servant side too (costs follow the object),
hence ``applies_server_side = True``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.aop import abstract_pointcut, around, pointcut
from repro.middleware.context import current_node
from repro.parallel.concern import LAYER, Concern, ParallelAspect

__all__ = ["ComputeCostAspect"]


class ComputeCostAspect(ParallelAspect):
    """Charge simulated CPU time around matched calls."""

    concern = Concern.INSTRUMENTATION
    precedence = LAYER["instrumentation"]
    applies_server_side = True

    work_calls = abstract_pointcut("calls whose work is charged")

    def __init__(
        self,
        cost_fn: Callable[[Any, Any], float],
        work_calls: str | None = None,
        aop_factor: float = 1.0,
        dispatch_cost: float = 0.0,
    ):
        if work_calls is not None:
            self.work_calls = pointcut(work_calls)
        self.cost_fn = cost_fn
        self.aop_factor = aop_factor
        self.dispatch_cost = dispatch_cost
        self.total_charged = 0.0
        self.charges = 0

    @around("work_calls")
    def charge(self, jp):
        result = jp.proceed()
        node = current_node()
        if node is not None:
            seconds = self.cost_fn(jp, result) * self.aop_factor + self.dispatch_cost
            if seconds > 0:
                self.total_charged += seconds
                self.charges += 1
                node.execute(seconds)
        return result
