"""Farm partition (paper Figure 10).

"In a simple farming parallelisation each filter has ALL the primes ...
and each pack of numbers can be processed by ANY PrimeFilter."  Relative
to the pipeline this changes two things (the paper's own diff):

* duplication **broadcasts** the constructor parameters to every worker
  (no ``next`` chain);
* each split piece is **routed to exactly one worker** (static
  round-robin allocation — the "static work allocation" the dynamic farm
  later improves on) instead of being forwarded through every stage.

One aspect suffices: there is no forwarding, so nothing needs to nest
inside the concurrency layer.
"""

from __future__ import annotations

from typing import Any

from repro.aop import around
from repro.api.registry import register_strategy
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.partition.base import (
    PartitionAspect,
    WorkSplitter,
    dispatch_piece,
    piece_results,
)

__all__ = ["FarmAspect", "farm_module"]


class FarmAspect(PartitionAspect):
    """Broadcast duplication + piece-per-worker routing."""

    def __init__(self, splitter: WorkSplitter, creation=None, work=None):
        super().__init__(splitter, creation, work)
        self.workers: list[Any] = []
        self.split_calls = 0

    # -- duplication (constructor parameters broadcast to all workers) ------

    @around("creation")
    def duplicate(self, jp):
        if self.passthrough(jp) or jp.from_advice:
            return jp.proceed()
        # one batched initialization joinpoint builds the whole worker set
        self.workers = self.build_duplicates(jp)
        return self.workers[0]

    # -- call split: each piece to a single worker --------------------------

    @around("work")
    def split(self, jp):
        if self.passthrough(jp) or jp.from_advice:
            return jp.proceed()
        if not self.workers:
            return jp.proceed()  # partition never saw a creation
        self.split_calls += 1
        pieces = self.splitter.split(jp.args, jp.kwargs)
        outcomes: list[Any] = [None] * len(pieces)
        workers = self.workers
        for piece in pieces:
            worker = workers[piece.index % len(workers)]
            # re-enters the chain (concurrency / distribution) through
            # the worker's compiled plan entry — per-piece for plain
            # pieces, per-pack through the compiled batched entry for
            # packs (one BatchJoinPoint per pack); fetched per piece so
            # an aspect (un)plugged mid-split applies to the remainder
            outcomes[piece.index] = dispatch_piece(worker, jp.name, piece)
        results: list[Any] = []
        for piece in pieces:
            results.extend(piece_results(piece, outcomes[piece.index]))
        return self.splitter.combine(results)


@register_strategy("farm")
def farm_module(
    splitter: WorkSplitter,
    creation: str,
    work: str,
    name: str = "farm",
) -> ParallelModule:
    """Build the pluggable farm-partition module."""
    aspect = FarmAspect(splitter, creation=creation, work=work)
    module = ParallelModule(name, Concern.PARTITION, [aspect])
    module.coordinator = aspect  # type: ignore[attr-defined]
    return module
