"""Farm partition (paper Figure 10).

"In a simple farming parallelisation each filter has ALL the primes ...
and each pack of numbers can be processed by ANY PrimeFilter."  Relative
to the pipeline this changes two things (the paper's own diff):

* duplication **broadcasts** the constructor parameters to every worker
  (no ``next`` chain);
* each split piece is **routed to exactly one worker** (static
  round-robin allocation — the "static work allocation" the dynamic farm
  later improves on) instead of being forwarded through every stage.

One aspect suffices: there is no forwarding, so nothing needs to nest
inside the concurrency layer.  The aspect holds only the worker set;
each split call's state (piece accounting, gathered outcomes) lives in
its own per-call
:class:`~repro.parallel.partition.base.DispatchContext`, so overlapped
``submit()``s on one deployed farm never share state.  Whole submitted
packs are routed too (``routes_packs``): one pack → one worker → one
compiled batched dispatch and, under distribution, one message.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

from repro.aop import around
from repro.aop.plan import BatchJoinPoint
from repro.api.registry import register_strategy
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.concurrency.asynchronous import PooledSpawner
from repro.parallel.partition.base import (
    PackedPiece,
    PartitionAspect,
    WorkSplitter,
    dispatch_with_retry,
    piece_results,
)
from repro.runtime.backend import current_backend

__all__ = ["FarmAspect", "farm_module"]


class FarmAspect(PartitionAspect):
    """Broadcast duplication + piece-per-worker routing.

    ``resident_pool=True`` gives the static farm the dynamic farm's
    long-lived worker shape: one pinned dispatcher activity per worker
    (a :class:`~repro.parallel.concurrency.asynchronous.PooledSpawner`),
    fed per call with that worker's statically-allocated pieces — so a
    resident can be killed and replaced mid-split (the fault-injection
    axis) while the static allocation stays byte-identical.  Retry: when
    the call's ticket carries a
    :class:`~repro.faults.RetryPolicy`, a failed piece is re-dispatched
    to the next worker round-robin instead of failing the call.
    """

    routes_packs = True
    #: a farm pack is pure scatter (no inter-worker forwarding), so
    #: fire-and-forget packs are well-defined: one message, no gather
    oneway_packs = True

    def __init__(
        self,
        splitter: WorkSplitter,
        creation=None,
        work=None,
        resident_pool: bool = False,
    ):
        super().__init__(splitter, creation, work)
        self.workers: list[Any] = []
        #: round-robin cursor for top-level pack routing (fairness across
        #: overlapped ``map(pack=N)`` submissions; itertools.count is a
        #: thread-safe-enough append-only allocator)
        self._pack_cursor = itertools.count()
        #: long-lived per-worker dispatcher activities (opt-in)
        self.resident_pool = resident_pool
        self._pool: PooledSpawner | None = None
        #: per-thread re-entry flag: pooled piece dispatches re-enter the
        #: woven call from pool activities where jp.from_advice is False
        self._internal = threading.local()

    # -- duplication (constructor parameters broadcast to all workers) ------

    @around("creation")
    def duplicate(self, jp):
        if self.passthrough(jp) or jp.from_advice:
            return jp.proceed()
        # one batched initialization joinpoint builds the whole worker set
        self.workers = self.build_duplicates(jp)
        if self._pool is not None:  # re-duplication: retire the old pool
            self._pool.stop()
            self._pool = None
        if self.resident_pool:
            self._pool = PooledSpawner(len(self.workers), pinned=True)
        return self.workers[0]

    def on_undeploy(self) -> None:
        """Retire the deployment's resident dispatcher activities."""
        if self._pool is not None:
            self._pool.stop()
            self._pool = None

    # -- call split: each piece to a single worker --------------------------

    def _pick(self, piece_index: int):
        """The retry-aware worker picker for one piece: attempt 0 is the
        static allocation, each retry rotates to the next worker
        round-robin — a killed worker's piece lands on a healthy
        neighbour."""
        workers = self.workers

        def pick(attempt: int):
            index = (piece_index + attempt) % len(workers)
            return workers[index], index

        return pick

    @around("work")
    def split(self, jp):
        if self.passthrough(jp) or getattr(self._internal, "active", False):
            return jp.proceed()
        if jp.from_advice:
            return jp.proceed()
        if not self.workers:
            return jp.proceed()  # partition never saw a creation
        if isinstance(jp, BatchJoinPoint):
            return self.route_pack(jp)
        with self.dispatch_scope(
            f"farm.{jp.name}", backend=current_backend()
        ) as ctx:
            with ctx.span("split"):
                pieces = self.splitter.split(jp.args, jp.kwargs)
            if self._pool is not None:
                return self._split_pooled(jp.name, pieces, ctx)
            outcomes: list[Any] = [None] * len(pieces)
            with ctx.span("dispatch"):
                for piece in pieces:
                    # deadline/shed boundary: remaining pieces of an
                    # expired or shed call are dropped, the workers move
                    # straight on to other calls' pieces
                    ctx.check_deadline("dispatching farm pieces")
                    # re-enters the chain (concurrency / distribution) through
                    # the worker's compiled plan entry — per-piece for plain
                    # pieces, per-pack through the compiled batched entry for
                    # packs (one BatchJoinPoint per pack); fetched per piece so
                    # an aspect (un)plugged mid-split applies to the remainder
                    outcomes[piece.index] = dispatch_with_retry(
                        ctx, self._pick(piece.index), jp.name, ctx.record(piece)
                    )
            with ctx.span("merge"):
                results: list[Any] = []
                for piece in pieces:
                    ctx.check_deadline("gathering farm piece results")
                    results.extend(piece_results(piece, outcomes[piece.index]))
                combined = self.splitter.combine(results)
        return combined

    def _split_pooled(self, method_name: str, pieces: list, ctx: Any) -> Any:
        """Resident-pool dispatch: each piece becomes one task on the
        dispatcher pinned to its statically-allocated worker.  The shape
        mirrors the dynamic farm's drain (countdown + first-failure
        latch + deadline-aware wait); allocation stays static."""
        backend = current_backend()
        outcomes: list[Any] = [None] * len(pieces)
        done = backend.make_event(name="farm.pool.done")
        state: dict[str, Any] = {"remaining": len(pieces), "failure": None}
        state_lock = threading.Lock()

        def run_piece(piece: Any) -> None:
            # pool activities re-enter the woven call with from_advice
            # False — the per-thread flag keeps this advice out of the way
            self._internal.active = True
            try:
                if not ctx.cancelled:
                    outcomes[piece.index] = dispatch_with_retry(
                        ctx, self._pick(piece.index), method_name, piece
                    )
            except BaseException as exc:  # noqa: BLE001 - waiter re-raises
                ctx.fail(exc)
                with state_lock:
                    if state["failure"] is None:
                        state["failure"] = exc
                if not isinstance(exc, Exception):
                    raise
            finally:
                self._internal.active = False
                with state_lock:
                    state["remaining"] -= 1
                    drained = state["remaining"] == 0
                if drained:
                    done.set()

        with ctx.span("dispatch"):
            for piece in pieces:
                ctx.check_deadline("dispatching farm pieces")
                index = piece.index % len(self.workers)
                self._pool.spawn(
                    backend,
                    lambda p=ctx.record(piece): run_piece(p),
                    index=index,
                )
            if ctx.deadline is None:
                done.wait(None)
            elif not done.wait(max(ctx.deadline.remaining(), 0.0)):
                raise ctx.expire("draining the farm pool")
        if state["failure"] is not None:
            raise state["failure"]
        ctx.check_deadline("gathering farm piece results")
        with ctx.span("merge"):
            results: list[Any] = []
            for piece in pieces:
                results.extend(piece_results(piece, outcomes[piece.index]))
            return self.splitter.combine(results)

    def route_pack(self, jp: BatchJoinPoint) -> Any:
        """Top-level pack routing: one whole submitted pack to ONE worker
        through the compiled batched entry — one advice pass below the
        partition layer and, under distribution, one message per pack.
        Packs round-robin across workers, so ``map(items, pack=N)``
        spreads its packs over the farm."""
        slot = next(self._pack_cursor)
        pieces = tuple(jp.args[0])
        with self.dispatch_scope(
            f"farm.pack.{jp.name}", backend=current_backend()
        ) as ctx:
            ctx.record_pack(len(pieces))
            with ctx.span("dispatch"):
                ctx.check_deadline("routing the pack")
                return dispatch_with_retry(
                    ctx, self._pick(slot), jp.name, PackedPiece(slot, pieces)
                )


@register_strategy("farm")
def farm_module(
    splitter: WorkSplitter,
    creation: str,
    work: str,
    name: str = "farm",
    resident_pool: bool = False,
) -> ParallelModule:
    """Build the pluggable farm-partition module.

    ``resident_pool=True`` serves each worker's pieces through a
    long-lived pinned dispatcher activity (the dynamic farm's resident
    shape, with the farm's static allocation) — the form the
    fault-injection tests kill and replace mid-split.
    """
    aspect = FarmAspect(
        splitter, creation=creation, work=work, resident_pool=resident_pool
    )
    module = ParallelModule(name, Concern.PARTITION, [aspect])
    module.coordinator = aspect  # type: ignore[attr-defined]
    return module


#: StackSpec reads the pack/oneway capability flags off this class —
#: the aspect's own attributes stay the single source of truth
farm_module.coordinator_class = FarmAspect  # type: ignore[attr-defined]
