"""Farm partition (paper Figure 10).

"In a simple farming parallelisation each filter has ALL the primes ...
and each pack of numbers can be processed by ANY PrimeFilter."  Relative
to the pipeline this changes two things (the paper's own diff):

* duplication **broadcasts** the constructor parameters to every worker
  (no ``next`` chain);
* each split piece is **routed to exactly one worker** (static
  round-robin allocation — the "static work allocation" the dynamic farm
  later improves on) instead of being forwarded through every stage.

One aspect suffices: there is no forwarding, so nothing needs to nest
inside the concurrency layer.  The aspect holds only the worker set;
each split call's state (piece accounting, gathered outcomes) lives in
its own per-call
:class:`~repro.parallel.partition.base.DispatchContext`, so overlapped
``submit()``s on one deployed farm never share state.  Whole submitted
packs are routed too (``routes_packs``): one pack → one worker → one
compiled batched dispatch and, under distribution, one message.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.aop import around
from repro.aop.plan import BatchJoinPoint, batched_entry
from repro.api.registry import register_strategy
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.partition.base import (
    PartitionAspect,
    WorkSplitter,
    dispatch_piece,
    piece_results,
)
from repro.runtime.backend import current_backend

__all__ = ["FarmAspect", "farm_module"]


class FarmAspect(PartitionAspect):
    """Broadcast duplication + piece-per-worker routing."""

    routes_packs = True
    #: a farm pack is pure scatter (no inter-worker forwarding), so
    #: fire-and-forget packs are well-defined: one message, no gather
    oneway_packs = True

    def __init__(self, splitter: WorkSplitter, creation=None, work=None):
        super().__init__(splitter, creation, work)
        self.workers: list[Any] = []
        #: round-robin cursor for top-level pack routing (fairness across
        #: overlapped ``map(pack=N)`` submissions; itertools.count is a
        #: thread-safe-enough append-only allocator)
        self._pack_cursor = itertools.count()

    # -- duplication (constructor parameters broadcast to all workers) ------

    @around("creation")
    def duplicate(self, jp):
        if self.passthrough(jp) or jp.from_advice:
            return jp.proceed()
        # one batched initialization joinpoint builds the whole worker set
        self.workers = self.build_duplicates(jp)
        return self.workers[0]

    # -- call split: each piece to a single worker --------------------------

    @around("work")
    def split(self, jp):
        if self.passthrough(jp) or jp.from_advice:
            return jp.proceed()
        if not self.workers:
            return jp.proceed()  # partition never saw a creation
        if isinstance(jp, BatchJoinPoint):
            return self.route_pack(jp)
        with self.dispatch_scope(
            f"farm.{jp.name}", backend=current_backend()
        ) as ctx:
            with ctx.span("split"):
                pieces = self.splitter.split(jp.args, jp.kwargs)
            outcomes: list[Any] = [None] * len(pieces)
            workers = self.workers
            with ctx.span("dispatch"):
                for piece in pieces:
                    # deadline/shed boundary: remaining pieces of an
                    # expired or shed call are dropped, the workers move
                    # straight on to other calls' pieces
                    ctx.check_deadline("dispatching farm pieces")
                    worker = workers[piece.index % len(workers)]
                    # re-enters the chain (concurrency / distribution) through
                    # the worker's compiled plan entry — per-piece for plain
                    # pieces, per-pack through the compiled batched entry for
                    # packs (one BatchJoinPoint per pack); fetched per piece so
                    # an aspect (un)plugged mid-split applies to the remainder
                    outcomes[piece.index] = dispatch_piece(
                        worker, jp.name, ctx.record(piece)
                    )
            with ctx.span("merge"):
                results: list[Any] = []
                for piece in pieces:
                    ctx.check_deadline("gathering farm piece results")
                    results.extend(piece_results(piece, outcomes[piece.index]))
                combined = self.splitter.combine(results)
        return combined

    def route_pack(self, jp: BatchJoinPoint) -> Any:
        """Top-level pack routing: one whole submitted pack to ONE worker
        through the compiled batched entry — one advice pass below the
        partition layer and, under distribution, one message per pack.
        Packs round-robin across workers, so ``map(items, pack=N)``
        spreads its packs over the farm."""
        worker = self.workers[next(self._pack_cursor) % len(self.workers)]
        pieces = tuple(jp.args[0])
        with self.dispatch_scope(
            f"farm.pack.{jp.name}", backend=current_backend()
        ) as ctx:
            ctx.record_pack(len(pieces))
            with ctx.span("dispatch"):
                ctx.check_deadline("routing the pack")
                return batched_entry(worker, jp.name)(pieces)


@register_strategy("farm")
def farm_module(
    splitter: WorkSplitter,
    creation: str,
    work: str,
    name: str = "farm",
) -> ParallelModule:
    """Build the pluggable farm-partition module."""
    aspect = FarmAspect(splitter, creation=creation, work=work)
    module = ParallelModule(name, Concern.PARTITION, [aspect])
    module.coordinator = aspect  # type: ignore[attr-defined]
    return module


#: StackSpec reads the pack/oneway capability flags off this class —
#: the aspect's own attributes stay the single source of truth
farm_module.coordinator_class = FarmAspect  # type: ignore[attr-defined]
