"""Partition mechanisms: object duplication and method-call split.

Section 4.1: "Two base mechanisms work together to achieve these types
of parallelism: object duplication and method call split."  This module
provides the shared machinery:

* :class:`WorkSplitter` — the app-supplied strategy describing how to
  duplicate (per-stage constructor arguments), how to split a call's
  arguments into pieces, how to forward results between stages, and how
  to combine piece results;
* :class:`ResultCollector` — backend-neutral gather point for split-call
  results deposited by pipeline forwarding;
* :class:`PartitionAspect` — base class holding the splitter and the
  aspect-managed object bookkeeping every strategy shares.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.aop import abstract_pointcut, pointcut
from repro.aop.plan import CtorPack, batched_entry
from repro.errors import AdviceError
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.runtime.backend import current_backend
from repro.runtime.futures import Future

__all__ = [
    "CallPiece",
    "PackedPiece",
    "WorkSplitter",
    "ResultCollector",
    "PartitionAspect",
    "dispatch_piece",
    "piece_results",
]


class CallPiece:
    """One piece of a split call: ``(args, kwargs)`` plus its index."""

    __slots__ = ("index", "args", "kwargs")

    def __init__(self, index: int, args: tuple, kwargs: dict | None = None):
        self.index = index
        self.args = args
        self.kwargs = kwargs or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CallPiece #{self.index}>"


class PackedPiece(CallPiece):
    """A *pack*: several pieces routed as one unit and dispatched through
    one compiled batched entry point.

    Produced by the communication-packing optimisation in batch mode.
    Skeletons route a pack exactly like a piece (by ``index``) but
    dispatch it via :func:`repro.aop.plan.batched_entry`, so the advice
    chain runs once per pack (one
    :class:`~repro.aop.plan.BatchJoinPoint`) while the target method
    still runs once per item.  ``args``/``kwargs`` stay empty — a pack's
    payload is its ``items``.
    """

    __slots__ = ("items",)

    def __init__(self, index: int, items: Sequence[CallPiece]):
        super().__init__(index, ())
        self.items = tuple(items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PackedPiece #{self.index} x{len(self.items)}>"


def dispatch_piece(target: Any, name: str, piece: CallPiece) -> Any:
    """Send one split piece into ``target``'s woven entry point.

    Plain pieces go through the compiled plan installed as the class
    attribute (fetched per piece, so an aspect (un)plugged mid-split
    applies to the remaining pieces); packs go through the compiled
    batched entry — one advice pass for the whole pack.
    """
    items = getattr(piece, "items", None)
    if items is not None:
        return batched_entry(target, name)(items)
    return getattr(target, name)(*piece.args, **piece.kwargs)


def piece_results(piece: CallPiece, outcome: Any) -> list:
    """Normalise one dispatch outcome to the per-item result list:
    futures are resolved, pack outcomes (already per-item lists) are
    spread, plain piece outcomes become singletons.  Skeletons flatten
    with this so ``combine`` always sees piece-granular results in index
    order, packed or not."""
    if isinstance(outcome, Future):
        outcome = outcome.result()
    if getattr(piece, "items", None) is not None:
        return list(outcome)
    return [outcome]


class WorkSplitter:
    """Application-supplied partition strategy.

    Parameters
    ----------
    duplicates:
        How many aspect-managed objects to create (pipeline stages or
        farm workers).
    ctor_args:
        ``(args, kwargs, index, count) -> (args, kwargs)`` — constructor
        arguments for the ``index``-th duplicate.  Default: broadcast the
        original arguments (the farm's behaviour).
    split:
        ``(args, kwargs) -> [CallPiece...]`` — split one core call.
        Default: a single piece (no data split).
    combine:
        ``[piece results in index order] -> result`` — aggregate.
        Default: return the list itself.
    forward_args:
        ``(result, args, kwargs) -> (args, kwargs)`` — arguments for the
        next pipeline stage, given this stage's result.  Default: pass
        the result as the sole argument (the sieve forwards survivors).
    merge_pieces:
        ``(pieces) -> piece`` — used by the communication-packing
        optimisation to coalesce consecutive pieces.  Optional.
    """

    def __init__(
        self,
        duplicates: int,
        ctor_args: Callable[[tuple, dict, int, int], tuple[tuple, dict]] | None = None,
        split: Callable[[tuple, dict], Sequence[CallPiece]] | None = None,
        combine: Callable[[list], Any] | None = None,
        forward_args: Callable[[Any, tuple, dict], tuple[tuple, dict]] | None = None,
        merge_pieces: Callable[[Sequence[CallPiece]], CallPiece] | None = None,
    ):
        if duplicates < 1:
            raise AdviceError("duplicates must be >= 1")
        self.duplicates = duplicates
        self._ctor_args = ctor_args
        self._split = split
        self._combine = combine
        self._forward_args = forward_args
        self._merge_pieces = merge_pieces

    def ctor_args(self, args: tuple, kwargs: dict, index: int) -> tuple[tuple, dict]:
        if self._ctor_args is None:
            return args, kwargs
        return self._ctor_args(args, kwargs, index, self.duplicates)

    def split(self, args: tuple, kwargs: dict) -> list[CallPiece]:
        if self._split is None:
            return [CallPiece(0, args, kwargs)]
        return list(self._split(args, kwargs))

    def combine(self, results: list) -> Any:
        if self._combine is None:
            return results
        return self._combine(results)

    def forward_args(self, result: Any, args: tuple, kwargs: dict) -> tuple[tuple, dict]:
        if self._forward_args is None:
            return (result,), {}
        return self._forward_args(result, args, kwargs)

    def merge_pieces(self, pieces: Sequence[CallPiece]) -> CallPiece:
        if self._merge_pieces is None:
            raise AdviceError(
                "this splitter does not support piece merging "
                "(communication packing needs merge_pieces)"
            )
        return self._merge_pieces(pieces)


class ResultCollector:
    """Gather point for ``expected`` deposits, in deposit order."""

    def __init__(self, expected: int, backend: Any = None):
        backend = backend if backend is not None else current_backend()
        self.expected = expected
        self._items: list[Any] = []
        self._lock = backend.make_lock(name="collector.lock")
        self._done = backend.make_event(name="collector.done")
        if expected == 0:
            self._done.set()

    def deposit(self, item: Any) -> None:
        with self._lock:
            self._items.append(item)
            complete = len(self._items) >= self.expected
        if complete:
            self._done.set()

    def wait(self, timeout: float | None = None) -> list[Any]:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"collector got {len(self._items)}/{self.expected} results"
            )
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


class PartitionAspect(ParallelAspect):
    """Common state for partition strategies.

    Abstract pointcuts every strategy binds (by constructor keyword or in
    a subclass):

    * ``creation`` — the core-functionality construction to duplicate,
      e.g. ``initialization(PrimeFilter.new(..))``;
    * ``work`` — the core call(s) to split, e.g.
      ``call(PrimeFilter.filter(..))``.
    """

    concern = Concern.PARTITION
    precedence = LAYER["partition"]

    creation = abstract_pointcut("construction joinpoint to duplicate")
    work = abstract_pointcut("method call(s) to split")

    def __init__(
        self,
        splitter: WorkSplitter,
        creation: str | None = None,
        work: str | None = None,
    ):
        self.splitter = splitter
        if creation is not None:
            self.creation = pointcut(creation)
        if work is not None:
            self.work = pointcut(work)
        #: id(object) -> index of the aspect-managed duplicates
        self.managed: dict[int, int] = {}
        #: duplicates in creation order (index order)
        self.instances: list[Any] = []

    # -- shared duplication bookkeeping ------------------------------------

    def build_duplicates(self, jp) -> list[Any]:
        """Construct every duplicate through ONE batched initialization
        joinpoint pass.

        The splitter's per-index constructor arguments are collected into
        a :class:`~repro.aop.plan.CtorPack` and shipped through a single
        ``proceed`` — the remaining initialization chain (and, under
        distribution, the create-remote advice) runs once per duplicate
        *set* instead of once per worker, while still building (and
        exporting) one instance per argset.  Returns the instances in
        index order, already remembered as aspect-managed.
        """
        self.reset_instances()
        splitter = self.splitter
        argsets = [
            splitter.ctor_args(jp.args, jp.kwargs, index)
            for index in range(splitter.duplicates)
        ]
        instances = list(jp.proceed(CtorPack(argsets)))
        for index, obj in enumerate(instances):
            self.remember(obj, index)
        return instances

    def remember(self, obj: Any, index: int) -> None:
        self.managed[id(obj)] = index
        self.instances.append(obj)

    def is_managed(self, obj: Any) -> bool:
        return id(obj) in self.managed

    def reset_instances(self) -> None:
        self.managed.clear()
        self.instances.clear()
