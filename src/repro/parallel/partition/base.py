"""Partition mechanisms: object duplication and method-call split.

Section 4.1: "Two base mechanisms work together to achieve these types
of parallelism: object duplication and method call split."  This module
provides the shared machinery:

* :class:`WorkSplitter` — the app-supplied strategy describing how to
  duplicate (per-stage constructor arguments), how to split a call's
  arguments into pieces, how to forward results between stages, and how
  to combine piece results;
* :class:`ResultCollector` — backend-neutral gather point for split-call
  results deposited by pipeline forwarding;
* :class:`DispatchContext` — the per-call *ticket*: one split call's
  collector, piece accounting and forwarding cursor, made ambient via
  :mod:`repro.runtime.dispatch` so a deployed stack (immutable topology)
  serves many overlapped in-flight splits;
* :class:`PartitionAspect` — base class holding the splitter and the
  aspect-managed object bookkeeping every strategy shares.
"""

from __future__ import annotations

import copy
import inspect
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.aop import abstract_pointcut, pointcut
from repro.aop.cflow import bypassing_construction
from repro.aop.plan import CtorPack, batched_entry
from repro.errors import (
    AdviceError,
    DeadlineExceeded,
    InjectedFault,
    ReplyDropped,
    WorkerKilled,
)
from repro.faults.schedule import fire_fault
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.runtime.admission import current_envelope
from repro.runtime.backend import current_backend
from repro.runtime.dispatch import (
    next_dispatch_id,
    register_dispatch,
    use_dispatch,
    use_piece,
)
from repro.runtime.futures import Future

__all__ = [
    "CallPiece",
    "PackedPiece",
    "WorkSplitter",
    "ResultCollector",
    "DispatchContext",
    "DispatchContextOwner",
    "PartitionAspect",
    "dispatch_piece",
    "dispatch_with_retry",
    "piece_key",
    "piece_results",
]


class CallPiece:
    """One piece of a split call: ``(args, kwargs)`` plus its index."""

    __slots__ = ("index", "args", "kwargs")

    def __init__(self, index: int, args: tuple, kwargs: dict | None = None):
        self.index = index
        self.args = args
        self.kwargs = kwargs or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CallPiece #{self.index}>"


class PackedPiece(CallPiece):
    """A *pack*: several pieces routed as one unit and dispatched through
    one compiled batched entry point.

    Produced by the communication-packing optimisation in batch mode.
    Skeletons route a pack exactly like a piece (by ``index``) but
    dispatch it via :func:`repro.aop.plan.batched_entry`, so the advice
    chain runs once per pack (one
    :class:`~repro.aop.plan.BatchJoinPoint`) while the target method
    still runs once per item.  ``args``/``kwargs`` stay empty — a pack's
    payload is its ``items``.
    """

    __slots__ = ("items",)

    def __init__(self, index: int, items: Sequence[CallPiece]):
        super().__init__(index, ())
        self.items = tuple(items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PackedPiece #{self.index} x{len(self.items)}>"


def dispatch_piece(
    target: Any, name: str, piece: CallPiece, worker_index: int | None = None
) -> Any:
    """Send one split piece into ``target``'s woven entry point.

    Plain pieces go through the compiled plan installed as the class
    attribute (fetched per piece, so an aspect (un)plugged mid-split
    applies to the remaining pieces); packs go through the compiled
    batched entry — one advice pass for the whole pack.

    This is the ``"dispatch"`` fault-injection site: an installed
    :class:`~repro.faults.FaultSchedule` is consulted once per piece
    (keyed by ``worker_index`` when the strategy routes to a known
    worker).  ``raise_in_piece``/``kill_worker`` fail the piece before
    the call, ``delay_reply`` stalls it, and ``drop_reply`` runs the
    call but discards its outcome — so recovery needs keyed deposits to
    stay exactly-once.  The piece is made ambient for the duration of
    the call (:func:`~repro.runtime.dispatch.current_piece`), which is
    how forwarding advice hops away attributes tail results to it.
    """
    event = fire_fault("dispatch", worker_index)
    if event is not None:
        where = f"worker {worker_index}" if worker_index is not None else "dispatch"
        if event.kind == "raise_in_piece":
            raise InjectedFault(
                f"injected failure in piece #{piece.index} ({where})"
            )
        if event.kind == "kill_worker":
            raise WorkerKilled(
                f"injected worker death under piece #{piece.index} ({where})"
            )
        if event.kind == "delay_reply":
            time.sleep(event.delay)
    items = getattr(piece, "items", None)
    with use_piece(piece):
        if items is not None:
            outcome = batched_entry(target, name)(items)
        else:
            outcome = getattr(target, name)(*piece.args, **piece.kwargs)
    if event is not None and event.kind == "drop_reply":
        raise ReplyDropped(
            f"injected reply drop for piece #{piece.index} ({where})"
        )
    return outcome


def dispatch_with_retry(
    ctx: "DispatchContext | None",
    pick_worker: Callable[[int], tuple[Any, int | None]],
    name: str,
    piece: CallPiece,
) -> Any:
    """Dispatch ``piece``, re-dispatching to a (possibly different)
    worker on retryable failure, per the ticket's adopted
    :class:`~repro.faults.RetryPolicy`.

    ``pick_worker(attempt)`` returns ``(worker, index)`` for the given
    zero-based attempt — strategies rotate to a healthy neighbour
    (farm), hand the piece back to the pool (dynamic farm), or clone a
    fresh branch worker (divide & conquer).  Without an armed policy
    this is exactly :func:`dispatch_piece` — one attempt, failures
    propagate.  With one, future-valued outcomes are resolved *inside*
    the protected region so a concurrency-mode worker failure is caught
    (and retried) here rather than surfacing at gather time.
    """
    policy = getattr(ctx, "retry_policy", None) if ctx is not None else None
    attempt = 0
    while True:
        worker, index = pick_worker(attempt)
        try:
            outcome = dispatch_piece(worker, name, piece, worker_index=index)
            if policy is not None:
                if isinstance(outcome, Future):
                    outcome = outcome.result()
                elif _holds_awaitables(outcome):
                    # an async servant's coroutine: run it to completion
                    # on the backend's loop HERE so a loop-task failure
                    # is caught by this retry envelope too
                    outcome = current_backend().finish(outcome)
            return outcome
        except Exception as exc:
            attempt += 1
            if (
                policy is None
                or not policy.retryable(exc)
                or attempt >= policy.max_attempts
            ):
                raise
            ctx.record_retry(piece, exc, attempt)
            ctx.check_deadline("retrying a failed piece")
            policy.pause(attempt)


def piece_key(piece: CallPiece | None) -> Any:
    """The deposit-deduplication key for a piece (``None`` when there is
    no ambient piece — an unkeyed deposit, never deduplicated)."""
    return None if piece is None else piece.index


def _holds_awaitables(outcome: Any) -> bool:
    """Is the outcome something only an event loop can resolve — a
    coroutine from an ``async def`` servant, or a pack result list
    containing some?"""
    if inspect.isawaitable(outcome):
        return True
    return isinstance(outcome, list) and any(
        inspect.isawaitable(item) for item in outcome
    )


def piece_results(piece: CallPiece, outcome: Any) -> list:
    """Normalise one dispatch outcome to the per-item result list:
    futures are resolved, awaitables (async servants dispatched without
    a concurrency aspect) are run to completion on the current backend's
    loop, pack outcomes (already per-item lists) are spread, plain piece
    outcomes become singletons.  Skeletons flatten with this so
    ``combine`` always sees piece-granular results in index order,
    packed or not."""
    if isinstance(outcome, Future):
        outcome = outcome.result()
    if _holds_awaitables(outcome):
        outcome = current_backend().finish(outcome)
    if getattr(piece, "items", None) is not None:
        return list(outcome)
    return [outcome]


class WorkSplitter:
    """Application-supplied partition strategy.

    Parameters
    ----------
    duplicates:
        How many aspect-managed objects to create (pipeline stages or
        farm workers).
    ctor_args:
        ``(args, kwargs, index, count) -> (args, kwargs)`` — constructor
        arguments for the ``index``-th duplicate.  Default: broadcast the
        original arguments (the farm's behaviour).
    split:
        ``(args, kwargs) -> [CallPiece...]`` — split one core call.
        Default: a single piece (no data split).
    combine:
        ``[piece results in index order] -> result`` — aggregate.
        Default: return the list itself.
    forward_args:
        ``(result, args, kwargs) -> (args, kwargs)`` — arguments for the
        next pipeline stage, given this stage's result.  Default: pass
        the result as the sole argument (the sieve forwards survivors).
    merge_pieces:
        ``(pieces) -> piece`` — used by the communication-packing
        optimisation to coalesce consecutive pieces.  Optional.
    """

    def __init__(
        self,
        duplicates: int,
        ctor_args: Callable[[tuple, dict, int, int], tuple[tuple, dict]] | None = None,
        split: Callable[[tuple, dict], Sequence[CallPiece]] | None = None,
        combine: Callable[[list], Any] | None = None,
        forward_args: Callable[[Any, tuple, dict], tuple[tuple, dict]] | None = None,
        merge_pieces: Callable[[Sequence[CallPiece]], CallPiece] | None = None,
    ):
        if duplicates < 1:
            raise AdviceError("duplicates must be >= 1")
        self.duplicates = duplicates
        self._ctor_args = ctor_args
        self._split = split
        self._combine = combine
        self._forward_args = forward_args
        self._merge_pieces = merge_pieces

    def ctor_args(self, args: tuple, kwargs: dict, index: int) -> tuple[tuple, dict]:
        if self._ctor_args is None:
            return args, kwargs
        return self._ctor_args(args, kwargs, index, self.duplicates)

    def split(self, args: tuple, kwargs: dict) -> list[CallPiece]:
        if self._split is None:
            return [CallPiece(0, args, kwargs)]
        return list(self._split(args, kwargs))

    def combine(self, results: list) -> Any:
        if self._combine is None:
            return results
        return self._combine(results)

    def forward_args(self, result: Any, args: tuple, kwargs: dict) -> tuple[tuple, dict]:
        if self._forward_args is None:
            return (result,), {}
        return self._forward_args(result, args, kwargs)

    def merge_pieces(self, pieces: Sequence[CallPiece]) -> CallPiece:
        if self._merge_pieces is None:
            raise AdviceError(
                "this splitter does not support piece merging "
                "(communication packing needs merge_pieces)"
            )
        return self._merge_pieces(pieces)


class ResultCollector:
    """Gather point for ``expected`` deposits, in deposit order.

    A worker that raises instead of depositing reports through
    :meth:`fail`: the first failure latches, wakes every waiter, and
    :meth:`wait` re-raises the original exception — so a caller blocked
    with no timeout fails fast with the worker's traceback instead of
    hanging on a deposit that will never come.

    Lock ordering: the failure latch, the item list, and :meth:`wait`'s
    verdict are all resolved under the one collector lock.  A timed
    ``wait`` that races a concurrent :meth:`fail` therefore reports the
    latched failure — never a bare ``TimeoutError`` and never a partial
    result list — and a straggler :meth:`deposit` arriving after the
    latch is dropped instead of completing a call that already failed.

    Retry/re-dispatch (:meth:`arm_retry`): with a
    :class:`~repro.faults.RetryPolicy` armed and a ``redispatch``
    callable installed, a *keyed* :meth:`fail` does not latch — it
    charges the piece's attempt ledger and hands the piece back for
    re-dispatch, latching the piece's ORIGINAL failure only once its
    attempts are exhausted.  Keyed deposits deduplicate, so a dropped
    reply whose work actually completed (and deposits late) cannot
    double-count against a retry's deposit — exactly one result per
    piece, whatever the interleaving.
    """

    def __init__(self, expected: int, backend: Any = None):
        backend = backend if backend is not None else current_backend()
        self.expected = expected
        self._items: list[Any] = []
        self._failure: BaseException | None = None
        self._lock = backend.make_lock(name="collector.lock")
        self._done = backend.make_event(name="collector.done")
        #: recovery plane (absent unless arm_retry is called)
        self.retry: Any = None
        self.redispatch: Callable[[CallPiece], Any] | None = None
        #: re-dispatches performed on behalf of this call
        self.retries = 0
        #: keys already holding a deposited result (dedup)
        self._seen: set = set()
        #: key -> failed attempts so far
        self._attempts: dict = {}
        #: key -> first failure (the one that latches on exhaustion)
        self._first_failure: dict = {}
        if expected == 0:
            self._done.set()

    def arm_retry(
        self,
        policy: Any,
        redispatch: Callable[[CallPiece], Any] | None = None,
    ) -> None:
        """Install the call's retry policy (and optionally the
        re-dispatch hook — strategies that recover by re-feeding, like
        the pipeline, install theirs separately before dispatching)."""
        self.retry = policy
        if redispatch is not None:
            self.redispatch = redispatch

    @property
    def failed(self) -> bool:
        """Whether a failure has latched (the call is lost)."""
        return self._failure is not None

    def deposit(self, item: Any, key: Any = None) -> None:
        with self._lock:
            if self._failure is not None:
                return  # the call already failed: drop the late deposit
            if key is not None:
                if key in self._seen:
                    return  # duplicate delivery (retry after a late reply)
                self._seen.add(key)
            self._items.append(item)
            complete = len(self._items) >= self.expected
        if complete:
            self._done.set()

    def _latch(self, exc: BaseException) -> None:
        with self._lock:
            if self._failure is None:
                self._failure = exc
        self._done.set()

    def fail(
        self,
        exc: BaseException,
        piece: CallPiece | None = None,
        key: Any = None,
    ) -> None:
        """Latch a worker-side failure and release every waiter — unless
        a retry policy is armed, the failure names its ``piece``, and
        the piece has attempts left, in which case the piece is handed
        back to ``redispatch`` instead.  Exhausted pieces latch their
        FIRST recorded failure (the original traceback), not the last."""
        retry = self.retry
        if (
            retry is None
            or piece is None
            or self.redispatch is None
            or not retry.retryable(exc)
        ):
            self._latch(exc)
            return
        if key is None:
            key = piece.index
        with self._lock:
            if self._failure is not None:
                return
            if key in self._seen:
                return  # a result for this piece already landed
            failures = self._attempts.get(key, 0) + 1
            self._attempts[key] = failures
            self._first_failure.setdefault(key, exc)
            exhausted = failures >= retry.max_attempts
            original = self._first_failure[key]
            if not exhausted:
                self.retries += 1
        if exhausted:
            self._latch(original)
            return
        try:
            retry.pause(failures)
            self.redispatch(piece)
        except BaseException as redispatch_exc:  # noqa: BLE001 - must latch
            self._latch(redispatch_exc)

    def wait(self, timeout: float | None = None) -> list[Any]:
        finished = self._done.wait(timeout)
        # verdict under the lock: a fail() racing the wakeup (or the
        # timeout) must win over both the timeout report and the
        # item snapshot — the old unlocked check-then-read could hand
        # back partial results a latched failure had already disowned
        with self._lock:
            if self._failure is not None:
                raise self._failure
            if not finished and len(self._items) < self.expected:
                raise TimeoutError(
                    f"collector got {len(self._items)}/{self.expected} results"
                )
            return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


class DispatchContext:
    """Per-call dispatch ticket: everything ONE in-flight split owns.

    A deployed partition aspect holds only immutable topology (workers,
    stages, ``next`` pointers).  Each intercepted call gets its own
    ticket instead of parking state on the aspect, which is what lets a
    single deployed stack serve many overlapped ``submit()``s:

    * ``collector`` — the call's own :class:`ResultCollector` (present
      when the strategy gathers out-of-band deposits, i.e. the pipeline
      tail; strategies that gather via futures carry no collector);
    * piece accounting — ``pieces`` dispatched and item-granular
      ``items`` (packs spread), plus the latched failure;
    * ``hops`` — the forwarding cursor: inter-stage forwards taken on
      behalf of this call (pipeline) or exchange phases driven
      (heartbeat);
    * admission state — an optional :class:`~repro.runtime.admission.Deadline`
      adopted from the submission's admission slot, the ``cancelled``
      latch (deadline expiry or shed), and the lightweight ``spans``
      timeline (split → piece dispatch → merge) that
      ``ParallelApp.trace`` exports.

    The ticket is made *ambient* (:mod:`repro.runtime.dispatch`) for the
    duration of the call and follows it across spawned activities and
    the middleware request path, so forwarding advice running threads or
    hops away still deposits into the originating call's collector.
    Cancellation is cooperative: skeletons call :meth:`check_deadline`
    at dispatch boundaries and drop the call's remaining work when the
    ticket is cancelled, while the deployed workers keep serving every
    other call.
    """

    #: most spans retained per ticket (newest win — a ring, not a cap)
    SPAN_LIMIT = 256

    __slots__ = (
        "context_id",
        "name",
        "collector",
        "pieces",
        "items",
        "hops",
        "remote_dispatches",
        "deadline",
        "retry_policy",
        "retries",
        "cancelled",
        "cancel_cause",
        "_cancel_hooks",
        "spans",
        "_clock",
        "_lock",
        "__weakref__",
    )

    def __init__(
        self,
        name: str = "dispatch",
        expected: int | None = None,
        backend: Any = None,
    ):
        backend = backend if backend is not None else current_backend()
        self.context_id = next_dispatch_id()
        self.name = name
        self.collector = (
            ResultCollector(expected, backend) if expected is not None else None
        )
        self.pieces = 0
        self.items = 0
        self.hops = 0
        #: servant-side executions the middlewares attributed to this call
        self.remote_dispatches = 0
        #: per-call deadline (adopted from the admission slot, if any)
        self.deadline = None
        #: per-call retry policy (adopted from the admission slot)
        self.retry_policy = None
        #: piece re-dispatches performed on behalf of this call
        self.retries = 0
        self.cancelled = False
        self.cancel_cause: BaseException | None = None
        #: callbacks fired once on cancellation — the asyncio backend
        #: registers one per in-flight loop task so a shed/expired
        #: ticket cancels its awaits mid-flight instead of waiting for
        #: the next cooperative check_deadline boundary
        self._cancel_hooks: list[Callable[[BaseException], Any]] = []
        #: span timeline: {"name", "start", "end"} dicts on the
        #: backend's clock (end == start for point events).  A bounded
        #: ring — a million-beat heartbeat keeps its newest spans, the
        #: ticket does not accumulate per-iteration state (matching the
        #: skeletons' own last-combined-only discipline)
        self.spans: "deque[dict]" = deque(maxlen=self.SPAN_LIMIT)
        self._clock = backend.now
        #: one call's pieces progress on many activities at once — the
        #: lock keeps the ticket's counters exact (never held across a
        #: blocking operation)
        self._lock = threading.Lock()
        register_dispatch(self)

    # -- piece accounting ---------------------------------------------------

    def record(self, piece: CallPiece) -> CallPiece:
        """Account one dispatched piece (a pack counts once per item)."""
        with self._lock:
            self.pieces += 1
            self.items += len(getattr(piece, "items", ())) or 1
        return piece

    def record_pack(self, count: int) -> None:
        """Account one routed pack of ``count`` items."""
        with self._lock:
            self.pieces += 1
            self.items += count

    def advance(self, hops: int = 1) -> None:
        """Move the forwarding cursor: ``hops`` inter-stage forwards (or
        exchange phases) were taken on behalf of this call."""
        with self._lock:
            self.hops += hops

    def attribute_remote(self) -> None:
        """Count one servant-side execution performed for this call
        (called by the middlewares after resolving the wire ticket id)."""
        with self._lock:
            self.remote_dispatches += 1

    # -- admission: deadline, cancellation, spans ---------------------------

    def adopt_deadline(self, deadline: Any) -> None:
        """Take on the submission's deadline (set by the admission slot
        at attach time; a no-op for deadline-less submissions)."""
        if deadline is not None:
            self.deadline = deadline

    def adopt_retry(self, policy: Any) -> None:
        """Take on the submission's retry policy (set by the admission
        slot at attach time) and arm the collector with it, so keyed
        failures re-dispatch instead of latching."""
        if policy is None:
            return
        self.retry_policy = policy
        if self.collector is not None:
            self.collector.arm_retry(policy)

    def record_retry(self, piece: CallPiece, exc: BaseException, attempt: int) -> None:
        """Account one piece re-dispatch on the ticket (counter + a span
        timeline marker naming the piece, the attempt and the cause)."""
        with self._lock:
            self.retries += 1
        self.mark(
            f"retry[piece={getattr(piece, 'index', None)} "
            f"attempt={attempt} cause={type(exc).__name__}]"
        )

    def cancel(self, exc: BaseException) -> None:
        """Cancel this call: latch the cause, mark the span timeline,
        fire the registered cancel hooks (in-flight loop tasks), and
        fail the collector so any gather-side waiter unwinds with
        ``exc`` instead of blocking on deposits that will never count.
        Idempotent — the first cancellation wins."""
        with self._lock:
            if self.cancelled:
                return
            self.cancelled = True
            self.cancel_cause = exc
            hooks = list(self._cancel_hooks)
            self._cancel_hooks.clear()
            now = self._clock()
            self.spans.append({"name": "cancelled", "start": now, "end": now})
        for hook in hooks:
            try:
                hook(exc)
            except Exception:  # pragma: no cover - hooks must not mask
                pass
        if self.collector is not None:
            self.collector.fail(exc)

    def add_cancel_hook(
        self, hook: Callable[[BaseException], Any]
    ) -> Callable[[BaseException], Any]:
        """Register a callback fired (once) when the ticket is
        cancelled; fires immediately if it already was.  Returns the
        hook as its removal token for :meth:`remove_cancel_hook`."""
        with self._lock:
            if not self.cancelled:
                self._cancel_hooks.append(hook)
                return hook
            cause = self.cancel_cause
        try:
            hook(cause if cause is not None else DeadlineExceeded("cancelled"))
        except Exception:  # pragma: no cover - hooks must not mask
            pass
        return hook

    def remove_cancel_hook(self, hook: Callable[[BaseException], Any]) -> None:
        """Deregister a cancel hook (idempotent — a hook already fired
        or never added is simply ignored)."""
        with self._lock:
            try:
                self._cancel_hooks.remove(hook)
            except ValueError:
                pass

    def expire(self, where: str = "") -> BaseException:
        """Cancel this call with a :class:`DeadlineExceeded` carrying
        the ticket's trace; returns the exception to raise."""
        budget = self.deadline.budget if self.deadline is not None else None
        suffix = f" {where}" if where else ""
        exc = DeadlineExceeded(
            f"{self.name}#{self.context_id}: deadline"
            f"{f' of {budget}s' if budget is not None else ''} "
            f"exceeded{suffix}"
        )
        self.cancel(exc)
        # snapshot AFTER cancelling so the trace shows the
        # cancellation marker at the end of the timeline
        exc.trace = self.trace_snapshot()
        return exc

    def check_deadline(self, where: str = "") -> None:
        """Cooperative cancellation point, called by the skeletons at
        every dispatch boundary: raises the cancellation cause when the
        ticket was cancelled (shed), or expires the ticket when its
        deadline has passed."""
        if self.cancelled and self.cancel_cause is not None:
            raise self.cancel_cause
        if self.deadline is not None and self.deadline.expired:
            raise self.expire(where)

    @contextmanager
    def span(self, name: str) -> Iterator[dict]:
        """Record one timed span of the call's timeline (split, piece
        dispatch, merge...) on the backend's clock."""
        entry = {"name": name, "start": self._clock(), "end": None}
        with self._lock:
            self.spans.append(entry)
        try:
            yield entry
        finally:
            entry["end"] = self._clock()

    def mark(self, name: str) -> None:
        """Record one point event (a forwarding hop, an exchange phase)
        on the call's timeline."""
        now = self._clock()
        with self._lock:
            self.spans.append({"name": name, "start": now, "end": now})

    def trace_snapshot(self) -> dict:
        """An immutable copy of the ticket's timeline and accounting —
        what ``ParallelApp.trace`` returns and what
        :class:`~repro.errors.DeadlineExceeded` carries."""
        with self._lock:
            return {
                "context_id": self.context_id,
                "name": self.name,
                "pieces": self.pieces,
                "items": self.items,
                "hops": self.hops,
                "remote_dispatches": self.remote_dispatches,
                "retries": self.retries,
                "cancelled": self.cancelled,
                "deadline": (
                    None if self.deadline is None else self.deadline.budget
                ),
                "spans": [dict(span) for span in self.spans],
            }

    # -- collector face -----------------------------------------------------

    def deposit(self, item: Any, key: Any = None) -> None:
        self.collector.deposit(item, key=key)

    def fail(
        self,
        exc: BaseException,
        piece: CallPiece | None = None,
        key: Any = None,
    ) -> None:
        """Latch a worker failure so waiters fail fast (no-op without a
        collector: strategies that gather via futures propagate the
        exception through the future instead).  Naming the failing
        ``piece`` routes the failure through the collector's retry
        plane when one is armed."""
        if self.collector is not None:
            self.collector.fail(exc, piece=piece, key=key)

    def wait(self, timeout: float | None = None) -> list[Any]:
        return self.collector.wait(timeout)

    def gather(self) -> list[Any]:
        """Deadline-aware collector wait: bounds the block by the
        ticket's remaining budget and converts a timeout into the
        ticket's expiry (cancelling the call so in-flight forwards drop
        their pieces at the next boundary)."""
        if self.deadline is None:
            return self.collector.wait()
        try:
            return self.collector.wait(self.deadline.remaining())
        except TimeoutError:
            raise self.expire("gathering piece results") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DispatchContext #{self.context_id} {self.name} "
            f"pieces={self.pieces} hops={self.hops}>"
        )


class DispatchContextOwner:
    """Mixin for aspects that open a :class:`DispatchContext` per
    intercepted call.

    Keeps the live-ticket table (observability: ``contexts`` maps
    context id → in-flight ticket) and append-only aggregates
    (``dispatches`` served, ``peak_in_flight`` overlap high-water mark)
    — the only state left on the aspect, none of it coordinating.
    """

    #: completed-ticket trace snapshots retained for ``trace_of``
    TRACE_HISTORY = 64

    def _init_dispatch_state(self) -> None:
        #: live in-flight tickets, context_id -> DispatchContext
        self.contexts: dict[int, DispatchContext] = {}
        #: total split calls served since deployment
        self.dispatches = 0
        #: most tickets ever live at once (overlap high-water mark)
        self.peak_in_flight = 0
        #: bounded ring of completed tickets' trace snapshots, newest
        #: last — ``ParallelApp.trace`` resolves retired ticket ids here
        self.trace_log: deque[dict] = deque(maxlen=self.TRACE_HISTORY)
        #: guards the table and counters above — overlapped submits hit
        #: them from many activities; held only for the mutation itself,
        #: never across a blocking operation (safe on both backends: sim
        #: processes are OS threads)
        self._dispatch_lock = threading.Lock()

    @contextmanager
    def dispatch_scope(
        self,
        name: str,
        expected: int | None = None,
        backend: Any = None,
    ) -> Iterator[DispatchContext]:
        """Open a per-call ticket, make it ambient for the block, and
        retire it afterwards (the ``finally`` runs even when the call
        fails, so the live table never leaks tickets).

        When the submission carries an ambient admission envelope
        (:func:`repro.runtime.admission.current_envelope`), the fresh
        ticket is attached to it: the ticket adopts the submission's
        deadline and a shed/expired slot cancels the ticket — closing
        the race where a call is shed before its ticket even opens.
        """
        ctx = DispatchContext(name, expected=expected, backend=backend)
        envelope = current_envelope()
        if envelope is not None and envelope.ticket_id is None:
            envelope.attach(ctx)
        with self._dispatch_lock:
            self.contexts[ctx.context_id] = ctx
            self.dispatches += 1
            self.peak_in_flight = max(self.peak_in_flight, len(self.contexts))
        try:
            with use_dispatch(ctx):
                yield ctx
        finally:
            snapshot = ctx.trace_snapshot()
            with self._dispatch_lock:
                self.contexts.pop(ctx.context_id, None)
                self.trace_log.append(snapshot)

    def trace_of(self, context_id: int) -> dict | None:
        """The span timeline of one ticket — live tickets are
        snapshotted on the fly, retired ones come from the bounded
        history (``None`` when the id is unknown or already evicted)."""
        live = self.contexts.get(context_id)
        if live is not None:
            return live.trace_snapshot()
        with self._dispatch_lock:
            for snapshot in reversed(self.trace_log):
                if snapshot["context_id"] == context_id:
                    return snapshot
        return None

    def trace_history(self) -> list[dict]:
        """Recent ticket timelines, oldest first: the retired snapshots
        still in the bounded history followed by every live ticket."""
        with self._dispatch_lock:
            retired = list(self.trace_log)
            live = [ctx.trace_snapshot() for ctx in self.contexts.values()]
        return retired + live

    @property
    def in_flight(self) -> int:
        """Live per-call tickets (calls being served right now)."""
        return len(self.contexts)

    @property
    def split_calls(self) -> int:
        """Legacy counter name: split calls served (== ``dispatches``)."""
        return self.dispatches


class PartitionAspect(DispatchContextOwner, ParallelAspect):
    """Common state for partition strategies.

    Abstract pointcuts every strategy binds (by constructor keyword or in
    a subclass):

    * ``creation`` — the core-functionality construction to duplicate,
      e.g. ``initialization(PrimeFilter.new(..))``;
    * ``work`` — the core call(s) to split, e.g.
      ``call(PrimeFilter.filter(..))``.
    """

    concern = Concern.PARTITION
    precedence = LAYER["partition"]

    #: does this aspect implement top-level pack routing (a
    #: ``route_pack`` branch for pack-level BatchJoinPoints)?  This
    #: class attribute is the SINGLE source of truth for the
    #: capability: registered strategy builders expose their aspect via
    #: a ``coordinator_class`` attribute, and ``StackSpec`` reads the
    #: flags through it (``pack_routable`` / ``oneway_routable``).
    routes_packs: bool = False
    #: can this aspect's work call be fire-and-forget?  Only sound when
    #: pack routing is pure scatter — no reply gathering, no
    #: inter-worker forwarding (farms yes; pipeline routes packs but
    #: needs every hop's reply, so it stays False).
    oneway_packs: bool = False

    creation = abstract_pointcut("construction joinpoint to duplicate")
    work = abstract_pointcut("method call(s) to split")

    def __init__(
        self,
        splitter: WorkSplitter,
        creation: str | None = None,
        work: str | None = None,
    ):
        self.splitter = splitter
        if creation is not None:
            self.creation = pointcut(creation)
        if work is not None:
            self.work = pointcut(work)
        #: id(object) -> index of the aspect-managed duplicates
        self.managed: dict[int, int] = {}
        #: duplicates in creation order (index order)
        self.instances: list[Any] = []
        self._init_dispatch_state()

    # -- shared duplication bookkeeping ------------------------------------

    def build_duplicates(self, jp) -> list[Any]:
        """Construct every duplicate through ONE batched initialization
        joinpoint pass.

        The splitter's per-index constructor arguments are collected into
        a :class:`~repro.aop.plan.CtorPack` and shipped through a single
        ``proceed`` — the remaining initialization chain (and, under
        distribution, the create-remote advice) runs once per duplicate
        *set* instead of once per worker, while still building (and
        exporting) one instance per argset.  Returns the instances in
        index order, already remembered as aspect-managed.
        """
        self.reset_instances()
        splitter = self.splitter
        argsets = [
            splitter.ctor_args(jp.args, jp.kwargs, index)
            for index in range(splitter.duplicates)
        ]
        instances = list(jp.proceed(CtorPack(argsets)))
        for index, obj in enumerate(instances):
            self.remember(obj, index)
        return instances

    def remember(self, obj: Any, index: int) -> None:
        self.managed[id(obj)] = index
        self.instances.append(obj)

    def is_managed(self, obj: Any) -> bool:
        return id(obj) in self.managed

    def snapshot(self, obj: Any, build: Callable[[Any], Any] | None = None) -> Any:
        """A detached local copy of a managed instance — the read-replica
        source used by the optimisation layer
        (:class:`~repro.parallel.optimisation.replication.ReadReplicaAspect`).

        ``build`` converts the live instance into its replica; the
        default is :func:`copy.deepcopy`.  The copy is taken with weaver
        construction bypassed so replicating a woven servant does not
        re-enter the partition's own creation advice.
        """
        if not self.is_managed(obj):
            raise AdviceError(
                f"{type(obj).__name__} instance is not managed by this partition"
            )
        maker = build if build is not None else copy.deepcopy
        with bypassing_construction():
            return maker(obj)

    def reset_instances(self) -> None:
        self.managed.clear()
        self.instances.clear()
