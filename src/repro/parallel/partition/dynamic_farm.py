"""Dynamic (demand-driven) farm.

Section 6: "We also present results using a dynamic farm parallelisation
... The dynamic farm is an example where we were not able yet to separate
partition from concurrency issues."  Faithfully, this module merges both
concerns: it spawns one dispatcher activity per worker, and each
dispatcher *pulls* the next piece only after finishing the previous one —
demand-driven load balancing instead of the static round-robin
allocation.

Because the module owns its concurrency, it must NOT be combined with a
separate asynchronous-invocation aspect (the synchronisation aspect is
also unnecessary: one dispatcher per worker means no concurrent calls on
a worker).  :func:`dynamic_farm_module` documents this by carrying the
CONCURRENCY concern alongside PARTITION.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.aop import around
from repro.aop.plan import BatchJoinPoint, batched_entry
from repro.api.registry import register_strategy
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.partition.base import (
    PartitionAspect,
    WorkSplitter,
    dispatch_piece,
    piece_results,
)
from repro.runtime.backend import current_backend

__all__ = ["DynamicFarmAspect", "dynamic_farm_module"]


class DynamicFarmAspect(PartitionAspect):
    """Worker-pull farm: merged partition + concurrency."""

    #: concerns covered by this single module (see module docstring)
    concern = Concern.PARTITION

    routes_packs = True
    #: like the static farm: pack routing is pure scatter, oneway is sound
    oneway_packs = True

    def __init__(self, splitter: WorkSplitter, creation=None, work=None):
        super().__init__(splitter, creation, work)
        self.workers: list[Any] = []
        #: pieces served per worker index (load-balance observability)
        self.served: dict[int, int] = {}
        self._internal = threading.local()

    # -- duplication: same broadcast as the static farm ---------------------

    @around("creation")
    def duplicate(self, jp):
        if self.passthrough(jp) or jp.from_advice:
            return jp.proceed()
        # one batched initialization joinpoint builds the whole worker set
        self.workers = self.build_duplicates(jp)
        self.served = {i: 0 for i in range(len(self.workers))}
        return self.workers[0]

    # -- demand-driven dispatch ---------------------------------------------

    @around("work")
    def dispatch(self, jp):
        if self.passthrough(jp) or getattr(self._internal, "active", False):
            return jp.proceed()
        if jp.from_advice:
            return jp.proceed()
        if not self.workers:
            return jp.proceed()
        if isinstance(jp, BatchJoinPoint):
            return self.route_pack(jp)
        backend = current_backend()
        with self.dispatch_scope(f"dynamic-farm.{jp.name}", backend=backend) as ctx:
            pieces = self.splitter.split(jp.args, jp.kwargs)
            queue = backend.make_queue(name="dynfarm.work")
            for piece in pieces:
                queue.put(ctx.record(piece))
            results: list[Any] = [None] * len(pieces)
            method_name = jp.name

            def worker_loop(worker: Any, index: int) -> None:
                # Calls from here must skip this advice but still traverse
                # synchronisation/distribution — flagged per-thread.  Each
                # pulled piece re-enters the (remaining) chain through the
                # worker's compiled plan entry (packs go through the compiled
                # batched entry — one advice pass per pack), re-fetched per
                # piece so an aspect (un)plugged mid-run applies to the
                # remaining work.
                self._internal.active = True
                try:
                    while True:
                        ok, piece = queue.try_get()
                        if not ok:
                            return
                        results[piece.index] = dispatch_piece(
                            worker, method_name, piece
                        )
                        # ledger unit is ITEMS (a k-item pack counts k),
                        # matching route_pack's charge so the demand-aware
                        # pack steering compares like with like
                        with self._dispatch_lock:
                            self.served[index] += (
                                len(getattr(piece, "items", ())) or 1
                            )
                except BaseException as exc:
                    ctx.fail(exc)  # no collector today: latch is a no-op,
                    raise  # join() below re-raises the original
                finally:
                    self._internal.active = False

            handles = [
                backend.spawn(
                    lambda w=worker, i=index: worker_loop(w, i),
                    name=f"dynfarm.worker{index}",
                )
                for index, worker in enumerate(self.workers)
            ]
            failure = None
            for handle in handles:
                try:
                    handle.join()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    failure = failure if failure is not None else exc
            if failure is not None:
                raise failure
            flat: list[Any] = []
            for piece in pieces:
                flat.extend(piece_results(piece, results[piece.index]))
        return self.splitter.combine(flat)

    def route_pack(self, jp: BatchJoinPoint) -> Any:
        """Top-level pack routing, demand-aware: one whole submitted pack
        to the worker that has served the fewest pieces so far, through
        the compiled batched entry (one advice pass, one message per
        pack).  The ledger keeps steering later packs away from busy
        workers — the demand-driven idea at pack granularity."""
        pieces = tuple(jp.args[0])
        with self._dispatch_lock:
            # pick-and-charge atomically so overlapped packs spread out
            index = min(self.served, key=lambda i: self.served[i])
            self.served[index] += len(pieces)
        worker = self.workers[index]
        with self.dispatch_scope(
            f"dynamic-farm.pack.{jp.name}", backend=current_backend()
        ) as ctx:
            ctx.record_pack(len(pieces))
            return batched_entry(worker, jp.name)(pieces)


@register_strategy("dynamic-farm")
def dynamic_farm_module(
    splitter: WorkSplitter,
    creation: str,
    work: str,
    name: str = "dynamic-farm",
) -> ParallelModule:
    """Build the merged partition+concurrency dynamic-farm module."""
    aspect = DynamicFarmAspect(splitter, creation=creation, work=work)
    module = ParallelModule(name, Concern.PARTITION, [aspect])
    module.coordinator = aspect  # type: ignore[attr-defined]
    module.provides_concurrency = True  # type: ignore[attr-defined]
    return module


#: StackSpec reads the pack/oneway capability flags off this class
dynamic_farm_module.coordinator_class = DynamicFarmAspect  # type: ignore[attr-defined]
