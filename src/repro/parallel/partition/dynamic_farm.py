"""Dynamic (demand-driven) farm.

Section 6: "We also present results using a dynamic farm parallelisation
... The dynamic farm is an example where we were not able yet to separate
partition from concurrency issues."  Faithfully, this module merges both
concerns: it spawns one dispatcher activity per worker, and each
dispatcher *pulls* the next piece only after finishing the previous one —
demand-driven load balancing instead of the static round-robin
allocation.

Because the module owns its concurrency, it must NOT be combined with a
separate asynchronous-invocation aspect (the synchronisation aspect is
also unnecessary: one dispatcher per worker means no concurrent calls on
a worker).  :func:`dynamic_farm_module` documents this by carrying the
CONCURRENCY concern alongside PARTITION.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.aop import around
from repro.aop.plan import BatchJoinPoint
from repro.api.registry import register_strategy
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.concurrency.asynchronous import PooledSpawner
from repro.parallel.partition.base import (
    PackedPiece,
    PartitionAspect,
    WorkSplitter,
    dispatch_with_retry,
    piece_results,
)
from repro.runtime.backend import current_backend

__all__ = ["DynamicFarmAspect", "dynamic_farm_module"]


class DynamicFarmAspect(PartitionAspect):
    """Worker-pull farm: merged partition + concurrency.

    By default the deployment owns a **resident worker pool**: one
    long-lived dispatcher activity per worker instance (a *pinned*
    :class:`~repro.parallel.concurrency.asynchronous.PooledSpawner`),
    spawned once and fed per call through the call's own piece queue.
    Overlapped submissions therefore amortise the spawn cost the
    original formulation paid on every split (one fresh activity per
    worker per call) — the respawn behaviour is kept behind
    ``resident_pool=False`` for comparison (the
    resident-vs-respawn bench pair in ``BENCH_dispatch.json``).
    """

    #: concerns covered by this single module (see module docstring)
    concern = Concern.PARTITION

    routes_packs = True
    #: like the static farm: pack routing is pure scatter, oneway is sound
    oneway_packs = True

    def __init__(
        self,
        splitter: WorkSplitter,
        creation=None,
        work=None,
        resident_pool: bool = True,
    ):
        super().__init__(splitter, creation, work)
        self.workers: list[Any] = []
        #: pieces served per worker index (load-balance observability)
        self.served: dict[int, int] = {}
        #: amortise spawns: one resident dispatcher activity per worker
        self.resident_pool = resident_pool
        self._pool: PooledSpawner | None = None
        self._internal = threading.local()

    # -- duplication: same broadcast as the static farm ---------------------

    @around("creation")
    def duplicate(self, jp):
        if self.passthrough(jp) or jp.from_advice:
            return jp.proceed()
        # one batched initialization joinpoint builds the whole worker set
        self.workers = self.build_duplicates(jp)
        self.served = {i: 0 for i in range(len(self.workers))}
        if self._pool is not None:  # re-duplication: retire the old pool
            self._pool.stop()
            self._pool = None
        if self.resident_pool:
            # pinned: resident activity i always drives worker i; the
            # activities themselves start lazily on the first dispatch
            # (binding to whatever backend that call runs on)
            self._pool = PooledSpawner(len(self.workers), pinned=True)
        return self.workers[0]

    def on_undeploy(self) -> None:
        """Retire the deployment's resident dispatcher activities."""
        if self._pool is not None:
            self._pool.stop()
            self._pool = None

    # -- demand-driven dispatch ---------------------------------------------

    @around("work")
    def dispatch(self, jp):
        if self.passthrough(jp) or getattr(self._internal, "active", False):
            return jp.proceed()
        if jp.from_advice:
            return jp.proceed()
        if not self.workers:
            return jp.proceed()
        if isinstance(jp, BatchJoinPoint):
            return self.route_pack(jp)
        backend = current_backend()
        with self.dispatch_scope(f"dynamic-farm.{jp.name}", backend=backend) as ctx:
            with ctx.span("split"):
                pieces = self.splitter.split(jp.args, jp.kwargs)
            # the per-ticket queue: THIS call's pieces, pulled on demand
            # by whichever dispatcher activity frees up first
            queue = backend.make_queue(name="dynfarm.work")
            for piece in pieces:
                queue.put(ctx.record(piece))
            results: list[Any] = [None] * len(pieces)
            method_name = jp.name
            done = backend.make_event(name="dynfarm.done")
            state: dict[str, Any] = {
                "remaining": len(self.workers),
                "failure": None,
            }
            state_lock = threading.Lock()

            workers = self.workers

            def pick_from(index: int):
                # attempt 0 stays on the pulling dispatcher's own worker;
                # retries rotate to the neighbours (a killed worker's
                # piece lands on a healthy one)
                def pick(attempt: int):
                    pos = (index + attempt) % len(workers)
                    return workers[pos], pos

                return pick

            def worker_loop(worker: Any, index: int) -> None:
                # Calls from here must skip this advice but still traverse
                # synchronisation/distribution — flagged per-thread.  Each
                # pulled piece re-enters the (remaining) chain through the
                # worker's compiled plan entry (packs go through the compiled
                # batched entry — one advice pass per pack), re-fetched per
                # piece so an aspect (un)plugged mid-run applies to the
                # remaining work.
                self._internal.active = True
                try:
                    # a cancelled ticket (shed / deadline expired) drops
                    # its remaining queued pieces: the dispatcher goes
                    # straight back to serving other calls
                    while not ctx.cancelled:
                        ok, piece = queue.try_get()
                        if not ok:
                            break
                        results[piece.index] = dispatch_with_retry(
                            ctx, pick_from(index), method_name, piece
                        )
                        # ledger unit is ITEMS (a k-item pack counts k),
                        # matching route_pack's charge so the demand-aware
                        # pack steering compares like with like
                        with self._dispatch_lock:
                            self.served[index] += (
                                len(getattr(piece, "items", ())) or 1
                            )
                except BaseException as exc:  # noqa: BLE001 - waiter re-raises
                    ctx.fail(exc)
                    with state_lock:
                        if state["failure"] is None:
                            state["failure"] = exc
                    # BaseExceptions (sim shutdown's ProcessKilled,
                    # KeyboardInterrupt) must keep unwinding the hosting
                    # activity — only plain Exceptions are contained so
                    # a resident dispatcher survives a bad piece
                    if not isinstance(exc, Exception):
                        raise
                finally:
                    self._internal.active = False
                    with state_lock:
                        state["remaining"] -= 1
                        drained = state["remaining"] == 0
                    if drained:
                        done.set()

            with ctx.span("dispatch"):
                pool = self._pool
                if pool is not None:
                    # resident mode: the per-call drain reaches the
                    # long-lived dispatcher pinned to each worker — no
                    # spawn on the hot path, overlapped calls amortise
                    # the activities spawned once per deployment
                    for index, worker in enumerate(self.workers):
                        pool.spawn(
                            backend,
                            lambda w=worker, i=index: worker_loop(w, i),
                            index=index,
                        )
                else:
                    # the paper's literal formulation: one fresh
                    # dispatcher activity per worker per split call
                    for index, worker in enumerate(self.workers):
                        backend.spawn(
                            lambda w=worker, i=index: worker_loop(w, i),
                            name=f"dynfarm.worker{index}",
                        )
                self._await_drained(done, ctx)
            if state["failure"] is not None:
                raise state["failure"]
            ctx.check_deadline("gathering dynamic-farm results")
            with ctx.span("merge"):
                flat: list[Any] = []
                for piece in pieces:
                    flat.extend(piece_results(piece, results[piece.index]))
                combined = self.splitter.combine(flat)
        return combined

    @staticmethod
    def _await_drained(done: Any, ctx: Any) -> None:
        """Deadline-aware wait for the call's queue to drain: a timeout
        expires the ticket (cancelling the drain loops at their next
        pull) and raises DeadlineExceeded with the ticket's trace."""
        if ctx.deadline is None:
            done.wait(None)
            return
        if not done.wait(max(ctx.deadline.remaining(), 0.0)):
            raise ctx.expire("draining the work queue")

    def route_pack(self, jp: BatchJoinPoint) -> Any:
        """Top-level pack routing, demand-aware: one whole submitted pack
        to the worker that has served the fewest pieces so far, through
        the compiled batched entry (one advice pass, one message per
        pack).  The ledger keeps steering later packs away from busy
        workers — the demand-driven idea at pack granularity."""
        pieces = tuple(jp.args[0])
        with self._dispatch_lock:
            # pick-and-charge atomically so overlapped packs spread out
            index = min(self.served, key=lambda i: self.served[i])
            self.served[index] += len(pieces)
        workers = self.workers

        def pick(attempt: int):
            pos = (index + attempt) % len(workers)
            return workers[pos], pos

        with self.dispatch_scope(
            f"dynamic-farm.pack.{jp.name}", backend=current_backend()
        ) as ctx:
            ctx.record_pack(len(pieces))
            with ctx.span("dispatch"):
                ctx.check_deadline("routing the pack")
                return dispatch_with_retry(
                    ctx, pick, jp.name, PackedPiece(index, pieces)
                )


@register_strategy("dynamic-farm")
def dynamic_farm_module(
    splitter: WorkSplitter,
    creation: str,
    work: str,
    name: str = "dynamic-farm",
    resident_pool: bool = True,
) -> ParallelModule:
    """Build the merged partition+concurrency dynamic-farm module.

    ``resident_pool=False`` restores the spawn-per-split dispatchers
    (the bench pair's baseline); the default amortises dispatcher
    spawns across every call served by the deployment.
    """
    aspect = DynamicFarmAspect(
        splitter, creation=creation, work=work, resident_pool=resident_pool
    )
    module = ParallelModule(name, Concern.PARTITION, [aspect])
    module.coordinator = aspect  # type: ignore[attr-defined]
    module.provides_concurrency = True  # type: ignore[attr-defined]
    return module


#: StackSpec reads the pack/oneway capability flags off this class
dynamic_farm_module.coordinator_class = DynamicFarmAspect  # type: ignore[attr-defined]
