"""Divide-and-conquer partition.

Section 4.1: "Object duplication is specified by intercepting the
creation of objects and method split calls are specified by intercepting
method calls, but it is also possible to perform object creations when
intercepting method calls (e.g., in divide and conquer algorithms)."

This strategy does exactly that: intercepting a *call*, it creates fresh
aspect-managed workers for the sub-problems, recurses through the woven
call (so division continues until :meth:`should_divide` says stop, and
the concurrency/distribution layers see every sub-call), then merges.

Hooks (constructor arguments):

``should_divide(args, kwargs, depth)``
    Predicate deciding whether to split further (e.g. size threshold).
``divide(args, kwargs)``
    Returns the sub-problem :class:`CallPiece` list.
``merge(results)``
    Combines sub-results into the call's result.
``make_worker(prototype)``
    Builds the worker for one branch; default: a state clone of the
    receiver (an aspect-managed object, per Figure 4).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.aop import abstract_pointcut, around, pointcut
from repro.api.registry import register_strategy
from repro.errors import AdviceError
from repro.middleware.serialize import Serializer
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.parallel.partition.base import (
    CallPiece,
    DispatchContextOwner,
    dispatch_with_retry,
    piece_results,
)
from repro.runtime.dispatch import current_dispatch

__all__ = [
    "DivideAndConquerAspect",
    "divide_and_conquer_module",
    "divide_and_conquer_strategy",
]


class DivideAndConquerAspect(DispatchContextOwner, ParallelAspect):
    """Recursive call-split with per-branch worker creation.

    The top-level intercepted call opens one per-call
    :class:`~repro.parallel.partition.base.DispatchContext`; every
    recursive division (whatever activity it runs on) records its pieces
    into that originating ticket, so overlapped top-level calls keep
    fully separate accounting.

    ``routes_packs`` stays False: the work call is the recursion itself
    — a submitted pack has no per-worker routing that preserves the
    divide/merge contract, so ``app.map(pack=N)`` rejects these specs
    eagerly.
    """

    concern = Concern.PARTITION
    precedence = LAYER["partition"]
    routes_packs = False

    work = abstract_pointcut("the recursive method call")

    def __init__(
        self,
        should_divide: Callable[[tuple, dict, int], bool],
        divide: Callable[[tuple, dict], Sequence[CallPiece]],
        merge: Callable[[list], Any],
        work: str | None = None,
        make_worker: Callable[[Any], Any] | None = None,
        max_depth: int = 32,
    ):
        if max_depth < 1:
            raise AdviceError("max_depth must be >= 1")
        if work is not None:
            self.work = pointcut(work)
        self.should_divide = should_divide
        self.divide = divide
        self.merge = merge
        self.max_depth = max_depth
        self._make_worker = make_worker
        self._cloner = Serializer(copy=True)
        self._depth = threading.local()
        self._init_dispatch_state()
        self.divisions = 0
        self.workers_created = 0
        self.leaves = 0
        #: branch workers in creation order (observability; survives
        #: undeploy so post-run inspection works)
        self.branches: list[Any] = []

    # -- worker creation at call interception --------------------------------

    def make_worker(self, prototype: Any) -> Any:
        with self._dispatch_lock:  # overlapped calls create in parallel
            self.workers_created += 1
        if self._make_worker is not None:
            return self._make_worker(prototype)
        return self._cloner.clone(prototype)

    # -- the advice -----------------------------------------------------------

    @around("work")
    def conquer(self, jp):
        if self.passthrough(jp):
            return jp.proceed()
        depth = getattr(self._depth, "value", 0)
        if depth >= self.max_depth or not self.should_divide(
            jp.args, jp.kwargs, depth
        ):
            with self._dispatch_lock:
                self.leaves += 1
            return jp.proceed()
        ambient = current_dispatch()
        reentered = ambient is not None and ambient.context_id in self.contexts
        if depth == 0 and not reentered:
            # the top-level call owns the ticket; recursive divisions
            # (below, possibly on other activities whose thread-local
            # depth restarts at 0) account into it via the ambient ticket
            with self.dispatch_scope(f"divide-conquer.{jp.name}") as ctx:
                return self._divide_and_merge(jp, depth, ctx)
        return self._divide_and_merge(jp, depth, ambient)

    def _divide_and_merge(self, jp, depth: int, ctx) -> Any:
        with self._dispatch_lock:  # overlapped calls divide in parallel
            self.divisions += 1
        if ctx is not None:
            ctx.mark(f"divide[depth={depth}]")
        pieces = self.divide(jp.args, jp.kwargs)
        if len(pieces) <= 1:
            with self._dispatch_lock:
                self.leaves += 1
            return jp.proceed()
        outcomes = []
        self._depth.value = depth + 1
        try:
            for piece in pieces:
                if ctx is not None:
                    # deadline/shed boundary per branch: an expired
                    # recursion stops dividing wherever it is in the
                    # tree and unwinds through the top-level ticket
                    ctx.check_deadline("dividing sub-problems")
                    ctx.record(piece)
                worker = self.make_worker(jp.target)
                self.remember_branch(worker)

                def pick(attempt: int, first=worker, proto=jp.target):
                    # attempt 0 uses the branch clone just built; a retry
                    # abandons the (possibly poisoned) clone and recurses
                    # on a FRESH clone of the prototype
                    if attempt == 0:
                        return first, None
                    fresh = self.make_worker(proto)
                    self.remember_branch(fresh)
                    return fresh, None

                # recurse through the branch worker's compiled plan entry;
                # a divide() returning PackedPiece groups recurses through
                # the compiled batched entry (one advice pass per pack)
                outcomes.append(
                    dispatch_with_retry(ctx, pick, jp.name, piece)
                )
        except BaseException as exc:
            if ctx is not None:
                ctx.fail(exc)
            raise
        finally:
            self._depth.value = depth
        results: list = []
        for piece, outcome in zip(pieces, outcomes):
            if ctx is not None:
                ctx.check_deadline("merging sub-results")
            results.extend(piece_results(piece, outcome))
        return self.merge(results)

    # -- bookkeeping -------------------------------------------------------------

    def remember_branch(self, worker: Any) -> None:
        with self._dispatch_lock:
            self.branches.append(worker)


def divide_and_conquer_module(
    should_divide: Callable[[tuple, dict, int], bool],
    divide: Callable[[tuple, dict], Sequence[CallPiece]],
    merge: Callable[[list], Any],
    work: str,
    name: str = "divide-and-conquer",
    **kwargs: Any,
) -> ParallelModule:
    """Build the pluggable divide-and-conquer partition module."""
    aspect = DivideAndConquerAspect(
        should_divide, divide, merge, work=work, **kwargs
    )
    module = ParallelModule(name, Concern.PARTITION, [aspect])
    module.coordinator = aspect  # type: ignore[attr-defined]
    return module


@register_strategy("divide-conquer")
def divide_and_conquer_strategy(
    splitter: Any,
    creation: str,
    work: str,
    name: str = "divide-and-conquer",
    **options: Any,
) -> ParallelModule:
    """Registry face of the divide-and-conquer strategy.

    Unlike the duplication-based strategies it takes no
    :class:`~repro.parallel.partition.base.WorkSplitter` (branch workers
    are cloned at call time, not built from a creation joinpoint), so a
    ``StackSpec`` declares it with ``splitter=None`` and passes the
    recursion hooks through ``strategy_options``::

        StackSpec(
            target=Summer,
            work="total",
            strategy="divide-conquer",
            strategy_options=dict(
                should_divide=lambda args, kwargs, depth: len(args[0]) > 4,
                divide=halve, merge=sum,
            ),
        )

    ``creation`` is accepted for registry-signature uniformity and
    ignored — there is nothing to duplicate up front.
    """
    missing = [
        hook
        for hook in ("should_divide", "divide", "merge")
        if hook not in options
    ]
    if missing:
        raise AdviceError(
            f"divide-conquer strategy needs strategy_options "
            f"{missing} (the recursion hooks)"
        )
    return divide_and_conquer_module(
        options.pop("should_divide"),
        options.pop("divide"),
        options.pop("merge"),
        work=work,
        name=name,
        **options,
    )


#: StackSpec reads capability flags off the aspect class (both pack
#: flags stay False: the work call IS the recursion) and learns from
#: ``requires_splitter`` that this strategy takes no WorkSplitter
divide_and_conquer_strategy.coordinator_class = DivideAndConquerAspect  # type: ignore[attr-defined]
divide_and_conquer_strategy.requires_splitter = False  # type: ignore[attr-defined]
