"""Pipeline partition (paper Figures 7–9).

Three cooperating pieces of advice, exactly the paper's three blocks:

1. **object duplication** — ``around(creation)`` builds the stages in
   reverse order, recording each stage's ``next`` pointer, and returns
   the first stage to the oblivious client;
2. **method-call split** — ``around(work)``, core calls only: splits the
   client's single call into pieces and feeds each piece to the first
   stage; waits for every piece to fall off the end of the pipeline and
   combines the results;
3. **call forwarding** — ``around(work)``, *all* calls: after a stage
   processes a piece, forward the (transformed) piece to the next stage;
   the last stage deposits into the collector.

Blocks 1–2 live in :class:`PipelineSplitAspect` (partition layer,
outermost); block 3 lives in :class:`PipelineForwardAspect`
(partition-forward layer) so that the concurrency aspect's spawn wraps
*between* them — Figure 11's interleaving, where forwarding happens
inside the per-call thread.  :func:`pipeline_module` packages both as one
pluggable module.

The aspects hold only the *deployed topology* (stages, ``next``
pointers).  Every split call opens its own
:class:`~repro.parallel.partition.base.DispatchContext` — the collector
the tail deposits into is the *originating call's*, found through the
ambient ticket (:mod:`repro.runtime.dispatch`) that follows each piece
across the spawned per-call activities.  A deployed pipeline therefore
serves any number of overlapped in-flight splits.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.aop import around, pointcut
from repro.aop.plan import BatchJoinPoint, batched_entry, piece_view
from repro.api.registry import register_strategy
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.parallel.concurrency.asynchronous import PooledSpawner
from repro.parallel.partition.base import (
    CallPiece,
    PackedPiece,
    PartitionAspect,
    WorkSplitter,
    _holds_awaitables,
    dispatch_piece,
    piece_key,
)
from repro.runtime.backend import current_backend
from repro.runtime.dispatch import (
    current_dispatch,
    current_piece,
    shield_dispatch,
    use_dispatch,
)

__all__ = ["PipelineSplitAspect", "PipelineForwardAspect", "pipeline_module"]


class PipelineSplitAspect(PartitionAspect):
    """Blocks 1 (duplication) and 2 (call split) of Figure 8.

    ``resident_pool=True`` feeds head pieces through long-lived pinned
    feeder activities (one per stage, a
    :class:`~repro.parallel.concurrency.asynchronous.PooledSpawner`)
    instead of feeding inline — the resident shape the fault tests kill
    and replace mid-split.  When the call's ticket carries a
    :class:`~repro.faults.RetryPolicy`, the collector's re-dispatch hook
    re-feeds a failed piece into the head stage, and the tail's keyed
    deposits keep delivery exactly-once even when a dropped reply's
    journey later completes.
    """

    routes_packs = True
    #: NOT oneway-capable: stage-to-stage forwarding needs every hop's
    #: reply, so a fire-and-forget pipeline work call is a contradiction
    #: — StackSpec.validate() rejects such oneway declarations
    oneway_packs = False

    def __init__(
        self,
        splitter: WorkSplitter,
        creation=None,
        work=None,
        resident_pool: bool = False,
    ):
        super().__init__(splitter, creation, work)
        #: id(stage) -> next stage (None at the tail) — the paper's
        #: ``next`` HashMap
        self.next: dict[int, Any] = {}
        self.first: Any = None
        #: long-lived head-feeder activities (opt-in)
        self.resident_pool = resident_pool
        self._pool: PooledSpawner | None = None
        #: per-thread re-entry flag: pooled feeds and retry re-feeds
        #: re-enter the woven call from activities where jp.from_advice
        #: is False
        self._internal = threading.local()

    # -- block 1: object duplication ----------------------------------------

    @around("creation")
    def duplicate(self, jp):
        if self.passthrough(jp) or jp.from_advice:
            return jp.proceed()
        self.next.clear()
        # The paper's sketch creates filters in reverse order because each
        # stage's ``next`` pointer must exist at construction time.  Our
        # ``next`` HashMap is filled after the fact, so stages are created
        # in pipeline order — this also keeps placement policies (which
        # see creations in order) assigning stage i and the hand-coded
        # baseline's stage i to the same node.  The whole stage set is
        # built through one batched initialization joinpoint.
        stages = self.build_duplicates(jp)
        for index, stage in enumerate(stages):
            self.next[id(stage)] = (
                stages[index + 1] if index + 1 < len(stages) else None
            )
        self.first = stages[0]
        if self._pool is not None:  # re-duplication: retire the old pool
            self._pool.stop()
            self._pool = None
        if self.resident_pool:
            self._pool = PooledSpawner(len(stages), pinned=True)
        return self.first  # the first pipeline element goes back to the client

    def on_undeploy(self) -> None:
        """Retire the deployment's resident feeder activities."""
        if self._pool is not None:
            self._pool.stop()
            self._pool = None

    # -- block 2: method call split ----------------------------------------

    @around("work")
    def split(self, jp):
        # Core-functionality calls only: forwarded (advice-made) calls,
        # pooled feeds / retry re-feeds (per-thread flag) and
        # servant-side execution pass through untouched.
        if self.passthrough(jp) or getattr(self._internal, "active", False):
            return jp.proceed()
        if jp.from_advice:
            return jp.proceed()
        head = self.first if self.first is not None else jp.target
        if isinstance(jp, BatchJoinPoint):
            return self.route_pack(jp, head)
        pieces = self.splitter.split(jp.args, jp.kwargs)
        # the per-call collector gathers per-item results: a pack counts
        # once per item (the tail deposits pack results item by item)
        expected = sum(
            len(getattr(piece, "items", ())) or 1 for piece in pieces
        )
        with self.dispatch_scope(
            f"pipeline.{jp.name}", expected=expected, backend=current_backend()
        ) as ctx:
            self._arm_refeed(ctx, head, jp.name)
            with ctx.span("dispatch"):
                pool = self._pool
                for piece in pieces:
                    # re-enters the chain through the head stage's compiled
                    # plan entry; packs enter through the compiled batched
                    # entry.  The ambient ticket follows the piece across the
                    # spawned per-call activities, so the tail deposits into
                    # THIS call's collector however many splits are in flight.
                    ctx.check_deadline("feeding the pipeline head")
                    if ctx.collector.failed:
                        break  # the call is lost: stop feeding it
                    piece = ctx.record(piece)
                    if pool is not None:
                        pool.spawn(
                            current_backend(),
                            lambda p=piece: self._feed(ctx, head, jp.name, p),
                            index=piece.index % len(self.instances),
                        )
                    else:
                        self._feed(ctx, head, jp.name, piece)
            with ctx.span("gather"):
                results = ctx.gather()
            with ctx.span("merge"):
                combined = self.splitter.combine(results)
        return combined

    def _feed(self, ctx: Any, head: Any, name: str, piece: CallPiece) -> None:
        """Feed one piece into the head stage, routing a feed-side
        failure through the collector's retry plane (latch when none is
        armed) instead of aborting the whole call's feed loop."""
        flagged = self._pool is not None and getattr(
            self._internal, "active", False
        ) is False
        if flagged:
            # pooled feeds arrive on resident activities where
            # jp.from_advice is False — keep this aspect out of the way
            self._internal.active = True
        try:
            if not ctx.cancelled:
                dispatch_piece(head, name, piece)
        except Exception as exc:
            ctx.fail(exc, piece=piece)
        finally:
            if flagged:
                self._internal.active = False

    def _arm_refeed(self, ctx: Any, head: Any, name: str) -> None:
        """Install the collector's re-dispatch hook: a failed piece is
        re-fed into the head stage on a fresh activity running under the
        originating ticket (the hook may be invoked from deep inside an
        unwinding stage activity, so the re-feed never runs inline)."""
        if ctx.retry_policy is None or ctx.collector is None:
            return
        backend = current_backend()

        def refeed(piece: CallPiece) -> None:
            def run() -> None:
                self._internal.active = True
                try:
                    with use_dispatch(ctx):
                        if not ctx.cancelled:
                            dispatch_piece(head, name, piece)
                except Exception as exc:  # noqa: BLE001 - routed to collector
                    ctx.fail(exc, piece=piece)
                finally:
                    self._internal.active = False

            backend.spawn(shield_dispatch(run), name="pipeline.refeed")

        ctx.collector.redispatch = refeed

    def route_pack(self, jp: BatchJoinPoint, head: Any) -> list:
        """Top-level pack routing: feed a whole submitted pack into the
        head stage through the compiled batched entry and gather the
        per-item results falling off the tail.

        One advice pass (and, under distribution, one message) per
        inter-stage hop for the whole pack; results come back in piece
        order because the tail deposits a pack's results item by item
        (keyed per item, so a retried pack cannot double-deposit).
        """
        pieces = tuple(jp.args[0])
        pack = PackedPiece(0, pieces)
        with self.dispatch_scope(
            f"pipeline.pack.{jp.name}",
            expected=len(pieces),
            backend=current_backend(),
        ) as ctx:
            self._arm_refeed(ctx, head, jp.name)
            ctx.record_pack(len(pieces))
            with ctx.span("dispatch"):
                ctx.check_deadline("feeding the pipeline head")
                self._feed(ctx, head, jp.name, pack)
            with ctx.span("gather"):
                return ctx.gather()


class PipelineForwardAspect(ParallelAspect):
    """Block 3 of Figure 8: forward calls among pipeline elements.

    "This code also applies recursively to the filter method" — it
    advises every call, including the ones it makes itself.  Stateless
    apart from the append-only ``forwards`` counter: the collector it
    deposits into and the forwarding cursor it advances belong to the
    ambient per-call :class:`~repro.parallel.partition.base.DispatchContext`
    of whichever split originated the piece.
    """

    concern = Concern.PARTITION
    precedence = LAYER["partition-forward"]

    def __init__(self, coordinator: PipelineSplitAspect, work=None):
        self.coordinator = coordinator
        self.work = work if work is not None else coordinator.work
        if isinstance(self.work, str):
            self.work = pointcut(self.work)
        self.forwards = 0
        # own lock for the hot-path counter: forwards from overlapped
        # splits must not contend on the coordinator's ticket-table lock
        self._forwards_lock = threading.Lock()

    @around("work")
    def forward(self, jp):
        if self.passthrough(jp):
            return jp.proceed()
        co = self.coordinator
        key = id(jp.target)
        if key not in co.next:
            return jp.proceed()  # not an aspect-managed stage
        ctx = current_dispatch()
        # the originating call may already be gone (shed, or its
        # deadline expired): drop the piece instead of processing it —
        # the collector is latched, the waiter has failed, and this
        # stage goes straight back to serving other calls' pieces
        if ctx is not None and ctx.cancelled:
            return None
        # fail fast on ANY failure this side of the hop — the stage's own
        # processing AND the forwarding step (forward_args, the next
        # stage's dispatch): wake the originating call's waiter with the
        # exception instead of leaving it blocked forever.  A failure in
        # a later hop latches in that hop's activity; re-latching here is
        # a no-op (the first failure wins).
        try:
            result = jp.proceed()  # the stage's own processing
            if _holds_awaitables(result):
                # an async stage method: its value must exist before it
                # can be forwarded (or deposited), so resolve it on the
                # backend's loop here, inside the fail-fast envelope
                result = current_backend().finish(result)
            nxt = co.next[key]
            # mid-forward deadline boundary: a deadline that ran out
            # while this stage processed unwinds HERE — the ticket is
            # expired (latching DeadlineExceeded with its trace into the
            # originating collector) and the piece never reaches the
            # next stage
            if ctx is not None:
                if ctx.cancelled:
                    return None
                if ctx.deadline is not None and ctx.deadline.expired:
                    ctx.expire("forwarding between pipeline stages")
                    return None
            if isinstance(jp, BatchJoinPoint):
                return self._forward_batch(jp, result, nxt, ctx)
            if nxt is not None:
                with self._forwards_lock:
                    self.forwards += 1
                if ctx is not None:
                    ctx.advance()
                    ctx.mark("forward")
                args, kwargs = co.splitter.forward_args(
                    result, jp.args, jp.kwargs
                )
                # re-intercepted: the attribute is the next stage's
                # compiled plan (repro.aop.plan) — direct getattr, once
                # per forward
                return getattr(nxt, jp.name)(*args, **kwargs)
            if ctx is not None and ctx.collector is not None:
                # keyed by the originating head piece (carried here as
                # the ambient piece): a retried piece whose first
                # journey also completes deposits once, not twice
                ctx.deposit(result, key=piece_key(current_piece()))
            return result
        except BaseException as exc:
            if ctx is not None:
                # naming the ambient piece routes the failure through
                # the collector's retry plane when one is armed
                ctx.fail(exc, piece=current_piece())
            raise

    def _forward_batch(self, jp, results, nxt, ctx):
        """Pack-granular block 3: forward a whole pack in one batched
        call.  Per-item forward arguments are computed with the same
        ``forward_args`` hook, but the pack traverses each inter-stage
        hop as one compiled batched dispatch (one BatchJoinPoint, and —
        under distribution — one message) instead of one per item."""
        co = self.coordinator
        if nxt is not None:
            with self._forwards_lock:
                self.forwards += 1
            if ctx is not None:
                ctx.advance()
                ctx.mark("forward")
            items = []
            # jp.args[0] is the pack at this advice level — an outer
            # around may have substituted it via proceed(new_pieces)
            for index, (piece, result) in enumerate(zip(jp.args[0], results)):
                piece_args, piece_kwargs = piece_view(piece)
                args, kwargs = co.splitter.forward_args(
                    result, piece_args, piece_kwargs
                )
                items.append(CallPiece(index, args, kwargs))
            return batched_entry(nxt, jp.name)(items)
        if ctx is not None and ctx.collector is not None:
            pack = current_piece()
            base = getattr(pack, "index", None)
            for offset, result in enumerate(results):
                # per-item keys within the ambient pack: a retried pack
                # deduplicates item by item
                key = None if base is None else (base, offset)
                ctx.deposit(result, key=key)
        return results


@register_strategy("pipeline")
def pipeline_module(
    splitter: WorkSplitter,
    creation: str,
    work: str,
    name: str = "pipeline",
    resident_pool: bool = False,
) -> ParallelModule:
    """Build the pluggable pipeline-partition module (both aspects).

    ``resident_pool=True`` feeds head pieces through long-lived pinned
    feeder activities (one per stage) — the shape the fault-injection
    tests kill and replace mid-split.
    """
    split_aspect = PipelineSplitAspect(
        splitter, creation=creation, work=work, resident_pool=resident_pool
    )
    forward_aspect = PipelineForwardAspect(split_aspect)
    module = ParallelModule(name, Concern.PARTITION, [split_aspect, forward_aspect])
    module.coordinator = split_aspect  # type: ignore[attr-defined]
    return module


#: StackSpec reads the pack/oneway capability flags off this class
pipeline_module.coordinator_class = PipelineSplitAspect  # type: ignore[attr-defined]
