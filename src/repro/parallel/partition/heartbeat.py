"""Heartbeat partition.

The third strategy category the paper reports ("pipeline, farm with
separable dependencies and heartbeat").  A heartbeat computation
partitions the *data* into blocks, then iterates a fixed rhythm:

    compute on every block  →  exchange block boundaries  →  repeat

The aspect intercepts the core object's *iterate* call and re-expresses
it over the aspect-managed block workers.  Between iterations it drives
the data exchange through the workers' boundary accessors — still plain
woven method calls, so the distribution aspect prices them and the whole
exchange shows up in the network counters.

Core-functionality contract (the "adequate joinpoints" of Section 4):
the target class must expose

* a constructor the splitter can re-parameterise per block;
* ``step()``-like method(s) covered by the ``work`` pointcut, returning
  a per-iteration measure (e.g. residual) the splitter combines;
* boundary accessors named by ``exchange_out`` / ``exchange_in``:
  ``get_boundary(side)`` and ``set_boundary(side, data)`` by default.
"""

from __future__ import annotations

from typing import Any

from repro.aop import around
from repro.aop.plan import batched_entry
from repro.api.registry import register_strategy
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.partition.base import (
    CallPiece,
    PartitionAspect,
    WorkSplitter,
    _holds_awaitables,
    dispatch_with_retry,
)
from repro.runtime.backend import current_backend
from repro.runtime.futures import Future

__all__ = ["HeartbeatAspect", "heartbeat_module"]


class HeartbeatAspect(PartitionAspect):
    """Block data partition + per-iteration boundary exchange.

    The aspect holds the deployed block topology (``workers``) and
    append-only counters; each intercepted iterate call opens a per-call
    :class:`~repro.parallel.partition.base.DispatchContext` — the
    compute and exchange phases both run under the originating call's
    ticket (piece accounting per step, forwarding cursor per exchange
    phase), so overlapped iterate calls keep fully separate state.

    ``routes_packs`` stays False: a heartbeat's work call *is* the whole
    iteration loop over the shared block grid, so there is no meaningful
    way to route independent packs per worker — ``app.map(pack=N)``
    rejects heartbeat specs eagerly.
    """

    def __init__(
        self,
        splitter: WorkSplitter,
        creation=None,
        work=None,
        exchange_out: str = "get_boundary",
        exchange_in: str = "set_boundary",
    ):
        super().__init__(splitter, creation, work)
        self.exchange_out = exchange_out
        self.exchange_in = exchange_in
        self.workers: list[Any] = []
        self.iterations = 0
        self.exchanges = 0

    # -- duplication: one worker per data block -----------------------------

    @around("creation")
    def duplicate(self, jp):
        if self.passthrough(jp) or jp.from_advice:
            return jp.proceed()
        # one batched initialization joinpoint builds the whole block set
        self.workers = self.build_duplicates(jp)
        return self.workers[0]

    # -- the heartbeat -------------------------------------------------------

    @around("work")
    def beat(self, jp):
        if self.passthrough(jp) or jp.from_advice:
            return jp.proceed()
        if not self.workers:
            return jp.proceed()
        (iterations,) = jp.args or (1,)
        last_combined: Any = None
        with self.dispatch_scope(f"heartbeat.{jp.name}") as ctx:
            for beat in range(iterations):
                # deadline boundary per beat: an expired or shed iterate
                # call stops rhythm here — the ticket unwinds with the
                # expiry (and its trace) while the block workers stay
                # deployed, ready for the next iterate call
                ctx.check_deadline(f"starting heartbeat iteration {beat}")
                with self._dispatch_lock:
                    self.iterations += 1
                with ctx.span(f"compute[{beat}]"):
                    # 1. compute phase: one step on every block (possibly
                    # async).  Each step is a fault-instrumented piece
                    # dispatch; a retry stays on the SAME block index — a
                    # block's state lives with its worker, so recovery
                    # means a refilled worker for that index (the process
                    # middleware re-exports on crash), never a neighbour
                    outcomes = [
                        dispatch_with_retry(
                            ctx,
                            lambda attempt, w=worker, i=index: (w, i),
                            jp.name,
                            CallPiece(index, (1,)),
                        )
                        for index, worker in enumerate(self.workers)
                    ]
                    ctx.record_pack(len(outcomes))  # one step per block
                    results = [self._value(o) for o in outcomes]
                with ctx.span(f"merge[{beat}]"):
                    # only the latest combined value is retained (a long run
                    # must not accumulate per-iteration results)
                    last_combined = self.splitter.combine(results)
                with ctx.span(f"exchange[{beat}]"):
                    # 2. exchange phase: neighbouring blocks swap boundaries
                    self._exchange(ctx)
        return last_combined

    def _exchange(self, ctx=None) -> None:
        """Swap boundary data between adjacent workers (1-D chain), one
        *batched* accessor call per worker and phase.

        Per iteration an interior worker is read twice (its ``bottom``
        for the pair below, its ``top`` for the pair above) and written
        twice — the gets and sets each go through one compiled batched
        entry (one BatchJoinPoint and, under distribution, one message
        per worker per phase) instead of one call per boundary.  Gathers
        all read pre-exchange state and scatters write disjoint sides,
        so gather-all-then-scatter-all is equivalent to the pairwise
        interleaving of the per-call formulation.
        """
        workers = self.workers
        last = len(workers) - 1
        boundaries: dict[tuple[int, str], Any] = {}
        for index, worker in enumerate(workers):
            # mid-exchange deadline boundary: a deadline that runs out
            # while halos are being gathered stops the exchange before
            # the next worker is touched — the ticket unwinds, the
            # workers' boundary state for OTHER calls is untouched
            if ctx is not None:
                ctx.check_deadline("gathering heartbeat boundaries")
            sides = []
            if index < last:
                sides.append("bottom")  # read by the pair below
            if index > 0:
                sides.append("top")  # read by the pair above
            if not sides:
                continue
            values = self._value(  # an async aspect may future the pack
                batched_entry(worker, self.exchange_out)(
                    [CallPiece(i, (side,)) for i, side in enumerate(sides)]
                )
            )
            for side, value in zip(sides, values):
                boundaries[(index, side)] = self._value(value)
        # ONE deadline check before the write phase, not per worker: the
        # block grid is shared state across iterate calls, so a scatter
        # must apply atomically — aborting half-way would leave some
        # blocks with new halos and some with stale ones, corrupting
        # every subsequent call's input.  (The gather checks above are
        # per-worker because reads cannot damage shared state.)
        if ctx is not None:
            ctx.check_deadline("scattering heartbeat boundaries")
        for index, worker in enumerate(workers):
            updates = []
            if index > 0:
                updates.append(("top", boundaries[(index - 1, "bottom")]))
            if index < last:
                updates.append(("bottom", boundaries[(index + 1, "top")]))
            if not updates:
                continue
            # resolve the write outcome: a scatter must have LANDED
            # before the next compute phase reads the halos (async
            # boundary accessors would otherwise still be in flight)
            self._value(
                batched_entry(worker, self.exchange_in)(
                    [CallPiece(i, update) for i, update in enumerate(updates)]
                )
            )
        with self._dispatch_lock:
            self.exchanges += 2 * max(last, 0)
        if ctx is not None:
            # the forwarding cursor records exchange phases driven on
            # behalf of the originating call (gather + scatter)
            ctx.advance(2 * max(last, 0))

    @staticmethod
    def _value(outcome: Any) -> Any:
        """Resolve one step/boundary outcome: futures are awaited,
        coroutines (async servants) run to completion on the current
        backend's loop, plain values pass through."""
        if isinstance(outcome, Future):
            outcome = outcome.result()
        if _holds_awaitables(outcome):
            outcome = current_backend().finish(outcome)
        return outcome


@register_strategy("heartbeat")
def heartbeat_module(
    splitter: WorkSplitter,
    creation: str,
    work: str,
    name: str = "heartbeat",
    exchange_out: str = "get_boundary",
    exchange_in: str = "set_boundary",
) -> ParallelModule:
    """Build the pluggable heartbeat-partition module."""
    aspect = HeartbeatAspect(
        splitter,
        creation=creation,
        work=work,
        exchange_out=exchange_out,
        exchange_in=exchange_in,
    )
    module = ParallelModule(name, Concern.PARTITION, [aspect])
    module.coordinator = aspect  # type: ignore[attr-defined]
    return module


#: StackSpec reads the pack/oneway capability flags off this class
#: (heartbeat leaves both at the PartitionAspect default: False)
heartbeat_module.coordinator_class = HeartbeatAspect  # type: ignore[attr-defined]
