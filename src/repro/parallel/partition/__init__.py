"""Partition concern: pipeline, farm, dynamic farm and heartbeat
strategies built from object duplication + method-call split."""

from repro.parallel.partition.base import (
    CallPiece,
    DispatchContext,
    DispatchContextOwner,
    PackedPiece,
    PartitionAspect,
    ResultCollector,
    WorkSplitter,
    dispatch_piece,
    piece_results,
)
from repro.parallel.partition.divide_conquer import (
    DivideAndConquerAspect,
    divide_and_conquer_module,
)
from repro.parallel.partition.dynamic_farm import (
    DynamicFarmAspect,
    dynamic_farm_module,
)
from repro.parallel.partition.farm import FarmAspect, farm_module
from repro.parallel.partition.heartbeat import HeartbeatAspect, heartbeat_module
from repro.parallel.partition.pipeline import (
    PipelineForwardAspect,
    PipelineSplitAspect,
    pipeline_module,
)

__all__ = [
    "CallPiece",
    "PackedPiece",
    "dispatch_piece",
    "piece_results",
    "WorkSplitter",
    "ResultCollector",
    "DispatchContext",
    "DispatchContextOwner",
    "PartitionAspect",
    "PipelineSplitAspect",
    "PipelineForwardAspect",
    "pipeline_module",
    "FarmAspect",
    "farm_module",
    "DynamicFarmAspect",
    "dynamic_farm_module",
    "HeartbeatAspect",
    "heartbeat_module",
    "DivideAndConquerAspect",
    "divide_and_conquer_module",
]
