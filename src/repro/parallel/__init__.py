"""The paper's contribution: parallelisation concerns as pluggable
aspect modules — partition, concurrency, distribution, optimisation —
plus module composition (Table 1 stacks) and cost instrumentation."""

from repro.parallel.composition import Composition, ParallelModule
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.parallel.concurrency import (
    AsyncInvocationAspect,
    BarrierAspect,
    PooledSpawner,
    SpawnPerCall,
    SynchronisationAspect,
    concurrency_module,
)
from repro.parallel.distribution import (
    DistributionAspect,
    HybridDistributionAspect,
    MppDistributionAspect,
    RmiDistributionAspect,
    hybrid_distribution_module,
    mpp_distribution_module,
    rmi_distribution_module,
)
from repro.parallel.instrumentation import ComputeCostAspect
from repro.parallel.optimisation import (
    CommunicationPackingAspect,
    ObjectCacheAspect,
    ReadReplicaAspect,
    ReplicationAspect,
    ThreadPoolAspect,
)
from repro.parallel.partition import (
    CallPiece,
    DispatchContext,
    DivideAndConquerAspect,
    DynamicFarmAspect,
    FarmAspect,
    HeartbeatAspect,
    PartitionAspect,
    PipelineForwardAspect,
    PipelineSplitAspect,
    ResultCollector,
    WorkSplitter,
    divide_and_conquer_module,
    dynamic_farm_module,
    farm_module,
    heartbeat_module,
    pipeline_module,
)

__all__ = [
    "Concern",
    "LAYER",
    "ParallelAspect",
    "ParallelModule",
    "Composition",
    # partition
    "CallPiece",
    "WorkSplitter",
    "ResultCollector",
    "DispatchContext",
    "PartitionAspect",
    "PipelineSplitAspect",
    "PipelineForwardAspect",
    "pipeline_module",
    "FarmAspect",
    "farm_module",
    "DynamicFarmAspect",
    "dynamic_farm_module",
    "HeartbeatAspect",
    "heartbeat_module",
    "DivideAndConquerAspect",
    "divide_and_conquer_module",
    # concurrency
    "AsyncInvocationAspect",
    "SynchronisationAspect",
    "BarrierAspect",
    "SpawnPerCall",
    "PooledSpawner",
    "concurrency_module",
    # distribution
    "DistributionAspect",
    "RmiDistributionAspect",
    "rmi_distribution_module",
    "MppDistributionAspect",
    "mpp_distribution_module",
    "HybridDistributionAspect",
    "hybrid_distribution_module",
    # optimisation + instrumentation
    "ThreadPoolAspect",
    "CommunicationPackingAspect",
    "ObjectCacheAspect",
    "ReadReplicaAspect",
    "ReplicationAspect",
    "ComputeCostAspect",
]
