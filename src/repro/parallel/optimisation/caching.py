"""Object-cache optimisation aspect.

Memoises matched calls: a repeated invocation with identical arguments
returns the cached result without touching the (possibly remote) target
— the paper's "cache objects".  Keys combine the method name with a
caller-supplied argument digest (default: ``repr``; numpy-heavy apps
pass a bytes-hash).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.aop import abstract_pointcut, around, pointcut
from repro.parallel.concern import LAYER, Concern, ParallelAspect

__all__ = ["ObjectCacheAspect"]


def _default_digest(args: tuple, kwargs: dict) -> str:
    return repr((args, tuple(sorted(kwargs.items()))))


class ObjectCacheAspect(ParallelAspect):
    """Around-advice memoisation with hit/miss statistics."""

    concern = Concern.OPTIMISATION
    precedence = LAYER["optimisation"] + 10  # outside other optimisations

    cached_calls = abstract_pointcut("calls to memoise")

    def __init__(
        self,
        cached_calls: str | None = None,
        digest: Callable[[tuple, dict], Any] | None = None,
        per_target: bool = False,
        max_entries: int = 4096,
    ):
        if cached_calls is not None:
            self.cached_calls = pointcut(cached_calls)
        self.digest = digest if digest is not None else _default_digest
        self.per_target = per_target
        self.max_entries = max_entries
        self._cache: dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0

    @around("cached_calls")
    def memoise(self, jp):
        if self.passthrough(jp):
            return jp.proceed()
        key = (
            jp.name,
            id(jp.target) if self.per_target else None,
            self.digest(jp.args, jp.kwargs),
        )
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        result = jp.proceed()
        if len(self._cache) < self.max_entries:
            self._cache[key] = result
        return result

    def clear(self) -> None:
        self._cache.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def on_undeploy(self) -> None:
        self.clear()
