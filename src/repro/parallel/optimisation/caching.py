"""Object-cache optimisation aspect.

Memoises matched calls: a repeated invocation with identical arguments
returns the cached result without touching the (possibly remote) target
— the paper's "cache objects".  Keys combine the method name with a
caller-supplied argument digest (default: ``repr``; numpy-heavy apps
pass a bytes-hash).

The cache is **pack-aware**: when the joinpoint is a
:class:`~repro.aop.plan.BatchJoinPoint` (communication packing in batch
mode), the whole pack is digested and looked up under **one** lock
acquisition, cached items are answered locally, and only the miss
subset proceeds — as a *smaller pack* through the one remaining chain
traversal — before the results are re-interleaved in piece order.  A
fully-cached pack never touches the target (or, under distribution, the
wire) at all.

Eviction is LRU over a bounded :class:`~collections.OrderedDict`, and
every cache/statistics mutation is serialised by a lock: the aspect
memoises calls served concurrently by pooled workers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable

from repro.aop import abstract_pointcut, around, pointcut
from repro.aop.plan import piece_view
from repro.parallel.concern import LAYER, Concern, ParallelAspect

__all__ = ["ObjectCacheAspect"]

#: distinguishes "not cached" from a cached ``None`` result
_MISS = object()


def _default_digest(args: tuple, kwargs: dict) -> str:
    return repr((args, tuple(sorted(kwargs.items()))))


class ObjectCacheAspect(ParallelAspect):
    """Around-advice memoisation with hit/miss statistics.

    Statistics: ``hits`` / ``misses`` count *items* (pack items count
    individually); ``pack_lookups`` counts batched dispatches — each one
    is a single locked lookup pass regardless of pack size.
    """

    concern = Concern.OPTIMISATION
    precedence = LAYER["optimisation"] + 10  # outside other optimisations

    cached_calls = abstract_pointcut("calls to memoise")

    def __init__(
        self,
        cached_calls: str | None = None,
        digest: Callable[[tuple, dict], Any] | None = None,
        per_target: bool = False,
        max_entries: int = 4096,
    ):
        if cached_calls is not None:
            self.cached_calls = pointcut(cached_calls)
        self.digest = digest if digest is not None else _default_digest
        self.per_target = per_target
        self.max_entries = max_entries
        self._cache: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.pack_lookups = 0

    # -- keying / storage --------------------------------------------------

    def _key(self, name: str, target: Any, args: tuple, kwargs: dict) -> Any:
        return (
            name,
            id(target) if self.per_target else None,
            self.digest(args, kwargs),
        )

    def _admit(self, key: Any, result: Any) -> None:
        """Store under the (already held) lock with LRU eviction."""
        cache = self._cache
        if key in cache:
            cache.move_to_end(key)
        elif len(cache) >= self.max_entries:
            cache.popitem(last=False)  # evict least recently used
        cache[key] = result

    # -- advice ------------------------------------------------------------

    @around("cached_calls")
    def memoise(self, jp):
        if self.passthrough(jp):
            return jp.proceed()
        pieces = getattr(jp, "pieces", None)
        if pieces is not None:
            return self._memoise_pack(jp, pieces)
        key = self._key(jp.name, jp.target, jp.args, jp.kwargs)
        with self._lock:
            cached = self._cache.get(key, _MISS)
            if cached is not _MISS:
                self.hits += 1
                self._cache.move_to_end(key)
                return cached
            self.misses += 1
        result = jp.proceed()
        with self._lock:
            self._admit(key, result)
        return result

    def _memoise_pack(self, jp, pieces) -> list:
        """One digest + lookup pass for the whole pack; partial hits
        split the pack: cached items are answered locally, the miss
        subset proceeds as a smaller pack, and the per-item results are
        re-interleaved in the original piece order."""
        name = jp.name
        target = jp.target
        keys = []
        for piece in pieces:
            args, kwargs = piece_view(piece)
            keys.append(self._key(name, target, args, kwargs))
        results: list = [None] * len(keys)
        miss_indices: list[int] = []
        with self._lock:  # ONE locked pass per pack
            self.pack_lookups += 1
            cache = self._cache
            for i, key in enumerate(keys):
                cached = cache.get(key, _MISS)
                if cached is not _MISS:
                    self.hits += 1
                    cache.move_to_end(key)
                    results[i] = cached
                else:
                    self.misses += 1
                    miss_indices.append(i)
        if not miss_indices:
            return results  # fully cached: the pack never proceeds
        miss_results = jp.proceed(tuple(pieces[i] for i in miss_indices))
        with self._lock:
            for i, result in zip(miss_indices, miss_results):
                self._admit(keys[i], result)
                results[i] = result
        return results

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def on_undeploy(self) -> None:
        self.clear()
