"""Communication-packing optimisation aspect.

"Examples are: thread pools, cache objects, communication packing and
replicated computation."  Packing coalesces every ``factor`` consecutive
split pieces into one larger piece — fewer, bigger messages, trading
pipeline/farm concurrency for per-message overhead.  It works by
wrapping the partition module's splitter, so it composes with any
partition strategy whose splitter provides ``merge_pieces``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import AdviceError
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.parallel.partition.base import CallPiece, PartitionAspect

__all__ = ["CommunicationPackingAspect"]


class CommunicationPackingAspect(ParallelAspect):
    """Merge every ``factor`` consecutive pieces of the split."""

    concern = Concern.OPTIMISATION
    precedence = LAYER["optimisation"]

    def __init__(self, partition: PartitionAspect, factor: int):
        if factor < 1:
            raise AdviceError("packing factor must be >= 1")
        self.partition = partition
        self.factor = factor
        self._original_split = None
        self.packed_messages = 0

    def on_deploy(self) -> None:
        splitter = self.partition.splitter
        self._original_split = splitter.split
        factor = self.factor
        aspect = self

        def packed_split(args: tuple, kwargs: dict) -> list[CallPiece]:
            pieces = aspect._original_split(args, kwargs)
            merged: list[CallPiece] = []
            for start in range(0, len(pieces), factor):
                group = pieces[start : start + factor]
                if len(group) == 1:
                    piece = group[0]
                else:
                    piece = splitter.merge_pieces(group)
                merged.append(CallPiece(len(merged), piece.args, piece.kwargs))
            aspect.packed_messages += len(merged)
            return merged

        splitter.split = packed_split  # type: ignore[method-assign]

    def on_undeploy(self) -> None:
        if self._original_split is not None:
            self.partition.splitter.split = self._original_split  # type: ignore[method-assign]
            self._original_split = None
