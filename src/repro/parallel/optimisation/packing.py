"""Communication-packing optimisation aspect.

"Examples are: thread pools, cache objects, communication packing and
replicated computation."  Packing coalesces every ``factor`` consecutive
split pieces into one larger unit — fewer, bigger messages, trading
pipeline/farm concurrency for per-message overhead.  It works by
wrapping the partition module's splitter, so it composes with any
partition strategy.

Two packing modes:

* **merge mode** (default when the splitter provides ``merge_pieces``):
  each group of pieces is merged into one bigger :class:`CallPiece` —
  the target method runs once per pack on the merged arguments and
  ``combine`` sees pack-granular results.  This is the paper's original
  formulation.
* **batch mode** (default when the splitter has no ``merge_pieces``;
  forced with ``batch=True``): each group becomes a
  :class:`~repro.parallel.partition.base.PackedPiece` that the skeletons
  dispatch through the compiled batched entry point
  (:func:`repro.aop.plan.batched_entry`).  The advice chain — and, under
  distribution, the wire — is traversed **once per pack** with a single
  :class:`~repro.aop.plan.BatchJoinPoint`, while the target method still
  runs once per item, so ``combine`` keeps seeing piece-granular results
  in the original order.  Batch mode therefore needs no merge/unmerge
  logic from the application at all.
"""

from __future__ import annotations

from typing import Any

from repro.errors import AdviceError
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.parallel.partition.base import CallPiece, PackedPiece, PartitionAspect

__all__ = ["CommunicationPackingAspect"]


class CommunicationPackingAspect(ParallelAspect):
    """Coalesce every ``factor`` consecutive pieces of the split."""

    concern = Concern.OPTIMISATION
    precedence = LAYER["optimisation"]

    def __init__(
        self,
        partition: PartitionAspect,
        factor: int,
        batch: bool | None = None,
    ):
        if factor < 1:
            raise AdviceError("packing factor must be >= 1")
        self.partition = partition
        self.factor = factor
        #: None = auto (merge when the splitter supports it, else batch)
        self.batch = batch
        self._original_split = None
        self.packed_messages = 0

    def on_deploy(self) -> None:
        splitter = self.partition.splitter
        self._original_split = splitter.split
        factor = self.factor
        aspect = self
        use_batch = self.batch
        if use_batch is None:
            use_batch = splitter._merge_pieces is None

        def packed_split(args: tuple, kwargs: dict) -> list[CallPiece]:
            pieces = aspect._original_split(args, kwargs)
            merged: list[CallPiece] = []
            for start in range(0, len(pieces), factor):
                group = pieces[start : start + factor]
                if use_batch:
                    piece: CallPiece = PackedPiece(len(merged), group)
                else:
                    bundle = group[0] if len(group) == 1 else splitter.merge_pieces(group)
                    piece = CallPiece(len(merged), bundle.args, bundle.kwargs)
                merged.append(piece)
            aspect.packed_messages += len(merged)
            return merged

        splitter.split = packed_split  # type: ignore[method-assign]

    def on_undeploy(self) -> None:
        if self._original_split is not None:
            self.partition.splitter.split = self._original_split  # type: ignore[method-assign]
            self._original_split = None
