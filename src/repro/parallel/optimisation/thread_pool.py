"""Thread-pool optimisation aspect.

Section 4.4 lists thread pools among modularisable optimisations: the
spawn-per-call strategy of the concurrency aspect is replaced with a
bounded pool of reusable workers.  Plugging this aspect swaps the
spawner of an :class:`AsyncInvocationAspect`; unplugging restores
spawn-per-call — nothing else in the stack changes.
"""

from __future__ import annotations

from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.parallel.concurrency.asynchronous import (
    AsyncInvocationAspect,
    PooledSpawner,
)

__all__ = ["ThreadPoolAspect"]


class ThreadPoolAspect(ParallelAspect):
    """Swap spawn-per-call for a fixed worker pool."""

    concern = Concern.OPTIMISATION
    precedence = LAYER["optimisation"]

    def __init__(self, async_aspect: AsyncInvocationAspect, size: int):
        self.async_aspect = async_aspect
        self.size = size
        self.pool: PooledSpawner | None = None
        self._previous_spawner = None

    def on_deploy(self) -> None:
        self.pool = PooledSpawner(self.size)
        self._previous_spawner = self.async_aspect.spawner
        self.async_aspect.spawner = self.pool

    def on_undeploy(self) -> None:
        if self.pool is not None:
            self.pool.stop()
        if self._previous_spawner is not None:
            self.async_aspect.spawner = self._previous_spawner
        self.pool = None
        self._previous_spawner = None
