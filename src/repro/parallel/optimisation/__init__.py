"""Optimisation concern: thread pools, communication packing, object
caching and replicated computation — the paper's Section 4.4 examples."""

from repro.parallel.optimisation.caching import ObjectCacheAspect
from repro.parallel.optimisation.packing import CommunicationPackingAspect
from repro.parallel.optimisation.replication import (
    ReadReplicaAspect,
    ReplicationAspect,
)
from repro.parallel.optimisation.thread_pool import ThreadPoolAspect

__all__ = [
    "ThreadPoolAspect",
    "CommunicationPackingAspect",
    "ObjectCacheAspect",
    "ReplicationAspect",
    "ReadReplicaAspect",
]
