"""Replicated-computation optimisation aspects.

Two replication shapes from the paper's optimisation class:

* :class:`ReplicationAspect` — *racing* replication: issue the same
  call to ``replicas`` targets and take the first answer (latency
  hiding against slow/overloaded nodes);
* :class:`ReadReplicaAspect` — *read-mostly servant* replication: reads
  are answered by a local replica of the servant (built on demand from
  the partition's managed instance), writes go through the full chain
  and invalidate the replica.  Deployed above the distribution layer,
  read-heavy traffic stops paying per-item advice and per-item remote
  messages entirely.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.aop import abstract_pointcut, around, pointcut
from repro.aop.plan import piece_view
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.parallel.partition.base import PartitionAspect
from repro.runtime.backend import current_backend
from repro.runtime.futures import Future

__all__ = ["ReplicationAspect", "ReadReplicaAspect"]


class ReplicationAspect(ParallelAspect):
    """First-of-N replicated execution."""

    concern = Concern.OPTIMISATION
    precedence = LAYER["optimisation"] + 5

    replicated_calls = abstract_pointcut("calls to replicate")

    def __init__(
        self,
        partition: PartitionAspect,
        replicas: int = 2,
        replicated_calls: str | None = None,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if replicated_calls is not None:
            self.replicated_calls = pointcut(replicated_calls)
        self.partition = partition
        self.replicas = replicas
        self.replicated = 0
        self._local = threading.local()

    @around("replicated_calls")
    def replicate(self, jp):
        if self.passthrough(jp) or getattr(self._local, "racing", False):
            return jp.proceed()
        peers = [w for w in self.partition.instances if w is not jp.target]
        if not peers or self.replicas < 2:
            return jp.proceed()
        backend = current_backend()
        first = backend.make_event(name="replica.first")
        continuation = jp.capture_proceed()
        extra = peers[: self.replicas - 1]
        self.replicated += 1

        def run_primary() -> None:
            try:
                first.set(("ok", continuation()))
            except Exception as exc:  # noqa: BLE001 - raced result
                first.set(("error", exc))

        method = jp.name
        args, kwargs = jp.args, jp.kwargs

        def run_replica(peer: Any) -> None:
            # replica calls must not re-replicate (flag is per thread)
            self._local.racing = True
            try:
                first.set(("ok", getattr(peer, method)(*args, **kwargs)))
            except Exception as exc:  # noqa: BLE001 - raced result
                first.set(("error", exc))
            finally:
                self._local.racing = False

        backend.spawn(run_primary, name="replica.primary")
        for peer in extra:
            backend.spawn(lambda p=peer: run_replica(p), name="replica.peer")
        first.wait()
        outcome, payload = first.value
        if outcome == "error":
            raise payload
        if isinstance(payload, Future):
            payload = payload.result()
        return payload


class ReadReplicaAspect(ParallelAspect):
    """Read-mostly servant replication with write invalidation.

    Matched *reads* on a partition-managed servant are served by a
    process-local replica — the original (unwoven) method body runs on a
    detached copy of the servant, so neither the remaining advice chain
    nor the wire is traversed.  Matched *writes* proceed through the
    full chain and then invalidate the target's replica; the next read
    rebuilds it from the live instance via
    :meth:`~repro.parallel.partition.base.PartitionAspect.snapshot`.

    The aspect is **pack-aware**: a batched read pack is answered by one
    replica lookup and a plain loop over the pieces — per-item results
    in piece order, zero chain traversals.

    Deployed *above* the distribution layer (``LAYER["distribution"] +
    25``) so a read short-circuits before the call would be shipped to a
    remote servant.  Under true remote distribution pass ``build`` to
    fetch replica state explicitly; the default ``deepcopy`` snapshot
    copies the local instance.
    """

    concern = Concern.OPTIMISATION
    # above distribution: reads must short-circuit before going remote
    precedence = LAYER["distribution"] + 25

    read_calls = abstract_pointcut("read-only calls to serve from replicas")
    write_calls = abstract_pointcut("mutating calls that invalidate replicas")

    def __init__(
        self,
        partition: PartitionAspect,
        read_calls: str | None = None,
        write_calls: str | None = None,
        build: Callable[[Any], Any] | None = None,
    ):
        if read_calls is not None:
            self.read_calls = pointcut(read_calls)
        if write_calls is not None:
            self.write_calls = pointcut(write_calls)
        else:
            # read-only servant: bind the write pointcut to a pattern no
            # woven class can match so deployment does not reject the
            # aspect for leaving an abstract pointcut unbound
            self.write_calls = pointcut("call(__NoWrites__.__none__(..))")
        self.partition = partition
        self.build = build
        #: id(servant) -> detached replica
        self._replicas: dict[int, Any] = {}
        self._lock = threading.Lock()
        self.local_reads = 0
        self.replica_builds = 0
        self.invalidations = 0

    # -- replica bookkeeping ----------------------------------------------

    def _replica_for(self, target: Any) -> Any:
        key = id(target)
        with self._lock:
            replica = self._replicas.get(key)
        if replica is None:
            replica = self.partition.snapshot(target, self.build)
            with self._lock:
                self._replicas.setdefault(key, replica)
                self.replica_builds += 1
                replica = self._replicas[key]
        return replica

    def invalidate(self, target: Any | None = None) -> None:
        """Drop the replica of ``target`` (or all replicas)."""
        with self._lock:
            if target is None:
                self.invalidations += len(self._replicas)
                self._replicas.clear()
            elif self._replicas.pop(id(target), None) is not None:
                self.invalidations += 1

    # -- advice ------------------------------------------------------------

    @around("read_calls")
    def serve_read(self, jp):
        target = jp.target
        if (
            self.passthrough(jp)
            or target is None
            or not self.partition.is_managed(target)
        ):
            return jp.proceed()
        replica = self._replica_for(target)
        originals = getattr(type(target), "__aop_originals__", {})
        func = originals.get(jp.name)
        if func is None:  # unwoven method: plain bound call on the copy
            func = getattr(type(replica), jp.name)
        pieces = getattr(jp, "pieces", None)
        if pieces is not None:  # batched read pack: loop, no chain
            self.local_reads += len(pieces)
            results = []
            for piece in pieces:
                args, kwargs = piece_view(piece)
                results.append(func(replica, *args, **kwargs))
            return results
        self.local_reads += 1
        return func(replica, *jp.args, **jp.kwargs)

    @around("write_calls")
    def write_through(self, jp):
        if self.passthrough(jp):
            return jp.proceed()
        result = jp.proceed()
        self.invalidate(jp.target)
        return result

    def on_undeploy(self) -> None:
        with self._lock:
            self._replicas.clear()
