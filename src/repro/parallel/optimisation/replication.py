"""Replicated-computation optimisation aspect.

The last optimisation class the paper names: issue the same call to
``replicas`` targets and take the first answer (latency hiding against
slow/overloaded nodes).  The replica targets come from a partition
aspect's managed instances; the original call's target is always one of
the replicas.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.aop import abstract_pointcut, around, pointcut
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.parallel.partition.base import PartitionAspect
from repro.runtime.backend import current_backend
from repro.runtime.futures import Future

__all__ = ["ReplicationAspect"]


class ReplicationAspect(ParallelAspect):
    """First-of-N replicated execution."""

    concern = Concern.OPTIMISATION
    precedence = LAYER["optimisation"] + 5

    replicated_calls = abstract_pointcut("calls to replicate")

    def __init__(
        self,
        partition: PartitionAspect,
        replicas: int = 2,
        replicated_calls: str | None = None,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if replicated_calls is not None:
            self.replicated_calls = pointcut(replicated_calls)
        self.partition = partition
        self.replicas = replicas
        self.replicated = 0
        self._local = threading.local()

    @around("replicated_calls")
    def replicate(self, jp):
        if self.passthrough(jp) or getattr(self._local, "racing", False):
            return jp.proceed()
        peers = [w for w in self.partition.instances if w is not jp.target]
        if not peers or self.replicas < 2:
            return jp.proceed()
        backend = current_backend()
        first = backend.make_event(name="replica.first")
        continuation = jp.capture_proceed()
        extra = peers[: self.replicas - 1]
        self.replicated += 1

        def run_primary() -> None:
            try:
                first.set(("ok", continuation()))
            except Exception as exc:  # noqa: BLE001 - raced result
                first.set(("error", exc))

        method = jp.name
        args, kwargs = jp.args, jp.kwargs

        def run_replica(peer: Any) -> None:
            # replica calls must not re-replicate (flag is per thread)
            self._local.racing = True
            try:
                first.set(("ok", getattr(peer, method)(*args, **kwargs)))
            except Exception as exc:  # noqa: BLE001 - raced result
                first.set(("error", exc))
            finally:
                self._local.racing = False

        backend.spawn(run_primary, name="replica.primary")
        for peer in extra:
            backend.spawn(lambda p=peer: run_replica(p), name="replica.peer")
        first.wait()
        outcome, payload = first.value
        if outcome == "error":
            raise payload
        if isinstance(payload, Future):
            payload = payload.result()
        return payload
