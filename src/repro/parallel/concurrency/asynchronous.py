"""Asynchronous method invocation (paper Section 4.2, Figure 12 top).

"Concurrency is based on asynchronous method calls.  In Java these calls
can be implemented by spawning a new thread to perform the requested
method call."

The around advice captures the rest of the chain (synchronisation →
forwarding → distribution → the method itself) and hands it to a spawned
activity; the caller immediately receives a
:class:`~repro.runtime.futures.Future` (the ABCL-style future the paper's
related work describes — touching it blocks until the value arrives).

The *spawn strategy* is replaceable at runtime: the thread-pool
optimisation aspect swaps :class:`SpawnPerCall` for a pooled spawner
without touching this module.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable

from repro.aop import abstract_pointcut, around, pointcut
from repro.faults.schedule import fire_fault
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.runtime.backend import ExecutionBackend, current_backend
from repro.runtime.dispatch import bind_dispatch, shield_dispatch
from repro.runtime.futures import Future

__all__ = ["SpawnPerCall", "PooledSpawner", "AsyncInvocationAspect"]


class SpawnPerCall:
    """The paper's literal strategy: one new activity per call."""

    def spawn(self, backend: ExecutionBackend, task: Callable[[], None]) -> None:
        backend.spawn(task, name="async-call")

    def stop(self) -> None:
        """Nothing to tear down."""


class PooledSpawner:
    """Fixed pool of worker activities fed by task queues.

    Workers are started lazily on the first spawn (so the pool binds to
    the right backend).  Two feeding modes:

    * shared (default) — one queue, any idle worker takes the next task
      (the thread-pool optimisation aspect's shape);
    * ``pinned=True`` — one queue *per worker*, and ``spawn(...,
      index=i)`` routes the task to worker ``i``.  This is the resident
      worker-pool shape the dynamic farm uses: resident activity ``i``
      always drives deployed worker instance ``i``, so per-call work
      reaches a long-lived activity instead of paying a fresh spawn —
      while every task still runs under the dispatch ticket of the call
      that enqueued it (``bind_dispatch``).

    A task that raises does NOT kill its resident worker: the exception
    is recorded (``task_failures``) and the loop serves the next task —
    errors belong to the enqueueing call, which observes them through
    its own ticket/collector, never to the pool.

    Fault axis: each pulled task first consults the ambient
    :class:`~repro.faults.FaultSchedule` at site ``"pool"`` (index = the
    resident's position).  A ``kill_worker`` event — or an explicit
    :meth:`kill` — terminates the resident *before* the task runs; the
    pulled task is re-enqueued (no piece is lost) and a replacement
    resident is spawned on the same queue (``killed`` / ``replacements``
    counters), so an in-flight split completes on the refilled pool.
    """

    _STOP = object()
    _KILL = object()

    def __init__(self, size: int, pinned: bool = False):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self.pinned = pinned
        self._queues: list[Any] | None = None
        self._backend: ExecutionBackend | None = None
        #: guards the lazy start: overlapped first-submissions race into
        #: spawn(), and a double start would orphan a whole resident set
        self._start_lock = threading.Lock()
        #: round-robin cursor for pinned spawns that name no worker
        self._cursor = itertools.count()
        self.executed = 0
        self.task_failures = 0
        #: residents terminated by a fault event or an explicit kill()
        self.killed = 0
        #: replacement residents spawned after kills
        self.replacements = 0

    @property
    def started(self) -> bool:
        """Have the resident worker activities been spawned yet?"""
        return self._queues is not None

    def spawn(
        self,
        backend: ExecutionBackend,
        task: Callable[[], None],
        index: int | None = None,
    ) -> None:
        """Enqueue ``task``; with ``pinned`` pools, ``index`` names the
        resident worker that must run it (round-robin otherwise)."""
        with self._start_lock:
            if self._queues is None:
                self._backend = backend
                count = self.size if self.pinned else 1
                queues = [
                    backend.make_queue(name=f"pool.tasks{i}")
                    for i in range(count)
                ]
                for i in range(self.size):
                    queue = queues[i if self.pinned else 0]
                    # workers idle on the queue between bursts; daemon=True
                    # keeps the sim's deadlock detector quiet about them.
                    # shield_dispatch: the pool may be created from inside a
                    # call's dispatch, and a worker must not pin (or leak to
                    # later tasks) that call's ticket for its whole lifetime
                    backend.spawn(
                        shield_dispatch(
                            lambda q=queue, i=i: self._worker(q, i)
                        ),
                        name=f"pool.worker{i}",
                        daemon=True,
                    )
                self._queues = queues
        if self.pinned:
            if index is None:
                index = next(self._cursor)
            queue = self._queues[index % self.size]
        else:
            queue = self._queues[0]
        # pool workers are long-lived, so the spawn-time ticket capture
        # the backends do would pin the *worker's* creation context; bind
        # each task to the ticket of the call that enqueued it instead
        queue.put(bind_dispatch(task))

    def _worker(self, queue: Any, index: int) -> None:
        while True:
            task = queue.get()
            if task is self._STOP:
                return
            if task is self._KILL:
                self._die(queue, index, requeue=None)
                return
            event = fire_fault("pool", index)
            if event is not None and event.kind == "kill_worker":
                # the resident dies BEFORE running the task; the pulled
                # task goes back on the queue so no piece is lost — the
                # replacement resident (or a shared-queue sibling) runs it
                self._die(queue, index, requeue=task)
                return
            if event is not None and event.kind == "delay_reply":
                time.sleep(event.delay)
            try:
                task()
            except Exception:  # noqa: BLE001 - the call observes its own error
                self.task_failures += 1
            self.executed += 1

    def _die(self, queue: Any, index: int, requeue: Any) -> None:
        """Terminate resident ``index``: count the kill, put back the
        task it pulled (if any), and spawn a replacement on its queue."""
        self.killed += 1
        if requeue is not None:
            queue.put(requeue)
        self._respawn(queue, index)

    def _respawn(self, queue: Any, index: int) -> None:
        backend = self._backend
        if backend is None:  # pool already torn down
            return
        self.replacements += 1
        backend.spawn(
            shield_dispatch(lambda q=queue, i=index: self._worker(q, i)),
            name=f"pool.worker{index}.respawn",
            daemon=True,
        )

    def kill(self, index: int = 0) -> None:
        """Deliver a kill token to resident ``index`` (any resident on
        the shared queue when not pinned).  The resident terminates at
        its next pull and is immediately replaced — the test face of the
        ``kill_worker`` fault event."""
        if self._queues is None:
            raise RuntimeError("pool not started")
        queue = self._queues[index % self.size if self.pinned else 0]
        queue.put(self._KILL)

    def stop(self) -> None:
        if self._queues is not None:
            if self.pinned:
                for queue in self._queues:
                    queue.put(self._STOP)
            else:
                for _ in range(self.size):
                    self._queues[0].put(self._STOP)


class AsyncInvocationAspect(ParallelAspect):
    """Spawn-per-call with transparent futures."""

    concern = Concern.CONCURRENCY
    precedence = LAYER["concurrency"]

    async_calls = abstract_pointcut("calls to execute asynchronously")

    def __init__(self, async_calls: str | None = None, spawner: Any = None):
        if async_calls is not None:
            self.async_calls = pointcut(async_calls)
        self.spawner = spawner if spawner is not None else SpawnPerCall()
        self.spawned_calls = 0

    @around("async_calls")
    def make_asynchronous(self, jp):
        if self.passthrough(jp):
            return jp.proceed()
        backend = current_backend()
        if getattr(backend, "native_async", False) and isinstance(
            self.spawner, SpawnPerCall
        ):
            # asyncio backend: the call's activity is an event-loop
            # task, not a thread.  Proceed inline — an ``async def``
            # method hands back its coroutine without running (cheap),
            # a plain method completes right here — and let the backend
            # bridge the outcome to a Future (already-resolved for
            # plain values, a supervised loop task for coroutines).
            self.spawned_calls += 1
            try:
                outcome = jp.proceed()
            except Exception as exc:  # noqa: BLE001 - delivered via future
                failed = Future(name=f"async.{jp.signature}", backend=backend)
                failed.set_exception(exc)
                return failed
            return backend.bridge(outcome, name=f"async.{jp.signature}")
        future = Future(name=f"async.{jp.signature}", backend=backend)
        continuation = jp.capture_proceed()

        def task() -> None:
            try:
                future.set_result(continuation())
            except Exception as exc:  # noqa: BLE001 - delivered via future
                future.set_exception(exc)

        self.spawned_calls += 1
        self.spawner.spawn(backend, task)
        return future
