"""Asynchronous method invocation (paper Section 4.2, Figure 12 top).

"Concurrency is based on asynchronous method calls.  In Java these calls
can be implemented by spawning a new thread to perform the requested
method call."

The around advice captures the rest of the chain (synchronisation →
forwarding → distribution → the method itself) and hands it to a spawned
activity; the caller immediately receives a
:class:`~repro.runtime.futures.Future` (the ABCL-style future the paper's
related work describes — touching it blocks until the value arrives).

The *spawn strategy* is replaceable at runtime: the thread-pool
optimisation aspect swaps :class:`SpawnPerCall` for a pooled spawner
without touching this module.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.aop import abstract_pointcut, around, pointcut
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.runtime.backend import ExecutionBackend, current_backend
from repro.runtime.dispatch import bind_dispatch, shield_dispatch
from repro.runtime.futures import Future

__all__ = ["SpawnPerCall", "PooledSpawner", "AsyncInvocationAspect"]


class SpawnPerCall:
    """The paper's literal strategy: one new activity per call."""

    def spawn(self, backend: ExecutionBackend, task: Callable[[], None]) -> None:
        backend.spawn(task, name="async-call")

    def stop(self) -> None:
        """Nothing to tear down."""


class PooledSpawner:
    """Fixed pool of worker activities fed by a queue.

    Created by the thread-pool optimisation aspect; workers are started
    lazily on the first spawn (so the pool binds to the right backend).
    """

    _STOP = object()

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self._queue: Any = None
        self._backend: ExecutionBackend | None = None
        self.executed = 0

    def spawn(self, backend: ExecutionBackend, task: Callable[[], None]) -> None:
        if self._queue is None:
            self._backend = backend
            self._queue = backend.make_queue(name="pool.tasks")
            for i in range(self.size):
                # workers idle on the queue between bursts; daemon=True
                # keeps the sim's deadlock detector quiet about them.
                # shield_dispatch: the pool may be created from inside a
                # call's dispatch, and a worker must not pin (or leak to
                # later tasks) that call's ticket for its whole lifetime
                backend.spawn(
                    shield_dispatch(self._worker),
                    name=f"pool.worker{i}",
                    daemon=True,
                )
        # pool workers are long-lived, so the spawn-time ticket capture
        # the backends do would pin the *worker's* creation context; bind
        # each task to the ticket of the call that enqueued it instead
        self._queue.put(bind_dispatch(task))

    def _worker(self) -> None:
        while True:
            task = self._queue.get()
            if task is self._STOP:
                return
            task()
            self.executed += 1

    def stop(self) -> None:
        if self._queue is not None:
            for _ in range(self.size):
                self._queue.put(self._STOP)


class AsyncInvocationAspect(ParallelAspect):
    """Spawn-per-call with transparent futures."""

    concern = Concern.CONCURRENCY
    precedence = LAYER["concurrency"]

    async_calls = abstract_pointcut("calls to execute asynchronously")

    def __init__(self, async_calls: str | None = None, spawner: Any = None):
        if async_calls is not None:
            self.async_calls = pointcut(async_calls)
        self.spawner = spawner if spawner is not None else SpawnPerCall()
        self.spawned_calls = 0

    @around("async_calls")
    def make_asynchronous(self, jp):
        if self.passthrough(jp):
            return jp.proceed()
        backend = current_backend()
        future = Future(name=f"async.{jp.signature}", backend=backend)
        continuation = jp.capture_proceed()

        def task() -> None:
            try:
                future.set_result(continuation())
            except Exception as exc:  # noqa: BLE001 - delivered via future
                future.set_exception(exc)

        self.spawned_calls += 1
        self.spawner.spawn(backend, task)
        return future
