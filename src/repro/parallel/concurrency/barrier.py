"""Phase-barrier aspect.

A small reusable concurrency aspect: after every matched call, wait at a
cyclic barrier shared by ``parties`` activities.  Heartbeat-style codes
use it to keep compute phases in lockstep when the partition module does
not already serialise phases itself.
"""

from __future__ import annotations

from typing import Any

from repro.aop import abstract_pointcut, after, pointcut
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.runtime.backend import current_backend

__all__ = ["BarrierAspect"]


class BarrierAspect(ParallelAspect):
    """``after(phase_calls): barrier.wait()``."""

    concern = Concern.CONCURRENCY
    precedence = LAYER["concurrency"] - 2

    phase_calls = abstract_pointcut("calls ending a phase")

    def __init__(self, parties: int, phase_calls: str | None = None):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        if phase_calls is not None:
            self.phase_calls = pointcut(phase_calls)
        self.parties = parties
        self._barrier: Any = None
        self.phases = 0

    def _get_barrier(self) -> Any:
        if self._barrier is None:
            backend = current_backend()
            # The sim backend has a true barrier; thread mode synthesises
            # one from threading via the stdlib.
            try:
                from repro.runtime.simbackend import SimBackend

                if isinstance(backend, SimBackend):
                    from repro.sim import SimBarrier

                    self._barrier = SimBarrier(
                        backend.sim, self.parties, name="phase"
                    )
                else:
                    import threading

                    self._barrier = threading.Barrier(self.parties)
            except Exception:  # pragma: no cover - defensive
                import threading

                self._barrier = threading.Barrier(self.parties)
        return self._barrier

    @after("phase_calls")
    def phase_end(self, jp):
        if self.passthrough(jp):
            return
        self.phases += 1
        self._get_barrier().wait()

    def on_undeploy(self) -> None:
        self._barrier = None
