"""Synchronisation (paper Section 4.2, Figure 12 bottom).

"each PrimeFilter object must be protected against concurrent
invocations to avoid data races, since its implementation is not thread
safe" — an around advice serialising calls per *target object*, the
aspect rendition of ``synchronized (target) { proceed; }``.

Declared after the spawn advice in the concurrency module, so it runs
*inside* the spawned activity: many activities may exist per object, but
only one executes the object's method at a time.
"""

from __future__ import annotations

from typing import Any

from repro.aop import abstract_pointcut, around, pointcut
from repro.parallel.concern import LAYER, Concern, ParallelAspect
from repro.runtime.backend import current_backend

__all__ = ["SynchronisationAspect"]


class SynchronisationAspect(ParallelAspect):
    """Per-target mutual exclusion."""

    concern = Concern.CONCURRENCY
    # one step below the spawn advice so it nests inside the new activity
    precedence = LAYER["concurrency"] - 1

    guarded_calls = abstract_pointcut("calls to serialise per target")

    def __init__(self, guarded_calls: str | None = None):
        if guarded_calls is not None:
            self.guarded_calls = pointcut(guarded_calls)
        # id(target) -> (target, lock); the strong reference keeps ids stable
        self._locks: dict[int, tuple[Any, Any]] = {}
        self.guarded = 0

    def _lock_for(self, target: Any) -> Any:
        key = id(target)
        entry = self._locks.get(key)
        if entry is None or entry[0] is not target:
            entry = (target, current_backend().make_lock(name=f"sync.{key}"))
            self._locks[key] = entry
        return entry[1]

    @around("guarded_calls")
    def serialise(self, jp):
        if self.passthrough(jp):
            return jp.proceed()
        self.guarded += 1
        with self._lock_for(jp.target):
            return jp.proceed()

    def on_undeploy(self) -> None:
        self._locks.clear()
