"""Concurrency concern: asynchronous invocation (spawn + futures),
per-target synchronisation, and phase barriers."""

from repro.parallel.concurrency.asynchronous import (
    AsyncInvocationAspect,
    PooledSpawner,
    SpawnPerCall,
)
from repro.parallel.concurrency.barrier import BarrierAspect
from repro.parallel.concurrency.synchronisation import SynchronisationAspect
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import Concern

__all__ = [
    "AsyncInvocationAspect",
    "SynchronisationAspect",
    "BarrierAspect",
    "SpawnPerCall",
    "PooledSpawner",
    "concurrency_module",
]


def concurrency_module(
    async_calls: str,
    guarded_calls: str | None = None,
    name: str = "concurrency",
) -> ParallelModule:
    """The paper's concurrency module (Figure 12): spawn-per-call plus —
    unless ``guarded_calls`` is None — per-object synchronisation."""
    aspects = [AsyncInvocationAspect(async_calls=async_calls)]
    if guarded_calls is not None:
        aspects.append(SynchronisationAspect(guarded_calls=guarded_calls))
    module = ParallelModule(name, Concern.CONCURRENCY, aspects)
    module.async_aspect = aspects[0]  # type: ignore[attr-defined]
    return module
