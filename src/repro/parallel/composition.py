"""Module composition: plugging and unplugging parallelisation concerns.

A :class:`ParallelModule` is the unit the paper plugs/unplugs: one
concern implemented by one or more cooperating aspects (the pipeline
partition is two aspects — split and forward — because its forwarding
must nest inside the concurrency layer, see ``concern.LAYER``).

A :class:`Composition` is an ordered set of modules deployed together —
the rows of Table 1 are compositions.  Compositions support::

    comp = Composition("FarmRMI", [partition, concurrency, distribution])
    with comp.deployed(weaver, targets=[PrimeFilter]):
        ...run...

    comp.unplug("distribution")   # the paper's debugging story
    comp.exchange("partition", farm_module)   # pipeline -> farm
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.aop import Aspect
from repro.aop.weaver import Weaver, default_weaver
from repro.errors import DeploymentError
from repro.parallel.concern import Concern

__all__ = ["ParallelModule", "Composition"]


class ParallelModule:
    """A named, atomically (un)pluggable group of aspects."""

    def __init__(self, name: str, concern: Concern, aspects: Iterable[Aspect]):
        self.name = name
        self.concern = concern
        self.aspects = tuple(aspects)
        if not self.aspects:
            raise DeploymentError(f"module {name!r} has no aspects")

    def deploy(self, weaver: Weaver, targets: Iterable[type] = ()) -> None:
        deployed: list[Aspect] = []
        try:
            for aspect in self.aspects:
                weaver.deploy(aspect, targets=targets)
                deployed.append(aspect)
        except Exception:
            for aspect in reversed(deployed):
                weaver.undeploy(aspect)
            raise

    def undeploy(self, weaver: Weaver) -> None:
        for aspect in reversed(self.aspects):
            if weaver.is_deployed(aspect):
                weaver.undeploy(aspect)

    def is_deployed(self, weaver: Weaver) -> bool:
        return all(weaver.is_deployed(a) for a in self.aspects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ParallelModule {self.name} [{self.concern}] x{len(self.aspects)}>"


class Composition:
    """An ordered stack of modules — one Table-1 configuration."""

    def __init__(self, name: str, modules: Iterable[ParallelModule] = ()):
        self.name = name
        self.modules: list[ParallelModule] = list(modules)
        self._live_weaver: Weaver | None = None
        self._live_targets: tuple[type, ...] = ()

    # -- structure ---------------------------------------------------------

    def plug(self, module: ParallelModule) -> "Composition":
        """Add a module (deploys immediately if the composition is live)."""
        if any(m.name == module.name for m in self.modules):
            raise DeploymentError(f"module {module.name!r} already plugged")
        self.modules.append(module)
        if self._live_weaver is not None:
            module.deploy(self._live_weaver, targets=self._live_targets)
        return self

    def unplug(self, name: str) -> ParallelModule:
        """Remove a module by name (undeploys if live)."""
        for i, module in enumerate(self.modules):
            if module.name == name:
                del self.modules[i]
                if self._live_weaver is not None:
                    module.undeploy(self._live_weaver)
                return module
        raise DeploymentError(f"no module named {name!r} in {self.name}")

    def exchange(self, name: str, replacement: ParallelModule) -> ParallelModule:
        """Swap one module for another (the pipeline→farm move)."""
        removed = self.unplug(name)
        self.plug(replacement)
        return removed

    def module(self, name: str) -> ParallelModule:
        for module in self.modules:
            if module.name == name:
                return module
        raise DeploymentError(f"no module named {name!r} in {self.name}")

    def by_concern(self, concern: Concern) -> list[ParallelModule]:
        return [m for m in self.modules if m.concern is concern]

    # -- deployment ---------------------------------------------------------

    def deploy(
        self, weaver: Weaver | None = None, targets: Iterable[type] = ()
    ) -> None:
        weaver = weaver if weaver is not None else default_weaver
        if self._live_weaver is not None:
            raise DeploymentError(f"composition {self.name!r} is already deployed")
        self._live_targets = tuple(targets)
        deployed: list[ParallelModule] = []
        try:
            for module in self.modules:
                module.deploy(weaver, targets=self._live_targets)
                deployed.append(module)
        except Exception:
            for module in reversed(deployed):
                module.undeploy(weaver)
            raise
        self._live_weaver = weaver

    def undeploy(self) -> None:
        if self._live_weaver is None:
            return
        for module in reversed(self.modules):
            module.undeploy(self._live_weaver)
        self._live_weaver = None
        self._live_targets = ()

    @contextmanager
    def deployed(
        self, weaver: Weaver | None = None, targets: Iterable[type] = ()
    ) -> Iterator["Composition"]:
        self.deploy(weaver, targets)
        try:
            yield self
        finally:
            self.undeploy()

    def describe(self) -> str:
        """Table-1-style row: which concern is filled by which module."""
        cells = []
        for concern in (Concern.PARTITION, Concern.CONCURRENCY, Concern.DISTRIBUTION, Concern.OPTIMISATION):
            modules = self.by_concern(concern)
            cells.append(
                f"{concern}: " + (", ".join(m.name for m in modules) if modules else "-")
            )
        return f"{self.name}  |  " + "  |  ".join(cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Composition {self.name} modules={[m.name for m in self.modules]}>"
