"""Distribution concern (paper Section 4.3 / Figure 13-15).

The distribution aspect intercepts *both sides* of a call:

* at the client, constructions of distributable objects are associated
  with freshly exported remote servants on placement-chosen nodes, and
  calls on those objects are redirected through the middleware;
* at the server, the servant executes the call locally — our middlewares
  flag servant execution (``in_server_dispatch``), which is what makes
  every parallelisation aspect step aside there.

Concrete subclasses bind the middleware flavour (RMI, MPP, hybrid); the
pattern — create-remote on ``new``, redirect on call, catch remote
errors — is shared and matches the four code modifications the paper
enumerates for RMI.
"""

from __future__ import annotations

from typing import Any

from repro.aop import abstract_pointcut, around, pointcut
from repro.aop.plan import BatchJoinPoint, ctor_pack_of
from repro.errors import RemoteError
from repro.middleware.base import Middleware, RemoteRef
from repro.middleware.placement import PlacementPolicy, RoundRobin
from repro.middleware.serialize import Serializer
from repro.parallel.concern import LAYER, Concern, ParallelAspect

__all__ = ["DistributionAspect"]


class DistributionAspect(ParallelAspect):
    """Create-remote + redirect-call, generic over the middleware."""

    concern = Concern.DISTRIBUTION
    precedence = LAYER["distribution"]

    remote_new = abstract_pointcut("constructions to distribute")
    remote_calls = abstract_pointcut("calls to redirect to the servant")

    #: methods invoked one-way when the middleware supports it
    oneway_methods: frozenset[str] = frozenset()

    def __init__(
        self,
        middleware: Middleware,
        placement: PlacementPolicy | None = None,
        remote_new: str | None = None,
        remote_calls: str | None = None,
        name_prefix: str = "PS",
    ):
        self.middleware = middleware
        self.placement = placement if placement is not None else RoundRobin()
        if remote_new is not None:
            self.remote_new = pointcut(remote_new)
        if remote_calls is not None:
            self.remote_calls = pointcut(remote_calls)
        self.name_prefix = name_prefix
        self._cloner = Serializer(copy=True)
        #: id(local obj) -> (local obj, RemoteRef)
        self._refs: dict[int, tuple[Any, RemoteRef]] = {}
        self.count = 0
        self.redirected = 0
        self.remote_errors = 0

    # -- hooks for subclasses -----------------------------------------------

    def register(self, servant: Any, node: Any, name: str) -> RemoteRef:
        """Export ``servant`` on ``node``; returns the client-side ref."""
        return self.middleware.export(servant, node)

    def make_servant(self, obj: Any) -> Any:
        """Server-side instance (a state copy, value semantics)."""
        return self._cloner.clone(obj)

    def is_oneway(self, jp) -> bool:
        return jp.name in self.oneway_methods

    # -- advice -----------------------------------------------------------------

    @around("remote_new")
    def create_remote(self, jp):
        """Client-side 'new' → remote instance association (Fig 14
        lines 09-16).

        Batch-aware: a :class:`~repro.aop.plan.CtorPack` travelling
        through the joinpoint (a partition aspect's batched duplication)
        makes ``proceed`` return the whole duplicate list — each
        instance is exported in index order within this single advice
        execution, so a farm of N workers pays one initialization
        joinpoint, not N.
        """
        if self.passthrough(jp):
            return jp.proceed()
        result = jp.proceed()  # local reference(s) the client will hold
        if ctor_pack_of(jp) is not None:
            for obj in result:
                self._associate(obj)
            return result
        self._associate(result)
        return result

    def _associate(self, obj: Any) -> None:
        """Export one freshly built instance and remember its ref."""
        self.count += 1
        cluster = getattr(self.middleware, "cluster", None)
        node = (
            self.placement.choose(cluster, self.count - 1, obj)
            if cluster is not None
            else None
        )
        servant = self.make_servant(obj)
        ref = self.register(servant, node, f"{self.name_prefix}{self.count}")
        self._refs[id(obj)] = (obj, ref)

    def remote_invoke(
        self, middleware: Middleware, ref: RemoteRef, jp, oneway: bool = False
    ) -> Any:
        """One middleware invocation for ``jp`` — batched joinpoints ship
        the whole pack as one request served through the servant's
        :meth:`~repro.aop.plan.MethodTable.invoke_batch` (fire-and-forget
        when the method is declared ``oneway``: one message, no reply
        wait)."""
        if isinstance(jp, BatchJoinPoint):
            # jp.args[0] is the pack at THIS advice level — an outer
            # around may have substituted it via proceed(new_pieces)
            return middleware.invoke_batch(ref, jp.name, jp.args[0], oneway=oneway)
        return middleware.invoke(ref, jp.name, jp.args, jp.kwargs, oneway=oneway)

    @around("remote_calls")
    def redirect(self, jp):
        """Client-side call → middleware invocation (Fig 14 lines 18-23),
        including the RemoteException handler logic."""
        if self.passthrough(jp):
            return jp.proceed()
        entry = self._refs.get(id(jp.target))
        if entry is None or entry[0] is not jp.target:
            return jp.proceed()  # not a distributed object
        self.redirected += 1
        try:
            return self.remote_invoke(
                self.middleware, entry[1], jp, oneway=self.is_oneway(jp)
            )
        except RemoteError:
            self.remote_errors += 1
            raise

    # -- introspection -----------------------------------------------------------

    def ref_of(self, obj: Any) -> RemoteRef | None:
        entry = self._refs.get(id(obj))
        return entry[1] if entry is not None and entry[0] is obj else None

    def on_undeploy(self) -> None:
        self._refs.clear()
