"""Distribution concern: RMI, MPP and hybrid distribution aspects."""

from repro.parallel.distribution.base import DistributionAspect
from repro.parallel.distribution.hybrid import (
    HybridDistributionAspect,
    hybrid_distribution_module,
)
from repro.parallel.distribution.mpp_aspect import (
    MppDistributionAspect,
    mpp_distribution_module,
)
from repro.parallel.distribution.proc_aspect import (
    ProcDistributionAspect,
    proc_distribution_module,
)
from repro.parallel.distribution.rmi_aspect import (
    RmiDistributionAspect,
    rmi_distribution_module,
)

__all__ = [
    "DistributionAspect",
    "RmiDistributionAspect",
    "rmi_distribution_module",
    "MppDistributionAspect",
    "mpp_distribution_module",
    "HybridDistributionAspect",
    "hybrid_distribution_module",
    "ProcDistributionAspect",
    "proc_distribution_module",
]
