"""Process distribution aspect: create-and-redirect over real processes.

The same create-and-redirect pattern as the RMI/MPP aspects, but the
middleware underneath is :class:`~repro.middleware.proc.ProcMiddleware`,
whose export genuinely ships the servant into another OS process.  Two
deliberate differences from the simulated aspects:

* ``make_servant`` is the identity — the simulated middlewares deep-copy
  the object to fake value semantics, but here pickling across the pipe
  IS the copy, and cloning first would pay it twice;
* there is no placement policy and no cluster: workers are homogeneous
  OS processes, one per servant, placed by the operating system.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.api.registry import register_middleware
from repro.middleware.proc import ProcMiddleware
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.distribution.base import DistributionAspect

__all__ = ["ProcDistributionAspect", "proc_distribution_module", "proc_bundle"]


class ProcDistributionAspect(DistributionAspect):
    """Distribution over resident worker processes."""

    def __init__(
        self,
        middleware: ProcMiddleware,
        placement: Any = None,
        remote_new: str | None = None,
        remote_calls: str | None = None,
        name_prefix: str = "Proc",
        oneway: Iterable[str] = (),
    ):
        super().__init__(
            middleware,
            placement,
            remote_new=remote_new,
            remote_calls=remote_calls,
            name_prefix=name_prefix,
        )
        self.oneway_methods = frozenset(oneway)

    def make_servant(self, obj: Any) -> Any:
        """Identity: the pickle crossing the pipe at export is the value
        copy; a parent-side clone first would serialise twice."""
        return obj


def proc_distribution_module(
    middleware: ProcMiddleware,
    remote_new: str,
    remote_calls: str,
    placement: Any = None,
    name: str = "distribution-process",
    **kwargs: Any,
) -> ParallelModule:
    aspect = ProcDistributionAspect(
        middleware,
        placement,
        remote_new=remote_new,
        remote_calls=remote_calls,
        **kwargs,
    )
    module = ParallelModule(name, Concern.DISTRIBUTION, [aspect])
    module.aspect = aspect  # type: ignore[attr-defined]
    return module


@register_middleware("process")
def proc_bundle(
    cluster: Any,
    creation: str,
    work: str,
    placement: Any = None,
    oneway: Iterable[str] = (),
    backend: Any = None,
    **options: Any,
) -> tuple[ProcMiddleware, None, ParallelModule]:
    """Registry entry: process middleware + its distribution module.

    ``backend`` (a :class:`~repro.runtime.procbackend.ProcessBackend`)
    arrives from :class:`~repro.api.app.ParallelApp` because this bundle
    sets ``wants_backend`` — the middleware parks its workers on the
    app's backend so teardown and leak accounting see one worker list.
    """
    middleware = ProcMiddleware(backend=backend)
    module = proc_distribution_module(
        middleware, creation, work, placement=placement, oneway=oneway, **options
    )
    return middleware, None, module


#: this middleware runs on the local machine: no cluster required
proc_bundle.requires_cluster = False  # type: ignore[attr-defined]
#: ask ParallelApp to pass its resolved backend into the bundle call
proc_bundle.wants_backend = True  # type: ignore[attr-defined]
