"""Hybrid distribution.

"It is also possible to develop a hybrid implementation, using MPP and
RMI" — performance-critical (data) methods travel over MPP while the
remaining (control) methods use RMI.  The servant object is shared by
both middlewares' server activities on the same node, so state stays
consistent regardless of which transport carried the call.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.aop import around
from repro.api.registry import register_middleware
from repro.errors import DeploymentError, RemoteError
from repro.middleware.mpp import MppMiddleware
from repro.middleware.placement import PlacementPolicy
from repro.middleware.rmi import RmiMiddleware
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.distribution.base import DistributionAspect

__all__ = [
    "HybridDistributionAspect",
    "hybrid_distribution_module",
    "hybrid_bundle",
]


class HybridDistributionAspect(DistributionAspect):
    """RMI for control calls, MPP for the listed data methods."""

    def __init__(
        self,
        rmi: RmiMiddleware,
        mpp: MppMiddleware,
        data_methods: Iterable[str],
        placement: PlacementPolicy | None = None,
        remote_new: str | None = None,
        remote_calls: str | None = None,
        name_prefix: str = "HY",
    ):
        super().__init__(
            rmi,
            placement,
            remote_new=remote_new,
            remote_calls=remote_calls,
            name_prefix=name_prefix,
        )
        self.mpp = mpp
        self.data_methods = frozenset(data_methods)
        #: id(local obj) -> MPP ref for the same servant
        self._mpp_refs: dict[int, Any] = {}
        self.data_calls = 0
        self.control_calls = 0

    def register(self, servant: Any, node: Any, name: str) -> Any:
        rmi_ref = self.middleware.export_and_bind(name, servant, node)
        # the SAME servant exported to MPP: both transports reach one state
        self._pending_mpp_ref = self.mpp.export(servant, node)
        return self.middleware.lookup(name)

    def _associate(self, obj):
        # extends the base association (which is pack-aware and calls
        # this once per instance) with the MPP export bookkeeping
        super()._associate(obj)
        self._mpp_refs[id(obj)] = self._pending_mpp_ref

    @around("remote_calls")
    def redirect(self, jp):
        if self.passthrough(jp):
            return jp.proceed()
        entry = self._refs.get(id(jp.target))
        if entry is None or entry[0] is not jp.target:
            return jp.proceed()
        self.redirected += 1
        try:
            if jp.name in self.data_methods:
                self.data_calls += 1
                return self.remote_invoke(
                    self.mpp,
                    self._mpp_refs[id(jp.target)],
                    jp,
                    oneway=self.is_oneway(jp),
                )
            self.control_calls += 1
            return self.remote_invoke(self.middleware, entry[1], jp)
        except RemoteError:
            self.remote_errors += 1
            raise

    def on_undeploy(self) -> None:
        super().on_undeploy()
        self._mpp_refs.clear()


def hybrid_distribution_module(
    rmi: RmiMiddleware,
    mpp: MppMiddleware,
    data_methods: Iterable[str],
    remote_new: str,
    remote_calls: str,
    placement: PlacementPolicy | None = None,
    name: str = "distribution-hybrid",
    **kwargs: Any,
) -> ParallelModule:
    aspect = HybridDistributionAspect(
        rmi,
        mpp,
        data_methods,
        placement,
        remote_new=remote_new,
        remote_calls=remote_calls,
        **kwargs,
    )
    module = ParallelModule(name, Concern.DISTRIBUTION, [aspect])
    module.aspect = aspect  # type: ignore[attr-defined]
    return module


@register_middleware("hybrid")
def hybrid_bundle(
    cluster: Any,
    creation: str,
    work: str,
    placement: PlacementPolicy | None = None,
    oneway: Iterable[str] = (),
    data_methods: Iterable[str] = (),
    **options: Any,
) -> tuple[RmiMiddleware, MppMiddleware, ParallelModule]:
    """Registry entry: RMI control + MPP data transports in one module.

    ``data_methods`` names the calls that travel over MPP; everything
    else uses RMI.  Only the MPP path supports fire-and-forget, so a
    ``oneway`` method that is not also a data method is rejected
    eagerly — its declaration would otherwise be silently ignored on
    the blocking RMI control path.
    """
    oneway = tuple(oneway)
    data_methods = tuple(data_methods)
    missing = set(oneway) - set(data_methods)
    if missing:
        raise DeploymentError(
            f"hybrid oneway methods must travel the MPP data path; "
            f"{sorted(missing)} missing from data_methods={list(data_methods)}"
        )
    rmi = RmiMiddleware(cluster)
    mpp = MppMiddleware(cluster)
    module = hybrid_distribution_module(
        rmi,
        mpp,
        data_methods,
        creation,
        work,
        placement=placement,
        **options,
    )
    if oneway:
        module.aspect.oneway_methods = frozenset(oneway)  # type: ignore[attr-defined]
    return rmi, mpp, module
