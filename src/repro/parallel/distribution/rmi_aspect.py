"""RMI distribution aspect (paper Figure 14).

Modularises the four RMI code modifications:

1. the remote interface — optional ``declare parents`` against a marker
   interface, supplied via ``remote_interface``;
2. export + registry bind under generated names ``PS1, PS2, ...``
   (``String name = new String("PS" + (++count))``);
3. client lookup of the initial reference (pays a registry round-trip);
4. the RemoteException handler around redirected calls (in the base
   class's ``redirect`` advice).
"""

from __future__ import annotations

from typing import Any

from repro.aop import ParentDeclaration
from repro.middleware.placement import PlacementPolicy
from repro.middleware.rmi import RmiMiddleware
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.distribution.base import DistributionAspect

__all__ = ["RmiDistributionAspect", "rmi_distribution_module"]


class RmiDistributionAspect(DistributionAspect):
    """Distribution over (simulated) Java RMI."""

    def __init__(
        self,
        middleware: RmiMiddleware,
        placement: PlacementPolicy | None = None,
        remote_new: str | None = None,
        remote_calls: str | None = None,
        name_prefix: str = "PS",
        remote_interface: type | None = None,
        distributed_classes: tuple[type, ...] = (),
    ):
        super().__init__(
            middleware,
            placement,
            remote_new=remote_new,
            remote_calls=remote_calls,
            name_prefix=name_prefix,
        )
        # modification #1: declare the class to implement the remote
        # interface, from within the aspect (static crosscutting)
        if remote_interface is not None and distributed_classes:
            self.parents = [
                ParentDeclaration(cls, remote_interface)
                for cls in distributed_classes
            ]

    def register(self, servant: Any, node: Any, name: str) -> Any:
        # modification #2 (server side): export + bind
        self.middleware.export_and_bind(name, servant, node)
        # modification #3 (client side): initial reference via lookup —
        # charges the registry round-trip like a real Naming.lookup
        return self.middleware.lookup(name)


def rmi_distribution_module(
    middleware: RmiMiddleware,
    remote_new: str,
    remote_calls: str,
    placement: PlacementPolicy | None = None,
    name: str = "distribution-rmi",
    **kwargs: Any,
) -> ParallelModule:
    aspect = RmiDistributionAspect(
        middleware,
        placement,
        remote_new=remote_new,
        remote_calls=remote_calls,
        **kwargs,
    )
    module = ParallelModule(name, Concern.DISTRIBUTION, [aspect])
    module.aspect = aspect  # type: ignore[attr-defined]
    return module
