"""RMI distribution aspect (paper Figure 14).

Modularises the four RMI code modifications:

1. the remote interface — optional ``declare parents`` against a marker
   interface, supplied via ``remote_interface``;
2. export + registry bind under generated names ``PS1, PS2, ...``
   (``String name = new String("PS" + (++count))``);
3. client lookup of the initial reference (pays a registry round-trip);
4. the RemoteException handler around redirected calls (in the base
   class's ``redirect`` advice).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.aop import ParentDeclaration
from repro.api.registry import register_middleware
from repro.errors import DeploymentError
from repro.middleware.placement import PlacementPolicy
from repro.middleware.rmi import RmiMiddleware
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.distribution.base import DistributionAspect

__all__ = ["RmiDistributionAspect", "rmi_distribution_module", "rmi_bundle"]


class RmiDistributionAspect(DistributionAspect):
    """Distribution over (simulated) Java RMI."""

    def __init__(
        self,
        middleware: RmiMiddleware,
        placement: PlacementPolicy | None = None,
        remote_new: str | None = None,
        remote_calls: str | None = None,
        name_prefix: str = "PS",
        remote_interface: type | None = None,
        distributed_classes: tuple[type, ...] = (),
    ):
        super().__init__(
            middleware,
            placement,
            remote_new=remote_new,
            remote_calls=remote_calls,
            name_prefix=name_prefix,
        )
        # modification #1: declare the class to implement the remote
        # interface, from within the aspect (static crosscutting)
        if remote_interface is not None and distributed_classes:
            self.parents = [
                ParentDeclaration(cls, remote_interface)
                for cls in distributed_classes
            ]

    def register(self, servant: Any, node: Any, name: str) -> Any:
        # modification #2 (server side): export + bind
        self.middleware.export_and_bind(name, servant, node)
        # modification #3 (client side): initial reference via lookup —
        # charges the registry round-trip like a real Naming.lookup
        return self.middleware.lookup(name)


def rmi_distribution_module(
    middleware: RmiMiddleware,
    remote_new: str,
    remote_calls: str,
    placement: PlacementPolicy | None = None,
    name: str = "distribution-rmi",
    **kwargs: Any,
) -> ParallelModule:
    aspect = RmiDistributionAspect(
        middleware,
        placement,
        remote_new=remote_new,
        remote_calls=remote_calls,
        **kwargs,
    )
    module = ParallelModule(name, Concern.DISTRIBUTION, [aspect])
    module.aspect = aspect  # type: ignore[attr-defined]
    return module


@register_middleware("rmi")
def rmi_bundle(
    cluster: Any,
    creation: str,
    work: str,
    placement: PlacementPolicy | None = None,
    oneway: Iterable[str] = (),
    **options: Any,
) -> tuple[RmiMiddleware, None, ParallelModule]:
    """Registry entry: RMI middleware + its distribution module.

    RMI has no one-way invocations (Java semantics), so a non-empty
    ``oneway`` declaration is rejected *eagerly* — accepting it would
    make every call to the declared method fail at invocation time.
    """
    oneway = tuple(oneway)
    if oneway:
        raise DeploymentError(
            f"RMI has no one-way invocations; oneway={list(oneway)} needs "
            f"the 'mpp' middleware (or 'hybrid' with those methods listed "
            f"in data_methods)"
        )
    middleware = RmiMiddleware(cluster)
    module = rmi_distribution_module(
        middleware, creation, work, placement=placement, **options
    )
    return middleware, None, module
