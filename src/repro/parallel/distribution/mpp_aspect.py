"""MPP distribution aspect (paper Figure 15).

Same create-and-redirect pattern as RMI, but over the message-passing
middleware: no name server (refs are exchanged directly, like rank ids),
cheaper marshalling, and genuinely one-way sends for methods declared
``oneway`` ("the remote method invocation is performed through a message
send").  The servant's receive loop is the middleware's server activity —
the aspect stays a thin policy layer, which is exactly the paper's claim
about exchanging middlewares.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.api.registry import register_middleware
from repro.middleware.mpp import MppMiddleware
from repro.middleware.placement import PlacementPolicy
from repro.parallel.composition import ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.distribution.base import DistributionAspect

__all__ = ["MppDistributionAspect", "mpp_distribution_module", "mpp_bundle"]


class MppDistributionAspect(DistributionAspect):
    """Distribution over the (simulated) MPP library."""

    def __init__(
        self,
        middleware: MppMiddleware,
        placement: PlacementPolicy | None = None,
        remote_new: str | None = None,
        remote_calls: str | None = None,
        name_prefix: str = "MP",
        oneway: Iterable[str] = (),
    ):
        super().__init__(
            middleware,
            placement,
            remote_new=remote_new,
            remote_calls=remote_calls,
            name_prefix=name_prefix,
        )
        self.oneway_methods = frozenset(oneway)


def mpp_distribution_module(
    middleware: MppMiddleware,
    remote_new: str,
    remote_calls: str,
    placement: PlacementPolicy | None = None,
    name: str = "distribution-mpp",
    **kwargs: Any,
) -> ParallelModule:
    aspect = MppDistributionAspect(
        middleware,
        placement,
        remote_new=remote_new,
        remote_calls=remote_calls,
        **kwargs,
    )
    module = ParallelModule(name, Concern.DISTRIBUTION, [aspect])
    module.aspect = aspect  # type: ignore[attr-defined]
    return module


@register_middleware("mpp")
def mpp_bundle(
    cluster: Any,
    creation: str,
    work: str,
    placement: PlacementPolicy | None = None,
    oneway: Iterable[str] = (),
    **options: Any,
) -> tuple[MppMiddleware, None, ParallelModule]:
    """Registry entry: MPP middleware + its distribution module."""
    middleware = MppMiddleware(cluster)
    module = mpp_distribution_module(
        middleware, creation, work, placement=placement, oneway=oneway, **options
    )
    return middleware, None, module
