"""Out-of-process execution backend: resident servant worker processes.

Every other backend runs in one interpreter under one GIL, so CPU-bound
farm/pipeline runs gain nothing from extra cores.  This backend is the
"as fast as the hardware allows" substrate ROADMAP names: caller-side
activities stay OS threads (the :class:`~repro.runtime.threads.ThreadBackend`
primitives and wall clock are inherited unchanged — deadlines and
admission waits mean the same thing), while **servant execution** moves
into resident `multiprocessing` worker processes, one per exported
servant, each holding the servant's compiled
:class:`~repro.aop.plan.MethodTable`.

The process boundary deliberately lives at the *middleware* layer
(:class:`~repro.middleware.proc.ProcMiddleware`), not at ``spawn()``:
closures cannot cross processes, but the middleware request path already
ships picklable envelopes with a ``context_id`` — exactly what PR 3-5
laid down for the simulated transports.  What crosses the boundary:

* at export — one :class:`~repro.middleware.serialize.ExportEnvelope`
  carrying the pickled servant (value semantics: pickling IS the copy);
* per call — one :class:`~repro.middleware.serialize.RequestEnvelope`
  (a whole pack is ONE envelope) and one reply frame;
* never — dispatch tickets, locks, futures, or aspects.  Tickets travel
  as ids and all collector/deadline bookkeeping stays caller-side.

Worker lifecycle: forked lazily at export, resident until the
middleware's ``shutdown`` (reached from ``on_undeploy`` /
``ParallelApp.__exit__``), with an ``atexit`` backstop and daemon
processes so an orphaned run cannot leak children.  A worker found dead
while a reply is pending raises :class:`~repro.errors.WorkerCrashed`
(pid + exit code in the message) instead of hanging — in-flight splits
fail fast through their collectors.

Forked children inherit the parent's *woven* classes and deployed
aspects; the worker loop therefore executes every request under the
``server_dispatch`` marker (via
:func:`~repro.middleware.base.perform_request`), which is what makes
the inherited parallelisation advice step aside — the same contract the
simulated middlewares' servant activities follow.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
from typing import Any, Callable

from repro.api.registry import register_backend
from repro.errors import BackendError, WorkerCrashed
from repro.runtime.threads import ThreadBackend

__all__ = ["ProcessBackend", "ProcWorker", "STOP_FRAME"]

#: raw stop frame — recognised by the worker loop BEFORE unpickling, so
#: shutdown never depends on a healthy codec
STOP_FRAME = b"__repro_proc_stop__"


def _start_method() -> str:
    """``fork`` where available (the child inherits ``sys.modules``, so
    test-module servant classes resolve without being importable by
    path), ``spawn`` otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _worker_main(conn: Any) -> None:
    """Child entry point: host servants, serve envelope requests.

    One request at a time (per-servant workers make the pipe the
    serialisation point); replies echo the request's ``call_id`` and
    ``context_id`` so an abandoned call's late reply is identified and
    discarded by the parent instead of desynchronising the stream.
    Imports are deferred: the parent-side import graph stays acyclic
    and a spawn-started child pays them once here.
    """
    from repro.aop.plan import MethodTable
    from repro.errors import MiddlewareError, SerializationError
    from repro.middleware.base import perform_request
    from repro.middleware.serialize import (
        ExportEnvelope,
        ReplyEnvelope,
        decode_envelope,
        encode_envelope,
        exception_payload,
    )

    servants: dict[int, tuple[Any, MethodTable]] = {}
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            return  # the parent is gone: nothing left to serve
        if data == STOP_FRAME:
            return
        try:
            envelope = decode_envelope(data)
        except Exception as exc:  # noqa: BLE001 - reported, loop survives
            # call_id -1: "whatever you were waiting for" — the parent
            # treats it as the pending call's (fatal) reply
            conn.send_bytes(
                encode_envelope(
                    ReplyEnvelope(-1, "error", exception_payload(exc))
                )
            )
            continue
        if isinstance(envelope, ExportEnvelope):
            try:
                servants[envelope.object_id] = (
                    envelope.servant,
                    MethodTable(type(envelope.servant)),
                )
                outcome: tuple[str, Any] = ("ok", envelope.object_id)
            except Exception as exc:  # noqa: BLE001 - export ack carries it
                outcome = ("error", exception_payload(exc))
            conn.send_bytes(
                encode_envelope(ReplyEnvelope(0, outcome[0], outcome[1]))
            )
            continue
        entry = servants.get(envelope.object_id)
        if entry is None:
            outcome = (
                "error",
                MiddlewareError(
                    f"worker hosts no servant #{envelope.object_id}"
                ),
            )
        else:
            obj, table = entry
            outcome = perform_request(
                table,
                obj,
                envelope.method,
                envelope.args,
                envelope.kwargs,
                batch=envelope.batch,
            )
        if envelope.oneway:
            continue  # fire-and-forget: executed, no reply frame
        if outcome[0] == "error":
            outcome = ("error", exception_payload(outcome[1]))
        reply = ReplyEnvelope(
            envelope.call_id,
            outcome[0],
            outcome[1],
            context_id=envelope.context_id,
        )
        try:
            frame = encode_envelope(reply)
        except SerializationError as exc:
            # an unpicklable RESULT degrades to a targeted error reply —
            # the caller gets a SerializationError, never a hang
            frame = encode_envelope(
                ReplyEnvelope(
                    envelope.call_id,
                    "error",
                    exception_payload(exc),
                    context_id=envelope.context_id,
                )
            )
        conn.send_bytes(frame)


class ProcWorker:
    """One resident worker process plus its parent-side plumbing.

    Mirrors the shape of the thread-level
    :class:`~repro.parallel.concurrency.asynchronous.PooledSpawner`'s
    pinned workers: a long-lived activity fed through a private channel
    (here a duplex pipe), serialised by a parent-side lock, torn down by
    a sentinel.  The reply wait polls so it can interleave liveness and
    cooperative-cancellation checks — a dead worker raises
    :class:`~repro.errors.WorkerCrashed` instead of blocking forever.
    """

    #: reply-poll granularity (also the cadence of deadline/death checks)
    POLL_INTERVAL = 0.02

    def __init__(self, index: int, name: str = "proc.worker"):
        self.index = index
        self.name = f"{name}{index}"
        ctx = multiprocessing.get_context(_start_method())
        self.conn, child_conn = ctx.Pipe()
        #: serialises request/reply round-trips on the shared pipe
        self.lock = threading.Lock()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=self.name,
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # the parent keeps only its own end
        self._stopped = False

    @property
    def pid(self) -> int | None:
        """The worker process's OS pid (``None`` before it starts)."""
        return self.process.pid

    @property
    def alive(self) -> bool:
        """Is the worker process still running?"""
        return self.process.is_alive()

    # -- request/reply ------------------------------------------------------

    def send(self, data: bytes) -> None:
        """Ship one request frame; a dead worker or broken pipe raises
        :class:`~repro.errors.WorkerCrashed` instead of hanging."""
        if not self.process.is_alive():
            raise WorkerCrashed(self._obituary("before a send"))
        try:
            self.conn.send_bytes(data)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(
                self._obituary(f"during a send ({exc})")
            ) from exc

    def recv(self, check: Callable[[], None] | None = None) -> bytes:
        """Block for the next reply frame.

        ``check`` is the cooperative cancellation hook called between
        polls — the middleware passes the ambient ticket's
        ``check_deadline`` so a per-call deadline expires *during* the
        reply wait, not after it.
        """
        while True:
            try:
                if self.conn.poll(self.POLL_INTERVAL):
                    return self.conn.recv_bytes()
            except (EOFError, OSError) as exc:
                raise WorkerCrashed(
                    self._obituary("awaiting its reply")
                ) from exc
            if not self.process.is_alive():
                # drain a reply that raced the death
                if self.conn.poll(0):
                    return self.conn.recv_bytes()
                raise WorkerCrashed(self._obituary("awaiting its reply"))
            if check is not None:
                check()

    def _obituary(self, when: str) -> str:
        # reap first so the exit code is populated, not a stale None
        self.process.join(0.2)
        return (
            f"worker process {self.name} (pid {self.pid}) died {when} "
            f"(exitcode {self.process.exitcode}); its in-flight splits "
            f"fail fast instead of hanging"
        )

    # -- lifecycle ----------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL the worker (fault-injection hook for death tests)."""
        self.process.kill()

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful stop: sentinel, join, escalate to terminate."""
        if self._stopped:
            return
        self._stopped = True
        if self.process.is_alive():
            try:
                self.conn.send_bytes(STOP_FRAME)
            except (BrokenPipeError, OSError):
                pass  # already dying; the join/terminate below settles it
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.process.is_alive() else "dead"
        return f"<ProcWorker {self.name} pid={self.pid} {state}>"


class ProcessBackend(ThreadBackend):
    """Thread-backed caller side + resident servant worker processes.

    Subclassing :class:`~repro.runtime.threads.ThreadBackend` is the
    point, not a shortcut: submissions, admission waits, collectors and
    futures all live in the parent and need real-thread semantics on the
    wall clock (``now`` is inherited ``time.monotonic``, so ``timeout=``
    means wall seconds exactly as on threads).  The processes this
    backend adds host *servants*, reached through
    :class:`~repro.middleware.proc.ProcMiddleware` — never through
    ``spawn()``, which cannot ship closures across a process boundary.
    """

    name = "process"

    def __init__(self) -> None:
        super().__init__()
        #: every worker ever started, in export order (index == position)
        self.workers: list[ProcWorker] = []
        self._workers_lock = threading.Lock()
        self._atexit_armed = False

    def new_worker(self) -> ProcWorker:
        """Fork one resident worker process and track it for teardown."""
        with self._workers_lock:
            worker = ProcWorker(len(self.workers))
            self.workers.append(worker)
            if not self._atexit_armed:
                # backstop only: the middleware's shutdown is the real
                # teardown path; daemon processes close the last gap
                atexit.register(self.stop_workers)
                self._atexit_armed = True
        return worker

    def stop_workers(self) -> None:
        """Stop every live worker (idempotent)."""
        with self._workers_lock:
            workers = list(self.workers)
        for worker in workers:
            worker.stop()

    @property
    def live_workers(self) -> int:
        """Worker processes currently alive (leak observability)."""
        return sum(1 for worker in self.workers if worker.alive)


@register_backend("process")
def _make_process_backend(cluster: Any = None, sim: Any = None) -> ProcessBackend:
    """Registry factory for the out-of-process backend.

    Rejects simulated clusters eagerly: real OS processes cannot run on
    virtual time or simulated nodes — simulated distribution is the sim
    backend's job.
    """
    if cluster is not None:
        raise BackendError(
            "backend 'process' runs real OS worker processes and cannot "
            "attach to a simulated cluster; use backend='sim' with "
            "middleware 'rmi'/'mpp' for simulated distribution"
        )
    return ProcessBackend()
