"""Execution-backend abstraction.

The paper's concurrency aspect spawns Java threads.  Ours spawns through
an :class:`ExecutionBackend`, which is what lets the *same aspect code*
run both functionally (real threads) and on the simulated cluster
(simulated processes on virtual time).  This is itself an instance of the
paper's argument: the platform choice is a pluggable concern.

A backend provides:

* ``spawn(fn)``  → a :class:`TaskHandle` with ``join()``;
* lock / event / queue factories with uniform semantics;
* an optional notion of *where* work runs (the sim backend can pin the
  spawned activity's CPU charges to a node — used by the cost model).

The *current* backend is tracked per thread (simulated processes are
threads, so this is correct in both modes) with a global default of
:class:`~repro.runtime.threads.ThreadBackend`.
"""

from __future__ import annotations

import abc
import inspect
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.errors import BackendError
from repro.runtime.dispatch import bind_dispatch

__all__ = [
    "TaskHandle",
    "ExecutionBackend",
    "current_backend",
    "use_backend",
    "set_default_backend",
]


class TaskHandle(abc.ABC):
    """Handle on a spawned activity."""

    @abc.abstractmethod
    def join(self) -> Any:
        """Wait for completion; return the activity's result or raise its
        exception."""

    @property
    @abc.abstractmethod
    def done(self) -> bool:
        """Has the activity finished (successfully or not)?"""


class ExecutionBackend(abc.ABC):
    """Factory for concurrency primitives in one execution mode."""

    name: str = "backend"

    def spawn(
        self, fn: Callable[[], Any], name: str | None = None, **kwargs: Any
    ) -> TaskHandle:
        """Run ``fn`` concurrently; returns a joinable handle.

        Template method: the caller's ambient dispatch ticket
        (:mod:`repro.runtime.dispatch`) is captured HERE, once, so every
        backend — including third-party ones registered via
        ``register_backend`` — propagates per-call collector routing
        into the spawned activity by construction.  Backends implement
        :meth:`_spawn`; thunks marked with
        :func:`~repro.runtime.dispatch.shield_dispatch` (long-lived
        workers) pass through uncaptured.

        The spawned activity also runs with THIS backend as its ambient
        one (:func:`use_backend`): work a backend spawns belongs to that
        backend, so resolution points deep inside worker activities
        (e.g. awaiting an async servant's coroutine) reach the backend
        that owns the loop instead of the process-wide default.
        """
        bound = bind_dispatch(fn)

        def run() -> Any:
            with use_backend(self):
                return bound()

        return self._spawn(run, name=name, **kwargs)

    @abc.abstractmethod
    def _spawn(
        self, fn: Callable[[], Any], name: str | None = None, **kwargs: Any
    ) -> TaskHandle:
        """Backend-specific activity creation (``fn`` is pre-bound)."""

    @abc.abstractmethod
    def make_lock(self, name: str = "lock") -> Any:
        """A (non-reentrant) context-manager lock."""

    @abc.abstractmethod
    def make_event(self, name: str = "event") -> Any:
        """An event with ``wait()`` / ``set(value=None)`` / ``is_set``."""

    @abc.abstractmethod
    def make_queue(self, name: str = "queue") -> Any:
        """A FIFO with blocking ``get()`` and ``put(item)``."""

    def now(self) -> float:
        """This backend's monotonic clock, in seconds.

        Deadlines and tracing spans are measured against the clock of
        the backend the call runs on: wall time for real threads, the
        simulator's virtual time for simulated processes — so a
        ``timeout=`` means the same thing in both execution modes.
        """
        return time.monotonic()

    def finish(self, outcome: Any) -> Any:
        """Resolve a dispatch outcome that may be backend-deferred.

        The asyncio backend overrides this to run awaitables to
        completion on its loop.  Everywhere else an awaitable outcome
        means an ``async def`` servant was dispatched on a backend with
        nowhere to run it — a configuration error, reported as such
        rather than leaking a raw coroutine into result merging.
        """
        if _carries_awaitables(outcome):
            _close_awaitables(outcome)
            raise BackendError(
                f"backend {self.name!r} cannot await an async servant "
                "result: async def servant methods need backend='asyncio' "
                "(every other backend runs plain methods only)"
            )
        return outcome

    def detach(self, outcome: Any) -> None:
        """Fire-and-forget a dispatch outcome (native oneway).

        Default backends have nothing deferred to keep alive, so this
        only validates the outcome the way :meth:`finish` does.
        """
        self.finish(outcome)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


def _carries_awaitables(outcome: Any) -> bool:
    """Does the outcome hold coroutines only an event loop could run?"""
    if inspect.isawaitable(outcome):
        return True
    return isinstance(outcome, list) and any(
        inspect.isawaitable(item) for item in outcome
    )


def _close_awaitables(outcome: Any) -> None:
    """Close orphaned coroutines so rejecting them does not also emit
    'coroutine was never awaited' warnings."""
    items = outcome if isinstance(outcome, list) else [outcome]
    for item in items:
        close = getattr(item, "close", None)
        if close is None:
            continue
        try:
            close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


class _BackendState(threading.local):
    def __init__(self) -> None:
        self.stack: list[ExecutionBackend] = []


_STATE = _BackendState()
_DEFAULT: list[ExecutionBackend | None] = [None]


def set_default_backend(backend: ExecutionBackend | None) -> None:
    """Set the process-wide fallback backend (``None`` restores the
    lazily created ThreadBackend)."""
    _DEFAULT[0] = backend


def current_backend() -> ExecutionBackend:
    """The innermost active backend for this thread.

    Falls back to the process-wide default; creating the default
    ThreadBackend lazily avoids import cycles.
    """
    if _STATE.stack:
        return _STATE.stack[-1]
    if _DEFAULT[0] is None:
        from repro.runtime.threads import ThreadBackend

        _DEFAULT[0] = ThreadBackend()
    return _DEFAULT[0]


@contextmanager
def use_backend(backend: ExecutionBackend) -> Iterator[ExecutionBackend]:
    """Make ``backend`` current for this thread within the block."""
    if not isinstance(backend, ExecutionBackend):
        raise BackendError(f"not an ExecutionBackend: {backend!r}")
    _STATE.stack.append(backend)
    try:
        yield backend
    finally:
        _STATE.stack.pop()
