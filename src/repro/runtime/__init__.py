"""Concurrency substrate: execution backends (threads / simulation),
futures with wait-by-necessity, and active objects."""

from repro.runtime.active import ActiveObject
from repro.runtime.asyncbackend import AsyncioBackend, AsyncioEvent
from repro.runtime.admission import (
    OVERFLOW_POLICIES,
    AdmissionController,
    AdmissionSlot,
    Deadline,
    current_envelope,
    use_envelope,
)
from repro.runtime.backend import (
    ExecutionBackend,
    TaskHandle,
    current_backend,
    set_default_backend,
    use_backend,
)
from repro.runtime.dispatch import (
    current_dispatch,
    dispatch_id,
    find_dispatch,
    use_dispatch,
)
from repro.runtime.futures import Future, FutureGroup
from repro.runtime.procbackend import ProcessBackend, ProcWorker
from repro.runtime.simbackend import SimBackend, SimTask
from repro.runtime.threads import ThreadBackend, ThreadTask

__all__ = [
    "ExecutionBackend",
    "TaskHandle",
    "current_backend",
    "use_backend",
    "set_default_backend",
    "ThreadBackend",
    "ThreadTask",
    "SimBackend",
    "SimTask",
    "ProcessBackend",
    "ProcWorker",
    "AsyncioBackend",
    "AsyncioEvent",
    "Future",
    "FutureGroup",
    "ActiveObject",
    "current_dispatch",
    "use_dispatch",
    "dispatch_id",
    "find_dispatch",
    "OVERFLOW_POLICIES",
    "AdmissionController",
    "AdmissionSlot",
    "Deadline",
    "current_envelope",
    "use_envelope",
]
