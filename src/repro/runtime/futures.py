"""Futures with wait-by-necessity.

The related-work section recalls ABCL's model: an asynchronous call with
a return value hands the client a *future*; touching the future before
the value is computed blocks the client transparently.  Our
:class:`Future` implements exactly that on top of whichever execution
backend is current, and :class:`FutureGroup` is the join-all helper the
partition aspects use to gather split-call results.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.errors import FutureError
from repro.runtime.backend import current_backend

__all__ = ["Future", "FutureGroup"]

_PENDING = object()


class Future:
    """Single-assignment result holder with blocking read."""

    def __init__(self, name: str = "future", backend: Any = None):
        self.name = name
        self._backend = backend if backend is not None else current_backend()
        self._event = self._backend.make_event(name=f"{name}.ready")
        self._value: Any = _PENDING
        self._exception: BaseException | None = None

    # -- producer side -----------------------------------------------------

    def set_result(self, value: Any) -> None:
        if self.resolved:
            raise FutureError(f"future {self.name} already resolved")
        self._value = value
        self._event.set()

    def set_exception(self, exc: BaseException) -> None:
        if self.resolved:
            raise FutureError(f"future {self.name} already resolved")
        self._exception = exc
        self._event.set()

    @classmethod
    def completed(cls, value: Any, name: str = "future") -> "Future":
        future = cls(name=name)
        future.set_result(value)
        return future

    def run(self, fn: Callable[[], Any]) -> "Future":
        """Resolve this future from ``fn`` executed inline (producer
        helper for spawn-style aspects)."""
        try:
            self.set_result(fn())
        except BaseException as exc:  # noqa: BLE001 - stored for consumer
            self.set_exception(exc)
            raise
        return self

    # -- consumer side -----------------------------------------------------

    @property
    def resolved(self) -> bool:
        return self._value is not _PENDING or self._exception is not None

    def result(self, timeout: float | None = None) -> Any:
        """Wait-by-necessity read: blocks until resolved."""
        if not self.resolved:
            if not self._event.wait(timeout):
                raise FutureError(f"future {self.name} timed out")
        if self._exception is not None:
            raise self._exception
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "resolved" if self.resolved else "pending"
        return f"<Future {self.name} {state}>"


class FutureGroup:
    """A set of futures joined together (split-call gather)."""

    def __init__(self) -> None:
        self._futures: list[Future] = []

    def add(self, future: Future) -> Future:
        self._futures.append(future)
        return future

    def new(self, name: str = "member") -> Future:
        return self.add(Future(name=name))

    def __len__(self) -> int:
        return len(self._futures)

    def __iter__(self) -> Iterator[Future]:
        return iter(self._futures)

    def results(self) -> list[Any]:
        """Block until every member resolves; results in add order."""
        return [future.result() for future in self._futures]

    def wait_all(self) -> None:
        for future in self._futures:
            future.result()

    @classmethod
    def of(cls, futures: Iterable[Future]) -> "FutureGroup":
        group = cls()
        for future in futures:
            group.add(future)
        return group
