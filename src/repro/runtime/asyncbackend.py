"""Asyncio-native execution backend (I/O-bound servants).

The paper's claim is that the execution platform is a pluggable concern.
PR 6 proved it for multi-core (``backend="process"``); this module
proves it for event-loop concurrency: ``backend="asyncio"`` gives
``async def`` servant methods a native home, overlapping thousands of
in-flight awaits on ONE event loop instead of burning a thread (or a
resident process) per in-flight call.

Shape
-----

:class:`AsyncioBackend` subclasses
:class:`~repro.runtime.threads.ThreadBackend` for the same reason
:class:`~repro.runtime.procbackend.ProcessBackend` does: the
*coordination* surface — ``ParallelApp.submit()/map()`` activities,
admission waits, collectors, resident pool dispatchers, futures — is
synchronous and blocking, so it keeps real-thread semantics.  What moves
onto the event loop is the *servant dispatch*: a woven call whose target
method is ``async def`` hands back a coroutine, and the backend bridges
it onto its loop as an :class:`asyncio.Task` (the call's activity),
resolving a plain :class:`~repro.runtime.futures.Future` through
:func:`asyncio.run_coroutine_threadsafe`.  Plain (sync) methods run
inline — exactly the split the paper's aspect decomposition suggests:
concurrency shape is the backend's business, not the servant's.

* ``now()`` is the **loop clock** (``loop.time()``), so per-ticket
  :class:`~repro.runtime.admission.Deadline` budgets translate directly
  into ``asyncio.wait_for`` timeouts: an expired deadline cancels the
  task *mid-await*, not at the next cooperative boundary.
* A shed or cancelled :class:`~repro.parallel.partition.base.DispatchContext`
  cancels its in-flight loop tasks through the ticket's cancel hooks.
* :meth:`make_event` returns an :class:`AsyncioEvent` — waitable from
  submitter threads (admission ``block`` parks on it) *and* awaitable
  from loop tasks (``await event.wait_async()``), the dual-face gate the
  backend's tests hold servants open with.
* The ``"loop"`` fault site fires once per bridged task with awaitable
  semantics: ``delay_reply`` is an ``await asyncio.sleep`` (the loop
  stays free), ``drop_reply`` discards an outcome that was actually
  computed.

One loop, owned by the backend, runs in a dedicated daemon thread
(started lazily, shared process-wide) so the synchronous submission API
keeps working unchanged.
"""

from __future__ import annotations

import asyncio
import atexit
import inspect
import threading
from typing import Any, Awaitable

from repro.api.registry import register_backend
from repro.errors import (
    BackendError,
    InjectedFault,
    ReplyDropped,
    WorkerKilled,
)
from repro.faults.schedule import fire_fault
from repro.runtime.backend import _close_awaitables
from repro.runtime.dispatch import current_dispatch
from repro.runtime.futures import Future
from repro.runtime.threads import ThreadBackend

__all__ = ["AsyncioBackend", "AsyncioEvent"]


class _LoopHost:
    """One long-lived event loop in a daemon thread, shared by every
    :class:`AsyncioBackend` instance (apps are cheap to build; loop
    threads are not — a singleton keeps "construct an app per test"
    from leaking a thread per construction)."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        atexit.register(self.stop)

    def ensure(self) -> None:
        """Start the loop thread if it is not running yet (idempotent;
        safe to race from many submitters)."""
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, name="repro.asyncio-loop", daemon=True
                )
                self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def stop(self) -> None:
        """Stop the loop thread (interpreter-exit hook; restartable via
        :meth:`ensure`)."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None and thread.is_alive() and self.loop.is_running():
            self.loop.call_soon_threadsafe(self.loop.stop)
            thread.join(timeout=1.0)


#: the process-wide loop host every AsyncioBackend shares
_HOST = _LoopHost()


class AsyncioEvent:
    """Dual-face event: the sync ``wait()``/``set()``/``is_set`` surface
    every backend event exposes (submitter threads, collectors, the
    admission table's ``block`` parking) plus an awaitable face
    (:meth:`wait_async`) for coroutines running on the backend's loop.

    ``set()`` is safe from any thread — the loop-side flag is flipped
    through ``call_soon_threadsafe`` so awaiting tasks wake without the
    caller touching the loop directly.
    """

    def __init__(self, host: _LoopHost, name: str = "event"):
        self.name = name
        self._host = host
        self._thread_event = threading.Event()
        self._async_event = asyncio.Event()
        self.value: Any = None

    @property
    def is_set(self) -> bool:
        """Has the event been set (and not cleared since)?"""
        return self._thread_event.is_set()

    def set(self, value: Any = None) -> None:
        """Set the event (first value wins), waking sync waiters and
        loop-side awaiters alike."""
        if not self._thread_event.is_set():
            self.value = value
            self._thread_event.set()
        loop = self._host.loop
        if loop.is_running():
            loop.call_soon_threadsafe(self._async_event.set)
        else:  # nobody can be awaiting on a stopped loop: flip directly
            self._async_event.set()

    def clear(self) -> None:
        """Reset both faces of the event."""
        self._thread_event.clear()
        self.value = None
        loop = self._host.loop
        if loop.is_running():
            loop.call_soon_threadsafe(self._async_event.clear)
        else:
            self._async_event.clear()

    def wait(self, timeout: float | None = None) -> bool:
        """Block the calling *thread* until set (never call from a loop
        task — that is what :meth:`wait_async` is for)."""
        return self._thread_event.wait(timeout)

    async def wait_async(self) -> bool:
        """Await the event from a coroutine on the backend's loop —
        the loop stays free to run every other task meanwhile."""
        await self._async_event.wait()
        return True


def _needs_loop(outcome: Any) -> bool:
    """Does this dispatch outcome carry awaitables the loop must run?"""
    if inspect.isawaitable(outcome):
        return True
    return isinstance(outcome, list) and any(
        inspect.isawaitable(item) for item in outcome
    )


class AsyncioBackend(ThreadBackend):
    """Event-loop execution backend for ``async def`` servants.

    Coordination activities (submissions, pool dispatchers, admission
    waits) stay real threads — subclassing
    :class:`~repro.runtime.threads.ThreadBackend` is the point, exactly
    as with the process backend.  Servant coroutines are bridged onto
    the backend's loop with :meth:`bridge`; the dispatch plumbing calls
    :meth:`finish` wherever an outcome may be awaitable.
    """

    name = "asyncio"
    #: the concurrency aspect's signal: dispatch inline and bridge the
    #: outcome instead of spawning a thread per call
    native_async = True

    def __init__(self, host: _LoopHost | None = None) -> None:
        super().__init__()
        self._host = host if host is not None else _HOST
        # task counters are only ever touched on the loop thread (inside
        # _supervise), so they need no lock
        self.tasks_started = 0
        self.tasks_finished = 0
        self.tasks_cancelled = 0
        #: tasks whose ticket deadline cancelled their await mid-flight
        self.tasks_expired = 0
        self.live_tasks = 0
        #: most loop tasks ever in flight at once (the overlap
        #: high-water mark the tests and benches assert on)
        self.peak_tasks = 0

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The backend's event loop (shared, running in its own daemon
        thread once any coroutine has been bridged)."""
        return self._host.loop

    def now(self) -> float:
        """The loop clock — ticket deadlines measured here translate
        exactly into ``asyncio.wait_for`` timeouts, which is what lets
        an expiry cancel a task mid-await."""
        return self._host.loop.time()

    def make_event(self, name: str = "event") -> AsyncioEvent:
        """A dual-face :class:`AsyncioEvent` (sync wait + loop await)."""
        return AsyncioEvent(self._host, name=name)

    # -- coroutine bridging -------------------------------------------------

    def bridge(self, outcome: Any, name: str = "asyncio.task") -> Future:
        """Adopt one dispatch outcome as this backend's activity.

        A coroutine (or a batched-entry list containing coroutines)
        is scheduled on the loop as one :class:`asyncio.Task` — carrying
        the ambient dispatch ticket's deadline and cancel hooks — and a
        :class:`~repro.runtime.futures.Future` resolving with it is
        returned.  A plain value comes back as an already-resolved
        future, so sync methods cost no loop round-trip.
        """
        future = Future(name=name, backend=self)
        if not _needs_loop(outcome):
            future.set_result(outcome)
            return future
        ticket = current_dispatch()
        self._host.ensure()
        pending = asyncio.run_coroutine_threadsafe(
            self._supervise(outcome, ticket), self._host.loop
        )

        def _transfer(done: Any) -> None:
            if future.resolved:  # pragma: no cover - single producer
                return
            try:
                future.set_result(done.result())
            except BaseException as exc:  # noqa: BLE001 - via the future
                future.set_exception(exc)

        pending.add_done_callback(_transfer)
        return future

    def finish(self, outcome: Any) -> Any:
        """Resolve a dispatch outcome: awaitables run to completion on
        the loop (the calling thread blocks, the loop does not); plain
        values pass through untouched."""
        if not _needs_loop(outcome):
            return outcome
        return self.bridge(outcome, name="asyncio.finish").result()

    def detach(self, outcome: Any) -> None:
        """Fire-and-forget (native oneway): make sure any awaitables are
        scheduled on the loop, then drop the handle — the work runs to
        completion, nobody waits for the reply."""
        if isinstance(outcome, Future):
            return  # already bridged: its task runs regardless of waiters
        if _needs_loop(outcome):
            self.bridge(outcome, name="asyncio.oneway")

    # -- the loop-side task wrapper -----------------------------------------

    async def _supervise(self, outcome: Any, ticket: Any) -> Any:
        """The bridged task's body: fault site, ticket cancel hook,
        deadline-bounded await, and the task census."""
        task = asyncio.current_task()
        hook = None
        if ticket is not None and task is not None:
            loop = self._host.loop
            hook = ticket.add_cancel_hook(
                lambda exc, t=task: loop.call_soon_threadsafe(t.cancel)
            )
        self.tasks_started += 1
        self.live_tasks += 1
        self.peak_tasks = max(self.peak_tasks, self.live_tasks)
        try:
            event = fire_fault("loop", None)
            if event is not None:
                if event.kind in ("raise_in_piece", "kill_worker"):
                    # failing before the await: close the unconsumed
                    # coroutine so the injection does not also trip
                    # "never awaited" warnings
                    _close_awaitables(outcome)
                if event.kind == "raise_in_piece":
                    raise InjectedFault(
                        "injected failure in a loop task (site 'loop')"
                    )
                if event.kind == "kill_worker":
                    raise WorkerKilled(
                        "injected loop-task death (site 'loop')"
                    )
                if event.kind == "delay_reply":
                    # awaitable delay: this task stalls, the loop serves
                    # every other in-flight await meanwhile
                    await asyncio.sleep(event.delay)
            value = await self._bounded(outcome, ticket)
            if event is not None and event.kind == "drop_reply":
                raise ReplyDropped(
                    "injected reply drop after a completed loop task"
                )
            return value
        except asyncio.CancelledError:
            self.tasks_cancelled += 1
            # cancelled before (or while) consuming the outcome: close
            # any not-yet-awaited coroutine (no-op when already closed)
            _close_awaitables(outcome)
            cause = getattr(ticket, "cancel_cause", None)
            if cause is not None:
                # a shed/expired ticket cancelled this task: surface the
                # ticket's cause (CallShed, DeadlineExceeded + trace),
                # not a bare CancelledError
                raise cause from None
            raise
        finally:
            if ticket is not None and hook is not None:
                ticket.remove_cancel_hook(hook)
            self.live_tasks -= 1
            self.tasks_finished += 1

    async def _bounded(self, outcome: Any, ticket: Any) -> Any:
        """Await the outcome, bounded by the ticket's deadline: since
        ``now()`` IS the loop clock, ``deadline.remaining()`` is an
        exact ``wait_for`` budget, and expiry cancels the await mid-
        flight — the ticket expires with its trace."""
        deadline = getattr(ticket, "deadline", None) if ticket is not None else None
        if deadline is None:
            return await self._gathered(outcome)
        try:
            return await asyncio.wait_for(
                self._gathered(outcome), timeout=deadline.remaining()
            )
        except (asyncio.TimeoutError, TimeoutError):
            self.tasks_expired += 1
            raise ticket.expire("awaiting an async servant") from None

    @staticmethod
    async def _gathered(outcome: Any) -> Any:
        """Await a coroutine outcome; for a batched-entry list, run the
        awaitable items concurrently (one pack = many overlapped awaits)
        and keep plain items in place."""
        if inspect.isawaitable(outcome):
            return await outcome

        async def keep(value: Any) -> Any:
            return value

        parts: list[Awaitable[Any]] = [
            item if inspect.isawaitable(item) else keep(item)
            for item in outcome
        ]
        return list(await asyncio.gather(*parts))


@register_backend("asyncio")
def _make_asyncio_backend(cluster: Any = None, sim: Any = None) -> AsyncioBackend:
    """Registry factory for the asyncio backend.  A simulated cluster is
    rejected eagerly: the loop runs real wall-clock awaits and cannot
    host virtual nodes (use backend='sim' with a middleware for that)."""
    if cluster is not None:
        raise BackendError(
            "the asyncio backend runs a real event loop and cannot attach "
            "to a simulated cluster; drop cluster= or use backend='sim' "
            "with middleware 'rmi'/'mpp'"
        )
    return AsyncioBackend()
