"""Admission control: bounded in-flight calls, deadlines, shedding.

PR 4 gave every split a per-call :class:`DispatchContext` ticket, so one
deployed stack serves overlapped ``submit()``s — but nothing bounded how
many tickets could pile up and no call could time out.  This module is
the backpressure layer on top of :mod:`repro.runtime.dispatch`:

* :class:`AdmissionController` — the bounded per-deployment slot table.
  ``ParallelApp.submit``/``map`` acquire a slot before dispatching and
  release it when the call's future resolves.  When the table is full
  one of three overflow policies applies:

  - ``block`` — the submitter waits (FIFO, direct hand-off) until a
    slot frees; with a deadline, the wait gives up with
    :class:`~repro.errors.AdmissionRejected` when the budget runs out;
  - ``fail``  — the submission raises
    :class:`~repro.errors.AdmissionRejected` immediately;
  - ``shed-oldest`` — the oldest live call is cancelled with
    :class:`~repro.errors.CallShed` and the new call takes its place.

* :class:`Deadline` — a per-call time budget measured on the *backend's*
  clock (wall time on threads, virtual time on the simulator), checked
  cooperatively at every dispatch boundary (split, piece dispatch,
  pipeline forward, heartbeat exchange, collector wait).  Expiry raises
  :class:`~repro.errors.DeadlineExceeded` carrying the ticket's trace.

* :class:`AdmissionSlot` — the envelope linking a submission to the
  dispatch ticket it eventually opens.  The slot is made *ambient*
  (:func:`use_envelope`) for the duration of the submission's activity;
  :meth:`~repro.parallel.partition.base.DispatchContextOwner.dispatch_scope`
  reads it (:func:`current_envelope`) and attaches the fresh ticket, so
  cancelling the slot (shed, deadline) cancels the live ticket: the
  collector latches, waiters fail fast, and the skeletons drop the
  call's remaining work at the next boundary while the workers keep
  serving other calls.

The envelope never needs to cross a spawn boundary: the slot is
installed inside the submission's own activity, the skeleton's top-level
advice runs in that same activity, and everything deeper follows the
*ticket* (which the backends already propagate).
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict, deque
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.errors import AdmissionRejected, CallShed, DeadlineExceeded

__all__ = [
    "OVERFLOW_POLICIES",
    "Deadline",
    "AdmissionSlot",
    "AdmissionController",
    "use_envelope",
    "current_envelope",
]

#: the three overflow policies a StackSpec may declare
OVERFLOW_POLICIES = ("block", "fail", "shed-oldest")


class Deadline:
    """A per-call time budget against a backend clock.

    ``clock`` is the owning backend's ``now`` (monotonic seconds —
    wall time on threads, virtual time on the simulator).  The deadline
    is *cooperative*: skeletons call :meth:`check` at dispatch
    boundaries; blocking waits size their timeouts with
    :meth:`remaining`.
    """

    __slots__ = ("budget", "clock", "expires_at")

    def __init__(self, budget: float, clock: Callable[[], float]):
        self.budget = budget
        self.clock = clock
        self.expires_at = clock() + budget

    @property
    def expired(self) -> bool:
        return self.clock() >= self.expires_at

    def remaining(self) -> float:
        """Seconds of budget left (clamped at zero)."""
        return max(0.0, self.expires_at - self.clock())

    def check(self, what: str = "", trace: dict | None = None) -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired:
            suffix = f" {what}" if what else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget}s exceeded{suffix}", trace=trace
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Deadline {self.remaining():.4f}s of {self.budget}s left>"


class AdmissionSlot:
    """One admitted submission: the link between the app-level admission
    table and the dispatch ticket the call opens.

    ``attach`` is called by ``dispatch_scope`` when the call's
    :class:`DispatchContext` opens: it hands the ticket the slot's
    deadline and records the ticket id (``ticket_id``) so traces can be
    looked up from the future.  ``cancel`` (shed / deadline) marks the
    slot and forwards the cancellation to the live ticket if one is
    attached — a slot cancelled *before* its ticket opens cancels the
    ticket at attach time instead, so the race is closed both ways.
    """

    __slots__ = (
        "slot_id",
        "name",
        "deadline",
        "retry",
        "grant",
        "cancelled",
        "cancel_cause",
        "delivered",
        "ticket_id",
        "_controller",
        "_context",
        "_released",
        "_lock",
    )

    def __init__(
        self,
        slot_id: int,
        name: str,
        deadline: Deadline | None,
        controller: "AdmissionController | None" = None,
        retry: Any = None,
    ):
        self.slot_id = slot_id
        self.name = name
        self.deadline = deadline
        #: per-call retry policy handed to the ticket at attach time
        self.retry = retry
        #: the cluster-level tenant grant riding this slot (a
        #: :class:`repro.tenancy.TenantGrant` when the app routes
        #: through a tenant plane) — released with the slot so the
        #: cluster slot frees exactly when the deployment slot does
        self.grant: Any = None
        self.cancelled = False
        self.cancel_cause: BaseException | None = None
        #: the call's result was handed to its future — a later cancel
        #: (shed racing completion) is a no-op
        self.delivered = False
        #: the dispatch ticket id, filled in when the call's
        #: DispatchContext opens (None until then / for ticket-less calls)
        self.ticket_id: int | None = None
        self._controller = controller
        self._context: Any = None
        self._released = False
        self._lock = threading.Lock()

    # -- ticket linkage ----------------------------------------------------

    def attach(self, context: Any) -> None:
        """Link the freshly opened dispatch ticket to this slot."""
        with self._lock:
            self._context = context
            self.ticket_id = context.context_id
            cancelled, cause = self.cancelled, self.cancel_cause
        context.adopt_deadline(self.deadline)
        if self.retry is not None and hasattr(context, "adopt_retry"):
            context.adopt_retry(self.retry)
        if cancelled and cause is not None:
            context.cancel(cause)

    def cancel(self, exc: BaseException) -> None:
        """Cancel this submission (shed or deadline): latch the cause
        and cancel the live ticket if one is already attached.  A slot
        whose result was already delivered cannot be cancelled."""
        with self._lock:
            if self.cancelled or self.delivered:
                return
            self.cancelled = True
            self.cancel_cause = exc
            context = self._context
        if context is not None:
            context.cancel(exc)

    def finish(self) -> BaseException | None:
        """Atomically close the slot for result delivery: returns the
        cancellation cause when a cancel won the race (the call must
        fail, not deliver), else marks the slot delivered so any later
        cancel is a no-op.  This is the check-and-act the delivering
        activity runs right before resolving its future."""
        with self._lock:
            if self.cancelled:
                return self.cancel_cause
            self.delivered = True
            return None

    def check(self) -> None:
        """Raise the cancellation cause (shed) or a deadline expiry —
        the guard submissions run before entering the woven call."""
        if self.cancelled and self.cancel_cause is not None:
            raise self.cancel_cause
        if self.deadline is not None:
            self.deadline.check(f"before {self.name} was dispatched")

    def release(self) -> None:
        """Return the slot to the controller (idempotent); called when
        the submission's future resolves, however it resolved."""
        with self._lock:
            if self._released:
                return
            self._released = True
            grant = self.grant
        if self._controller is not None:
            self._controller._release(self)
        if grant is not None:
            grant.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"<AdmissionSlot #{self.slot_id} {self.name} {state}>"


class _BlockedSubmitter:
    """FIFO record for one submitter waiting under the ``block`` policy.

    Admission is a direct hand-off: ``_release`` fills ``slot`` and sets
    the event, so a freed slot goes to exactly one waiter (no thundering
    herd, no lost wakeups through event clear/retry races).
    """

    __slots__ = ("event", "name", "deadline", "retry", "slot")

    def __init__(
        self,
        event: Any,
        name: str,
        deadline: Deadline | None,
        retry: Any = None,
    ):
        self.event = event
        self.name = name
        self.deadline = deadline
        self.retry = retry
        self.slot: AdmissionSlot | None = None


class AdmissionController:
    """Bounded per-deployment admission table.

    ``limit`` is the deployment's ``max_in_flight`` (``None`` =
    unbounded: slots are still tracked — for observability and release
    accounting — but admission never blocks, fails, or sheds).
    Primitives come from the app's execution backend so blocked
    submitters park on the right kind of event in both execution modes.
    """

    def __init__(
        self,
        limit: int | None = None,
        policy: str = "block",
        backend: Any = None,
        name: str = "app",
    ):
        if limit is not None and limit < 1:
            raise ValueError("max_in_flight must be >= 1")
        if policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {policy!r} "
                f"(choose from {', '.join(OVERFLOW_POLICIES)})"
            )
        self.limit = limit
        self.policy = policy
        self.name = name
        self._backend = backend
        self._ids = itertools.count(1)
        #: live slots in admission order (the shed policy's victim
        #: queue) — bounded controllers only; unbounded ones track just
        #: a count (no table churn on the hot path they never police)
        self._slots: "OrderedDict[int, AdmissionSlot]" = OrderedDict()
        self._live = 0
        self._waiters: deque[_BlockedSubmitter] = deque()
        self._lock = threading.Lock()
        # append-only aggregates (observability)
        self.admitted_total = 0
        self.rejected = 0
        self.shed_calls = 0
        self.blocked = 0
        self.peak_admitted = 0

    # -- introspection -----------------------------------------------------

    @property
    def admitted(self) -> int:
        """Slots currently held (admitted, not yet released)."""
        return self._live if self.limit is None else len(self._slots)

    @property
    def waiting(self) -> int:
        """Submitters currently parked by the ``block`` policy."""
        return len(self._waiters)

    def stats(self) -> dict:
        """Read-only snapshot of the table: occupancy, queue depth and
        the append-only counters — the feed for cluster-level placement
        (:meth:`repro.tenancy.ClusterScheduler.observe_admission`) and
        for dashboards, without reaching into private state."""
        with self._lock:
            return {
                "name": self.name,
                "limit": self.limit,
                "policy": self.policy,
                "admitted": self._live if self.limit is None else len(self._slots),
                "waiting": len(self._waiters),
                "admitted_total": self.admitted_total,
                "rejected": self.rejected,
                "shed": self.shed_calls,
                "blocked": self.blocked,
                "peak_admitted": self.peak_admitted,
            }

    # -- admission ---------------------------------------------------------

    def admit(
        self,
        deadline: Deadline | None = None,
        name: str = "call",
        retry: Any = None,
    ) -> AdmissionSlot:
        """Acquire one slot, applying the overflow policy when full.

        Returns the slot; raises :class:`AdmissionRejected` (``fail``
        policy, or a ``block`` wait whose deadline ran out) — the
        ``shed-oldest`` policy never raises here, it cancels the oldest
        live call instead.
        """
        if self.limit is None:
            # unbounded fast path: nothing to police, so no table —
            # just the counters (the slot still carries the deadline /
            # envelope / ticket linkage every submission uses)
            with self._lock:
                self._live += 1
                self.admitted_total += 1
                self.peak_admitted = max(self.peak_admitted, self._live)
            return AdmissionSlot(
                next(self._ids), name, deadline, controller=self, retry=retry
            )
        victim: AdmissionSlot | None = None
        waiter: _BlockedSubmitter | None = None
        with self._lock:
            if len(self._slots) < self.limit:
                return self._admit_locked(name, deadline, retry)
            if self.policy == "fail":
                self.rejected += 1
                raise AdmissionRejected(
                    f"{self.name}: {self.limit} calls already in flight "
                    f"(overflow policy 'fail')"
                )
            if self.policy == "shed-oldest":
                victim = self._pick_victim_locked()
                if victim is not None:
                    self.shed_calls += 1
                slot = self._admit_locked(name, deadline, retry)
            else:  # block
                self.blocked += 1
                waiter = _BlockedSubmitter(
                    self._make_event(), name, deadline, retry
                )
                self._waiters.append(waiter)
        if victim is not None:
            victim.cancel(
                CallShed(
                    f"{self.name}: call {victim.name!r} shed to admit "
                    f"{name!r} (overflow policy 'shed-oldest', "
                    f"max_in_flight={self.limit})"
                )
            )
        if waiter is None:
            return slot
        return self._await_handoff(waiter)

    def _admit_locked(
        self, name: str, deadline: Deadline | None, retry: Any = None
    ) -> AdmissionSlot:
        slot = AdmissionSlot(
            next(self._ids), name, deadline, controller=self, retry=retry
        )
        self._slots[slot.slot_id] = slot
        self.admitted_total += 1
        self.peak_admitted = max(self.peak_admitted, len(self._slots))
        return slot

    def _pick_victim_locked(self) -> AdmissionSlot | None:
        # oldest call still worth shedding — not already cancelled, not
        # already delivered (its result is final; only its release is
        # pending); when every live slot is in teardown, just admit
        for slot in self._slots.values():
            if not slot.cancelled and not slot.delivered:
                # drop it from the table now so repeated sheds do not
                # keep re-cancelling the same dying call (its own
                # release becomes a no-op)
                del self._slots[slot.slot_id]
                return slot
        return None

    def _await_handoff(self, waiter: _BlockedSubmitter) -> AdmissionSlot:
        deadline = waiter.deadline
        while True:
            timeout = deadline.remaining() if deadline is not None else None
            woke = waiter.event.wait(timeout)
            with self._lock:
                if waiter.slot is not None:
                    return waiter.slot
                if not woke:  # timed out without a hand-off
                    try:
                        self._waiters.remove(waiter)
                    except ValueError:  # pragma: no cover - handed off
                        continue  # a hand-off raced the timeout: retry
                    self.rejected += 1
                    raise AdmissionRejected(
                        f"{self.name}: blocked submission {waiter.name!r} "
                        f"ran out of deadline budget "
                        f"({deadline.budget}s) waiting for a slot"
                    )

    def _release(self, slot: AdmissionSlot) -> None:
        if self.limit is None:
            with self._lock:
                self._live -= 1
            return
        handoffs: list[_BlockedSubmitter] = []
        with self._lock:
            self._slots.pop(slot.slot_id, None)
            while self._waiters and len(self._slots) < self.limit:
                waiter = self._waiters.popleft()
                waiter.slot = self._admit_locked(
                    waiter.name, waiter.deadline, waiter.retry
                )
                handoffs.append(waiter)
        for waiter in handoffs:
            waiter.event.set()

    def _make_event(self) -> Any:
        backend = self._backend
        if backend is None:
            from repro.runtime.backend import current_backend

            backend = current_backend()
        return backend.make_event(name=f"{self.name}.admission")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = "∞" if self.limit is None else str(self.limit)
        return (
            f"<AdmissionController {self.name} {len(self._slots)}/{bound} "
            f"policy={self.policy}>"
        )


# ---------------------------------------------------------------------------
# The ambient envelope: how a submission's slot reaches dispatch_scope
# ---------------------------------------------------------------------------


class _EnvelopeState(threading.local):
    def __init__(self) -> None:
        self.stack: list[AdmissionSlot] = []


_ENVELOPES = _EnvelopeState()


@contextmanager
def use_envelope(slot: AdmissionSlot | None) -> Iterator[AdmissionSlot | None]:
    """Make ``slot`` the ambient admission envelope for this activity.

    ``None`` is a pass-through so call sites can wrap unconditionally.
    """
    if slot is None:
        yield None
        return
    stack = _ENVELOPES.stack
    stack.append(slot)
    try:
        yield slot
    finally:
        stack.pop()


def current_envelope() -> AdmissionSlot | None:
    """The innermost ambient admission slot, or ``None``."""
    stack = _ENVELOPES.stack
    return stack[-1] if stack else None
