"""Ambient per-call dispatch tickets.

A deployed stack is *immutable topology* — workers, stages, exported
servants.  Everything owned by one in-flight call (its result collector,
piece accounting, forwarding cursor) lives on a per-call *ticket*
instead: the partition layer's
:class:`~repro.parallel.partition.base.DispatchContext`.  This module is
the backend-neutral plumbing that makes the ticket *ambient*:

* :func:`use_dispatch` installs a ticket for the current activity;
* :func:`current_dispatch` reads it — the pipeline's forwarding advice
  uses this to deposit a piece result into the collector of the call
  that *originated* the piece, which is what lets one deployed stack
  serve many overlapped ``submit()``s;
* the :meth:`~repro.runtime.backend.ExecutionBackend.spawn` template
  method (shared by EVERY backend, built-in or registered) and the
  pooled spawner capture the ambient ticket at spawn/enqueue time and
  re-install it inside the spawned activity, so the ticket follows the
  call across every activity boundary the stack creates;
* :func:`find_dispatch` resolves a ticket by id — the middlewares stamp
  the originating ticket id onto each request and re-install the ticket
  around the servant-side execution, so work performed on behalf of a
  call is attributed to that call even on the server side of the wire.

Tickets register themselves on creation and are dropped automatically
(the registry holds weak references), so a ticket's lifetime is exactly
its call's.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "current_dispatch",
    "use_dispatch",
    "dispatch_id",
    "find_dispatch",
    "register_dispatch",
    "next_dispatch_id",
    "bind_dispatch",
    "shield_dispatch",
    "current_piece",
    "use_piece",
]


class _DispatchState(threading.local):
    def __init__(self) -> None:
        self.stack: list[Any] = []
        self.pieces: list[Any] = []


_STATE = _DispatchState()
_IDS = itertools.count(1)
#: live tickets by id — weak, so a finished call's ticket vanishes with it
_LIVE: "weakref.WeakValueDictionary[int, Any]" = weakref.WeakValueDictionary()


def next_dispatch_id() -> int:
    """A fresh process-unique ticket id."""
    return next(_IDS)


def register_dispatch(ticket: Any) -> Any:
    """Make ``ticket`` resolvable via :func:`find_dispatch` by its
    ``context_id`` for as long as it is referenced; returns the ticket."""
    _LIVE[ticket.context_id] = ticket
    return ticket


def current_dispatch() -> Any | None:
    """The innermost ambient ticket for this activity, or ``None``."""
    stack = _STATE.stack
    return stack[-1] if stack else None


def dispatch_id() -> int | None:
    """The ambient ticket's id, or ``None`` outside any dispatch."""
    ticket = current_dispatch()
    return ticket.context_id if ticket is not None else None


def find_dispatch(context_id: Any) -> Any | None:
    """The live ticket registered under ``context_id``, or ``None`` when
    the id is unknown or its call already finished."""
    if context_id is None:
        return None
    return _LIVE.get(context_id)


@contextmanager
def use_dispatch(ticket: Any | None) -> Iterator[Any | None]:
    """Make ``ticket`` the ambient dispatch for this activity within the
    block.  ``None`` is a no-op (so call sites can pass through an
    absent ticket unconditionally)."""
    if ticket is None:
        yield None
        return
    stack = _STATE.stack
    stack.append(ticket)
    try:
        yield ticket
    finally:
        stack.pop()


def current_piece() -> Any | None:
    """The piece the current activity is dispatching, or ``None``.

    Installed by ``dispatch_piece`` around the woven entry call, and
    carried across activity boundaries by :func:`bind_dispatch` — so the
    pipeline's forwarding advice, running hops and threads away from the
    split, can still tell WHICH head piece a tail result belongs to
    (keyed deposits, the dedup retry/re-dispatch needs)."""
    pieces = _STATE.pieces
    return pieces[-1] if pieces else None


@contextmanager
def use_piece(piece: Any | None) -> Iterator[Any | None]:
    """Make ``piece`` the ambient in-flight piece for the block
    (``None`` is a no-op pass-through, like :func:`use_dispatch`)."""
    if piece is None:
        yield None
        return
    pieces = _STATE.pieces
    pieces.append(piece)
    try:
        yield piece
    finally:
        pieces.pop()


def bind_dispatch(fn: Callable[[], Any]) -> Callable[[], Any]:
    """Capture the ambient ticket *now* and return a thunk running
    ``fn`` under it — the helper backends and spawners use so a spawned
    activity (or a pooled task executed much later, on a long-lived
    worker) still runs under the ticket of the call that created it.
    The ambient piece rides along, so forwarding work spawned mid-piece
    keeps its piece identity too.

    Thunks marked by :func:`shield_dispatch` pass through uncaptured.
    """
    if getattr(fn, "__dispatch_shielded__", False):
        return fn
    ticket = current_dispatch()
    piece = current_piece()
    if ticket is None and piece is None:
        return fn

    def bound() -> Any:
        with use_dispatch(ticket), use_piece(piece):
            return fn()

    return bound


def shield_dispatch(fn: Callable[[], Any]) -> Callable[[], Any]:
    """Mark ``fn`` so :func:`bind_dispatch` does NOT capture the ambient
    ticket for it.  Long-lived activities (pool workers) are spawned
    from inside some call's dispatch, but must not pin that call's
    ticket — and its collector and results — for their whole lifetime,
    nor leak it as the ambient dispatch of unrelated later tasks."""

    def shielded() -> Any:
        return fn()

    shielded.__dispatch_shielded__ = True  # type: ignore[attr-defined]
    return shielded
