"""Active objects (ABCL-style).

An :class:`ActiveObject` owns a request mailbox and a server activity
that executes one method at a time — the concurrency model the paper's
related work traces back to ABCL.  Clients call methods through
:meth:`proxy`; every call is asynchronous and returns a
:class:`~repro.runtime.futures.Future`.

The dynamic-farm partition uses this request-queue shape; it is also a
useful comparison point in tests (active objects serialise per-object, so
no synchronisation aspect is needed).
"""

from __future__ import annotations

from typing import Any

from repro.errors import BackendError
from repro.runtime.backend import current_backend
from repro.runtime.dispatch import current_dispatch, shield_dispatch, use_dispatch
from repro.runtime.futures import Future

__all__ = ["ActiveObject"]

_STOP = object()


class _MethodProxy:
    __slots__ = ("_active", "_name")

    def __init__(self, active: "ActiveObject", name: str):
        self._active = active
        self._name = name

    def __call__(self, *args: Any, **kwargs: Any) -> Future:
        return self._active.send(self._name, *args, **kwargs)


class _Proxy:
    """Attribute access returns asynchronous method stubs."""

    __slots__ = ("_active",)

    def __init__(self, active: "ActiveObject"):
        self._active = active

    def __getattr__(self, name: str) -> _MethodProxy:
        target = self._active.target
        if not callable(getattr(type(target), name, None)):
            raise AttributeError(
                f"{type(target).__name__} has no method {name!r}"
            )
        return _MethodProxy(self._active, name)


class ActiveObject:
    """Wrap ``target`` with a mailbox + single server activity."""

    def __init__(self, target: Any, name: str | None = None, backend: Any = None):
        self.target = target
        self.name = name or f"active:{type(target).__name__}"
        self._backend = backend if backend is not None else current_backend()
        self._mailbox = self._backend.make_queue(name=f"{self.name}.mailbox")
        self._stopped = False
        self.processed = 0
        # shield: the server loop outlives whatever call created the
        # active object — it must not pin (or serve later requests
        # under) that call's dispatch ticket
        self._server = self._backend.spawn(
            shield_dispatch(self._serve), name=f"{self.name}.server"
        )

    # -- client side -------------------------------------------------------

    def proxy(self) -> _Proxy:
        return _Proxy(self)

    def send(self, method: str, *args: Any, **kwargs: Any) -> Future:
        """Asynchronously invoke ``method``; returns its future."""
        if self._stopped:
            raise BackendError(f"{self.name} is stopped")
        future = Future(name=f"{self.name}.{method}", backend=self._backend)
        # each request carries ITS caller's dispatch ticket (like pooled
        # tasks): the shielded server re-installs it per request, so
        # work done on a call's behalf keeps its collector routing
        self._mailbox.put((method, args, kwargs, future, current_dispatch()))
        return future

    def stop(self) -> None:
        """Drain-and-stop: the server exits after pending requests."""
        if not self._stopped:
            self._stopped = True
            self._mailbox.put(_STOP)

    def join(self) -> None:
        """Wait for the server activity to exit (call :meth:`stop` first)."""
        self._server.join()

    # -- server side -------------------------------------------------------

    def _serve(self) -> None:
        while True:
            request = self._mailbox.get()
            if request is _STOP:
                return
            method, args, kwargs, future, ticket = request
            try:
                with use_dispatch(ticket):
                    result = getattr(self.target, method)(*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 - delivered via future
                future.set_exception(exc)
            else:
                future.set_result(result)
            self.processed += 1
