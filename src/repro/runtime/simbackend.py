"""Simulation execution backend.

Maps the backend API onto the discrete-event kernel: ``spawn`` creates a
simulated process, locks/events/queues are the kernel's primitives.  The
spawned activity inherits the *current backend* (itself), so nested
spawns from aspect code land back in the simulation.

Activities carry no CPU cost by themselves — computation is charged
explicitly on node CPUs by the cost-model aspect and the middleware
(serialisation), mirroring where time is actually spent on hardware.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.api.registry import register_backend
from repro.errors import BackendError
from repro.runtime.backend import ExecutionBackend, TaskHandle, use_backend
from repro.sim import SimEvent, SimLock, SimProcess, SimQueue, Simulator, current_process

__all__ = ["SimBackend", "SimTask"]


class SimTask(TaskHandle):
    """Handle over a simulated process."""

    def __init__(self, proc: SimProcess):
        self._proc = proc

    def join(self) -> Any:
        """Wait (in virtual time) for the simulated process; return its
        result or re-raise its exception."""
        return self._proc.join()

    @property
    def done(self) -> bool:
        """Has the simulated process finished?"""
        return self._proc.finished

    @property
    def process(self) -> SimProcess:
        """The underlying :class:`SimProcess`."""
        return self._proc


class SimBackend(ExecutionBackend):
    """Concurrency primitives on simulated time."""

    name = "sim"

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.spawned = 0

    def _spawn(
        self, fn: Callable[[], Any], name: str | None = None, daemon: bool = False
    ) -> SimTask:
        caller = current_process()
        if caller is not None and caller.sim is not self.sim:
            raise BackendError("SimBackend.spawn from a foreign simulator's process")
        self.spawned += 1
        # Spawned activities inherit the spawner's node placement: work a
        # concurrency aspect forks off still burns CPU where the caller
        # lives (FarmThreads runs everything on the head node).  The
        # dispatch ticket was already bound by the ExecutionBackend.spawn
        # template, node placement is captured here.
        from repro.middleware.context import current_node, use_node

        node = current_node()

        def body() -> Any:
            with use_backend(self), use_node(node):
                return fn()

        proc = self.sim.spawn(
            body, name=name or f"task-{self.spawned}", daemon=daemon
        )
        return SimTask(proc)

    def make_lock(self, name: str = "lock") -> SimLock:
        """A lock whose contention occupies virtual time."""
        return SimLock(self.sim, name=name)

    def make_event(self, name: str = "event") -> SimEvent:
        """An event parked on by simulated activities."""
        return SimEvent(self.sim, name=name)

    def make_queue(self, name: str = "queue") -> SimQueue:
        """A FIFO whose blocking ``get`` waits in virtual time."""
        return SimQueue(self.sim, name=name)

    def now(self) -> float:
        """The simulator's **virtual** clock: deadlines on this backend
        interact with the cost model, not the wall clock."""
        return self.sim.now


@register_backend("sim")
def _make_sim_backend(cluster: Any = None, sim: Any = None) -> SimBackend:
    """Registry factory for the simulation backend: reuses the cluster's
    simulator when one is in the spec, else creates a fresh kernel."""
    if sim is None:
        sim = cluster.sim if cluster is not None else Simulator()
    return SimBackend(sim)
