"""Real-thread execution backend (functional mode).

``spawn`` starts one daemon thread per activity — the literal translation
of the paper's concurrency aspect (``new Thread() { run() { proceed; } }``).
Because of the GIL this buys no CPU-bound speed-up in CPython; it gives
the correct *semantics* (overlap, synchronisation, futures) for tests and
examples, while the performance experiments run on the simulation
backend (see DESIGN.md).
"""

from __future__ import annotations

import queue as _queue
import threading
from typing import Any, Callable

from repro.api.registry import register_backend
from repro.runtime.backend import ExecutionBackend, TaskHandle

__all__ = ["ThreadBackend", "ThreadTask"]


class ThreadTask(TaskHandle):
    """Handle wrapping one worker thread."""

    def __init__(self, fn: Callable[[], Any], name: str | None):
        self._result: Any = None
        self._exception: BaseException | None = None
        self._finished = threading.Event()

        def body() -> None:
            try:
                self._result = fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised in join
                self._exception = exc
            finally:
                self._finished.set()

        self._thread = threading.Thread(target=body, name=name, daemon=True)
        self._thread.start()

    def join(self) -> Any:
        """Wait for the thread; return its result or re-raise its
        exception."""
        self._finished.wait()
        if self._exception is not None:
            raise self._exception
        return self._result

    @property
    def done(self) -> bool:
        """Has the thread's body finished (successfully or not)?"""
        return self._finished.is_set()


class _ThreadEvent:
    """threading.Event with a value slot, matching SimEvent's surface."""

    def __init__(self, name: str = "event"):
        self.name = name
        self._event = threading.Event()
        self.value: Any = None

    @property
    def is_set(self) -> bool:
        return self._event.is_set()

    def set(self, value: Any = None) -> None:
        if not self._event.is_set():
            self.value = value
            self._event.set()

    def clear(self) -> None:
        self._event.clear()
        self.value = None

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)


class _ThreadQueue:
    """queue.Queue adapter matching SimQueue's surface."""

    def __init__(self, name: str = "queue"):
        self.name = name
        self._q: _queue.Queue = _queue.Queue()

    def put(self, item: Any) -> None:
        self._q.put(item)

    def get(self, timeout: float | None = None) -> Any:
        try:
            return self._q.get(timeout=timeout)
        except _queue.Empty:
            raise TimeoutError(f"queue {self.name} get() timed out") from None

    def try_get(self) -> tuple[bool, Any]:
        try:
            return True, self._q.get_nowait()
        except _queue.Empty:
            return False, None

    def __len__(self) -> int:
        return self._q.qsize()


class ThreadBackend(ExecutionBackend):
    """Spawn-per-call real threading."""

    name = "threads"

    def __init__(self) -> None:
        self.spawned = 0

    def _spawn(
        self, fn: Callable[[], Any], name: str | None = None, daemon: bool = True
    ) -> ThreadTask:
        # all worker threads are OS daemons already; the flag only
        # matters for the simulation backend's deadlock detection.  The
        # ExecutionBackend.spawn template has already bound fn to the
        # spawning call's dispatch ticket.
        self.spawned += 1
        return ThreadTask(fn, name or f"task-{self.spawned}")

    def make_lock(self, name: str = "lock") -> threading.Lock:
        """A plain (non-reentrant) ``threading.Lock``."""
        return threading.Lock()

    def make_event(self, name: str = "event") -> _ThreadEvent:
        """A ``threading.Event`` carrying a value slot (SimEvent's
        surface)."""
        return _ThreadEvent(name)

    def make_queue(self, name: str = "queue") -> _ThreadQueue:
        """A ``queue.Queue`` adapter matching SimQueue's surface."""
        return _ThreadQueue(name)


@register_backend("thread")
def _make_thread_backend(cluster: Any = None, sim: Any = None) -> ThreadBackend:
    """Registry factory for the functional (real-thread) backend; the
    cluster/sim context is irrelevant here and ignored."""
    return ThreadBackend()
