"""Compute-node model.

One :class:`Node` = one machine of the testbed: a processor-sharing CPU
complex (cores + hyper-threading) and an identity the placement policies
and metrics refer to.  The paper's machines are dual Xeon 3.2 GHz with
HT enabled — :func:`repro.cluster.topology.paper_testbed` builds seven of
these.
"""

from __future__ import annotations

from repro.errors import ClusterError
from repro.sim import ProcessorSharingCPU, Simulator

__all__ = ["Node"]


class Node:
    """A simulated machine: identity + CPU complex."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        cores: int = 2,
        ht_factor: float = 1.3,
        speed: float = 1.0,
        name: str | None = None,
    ):
        if node_id < 0:
            raise ClusterError("node_id must be >= 0")
        self.sim = sim
        self.node_id = node_id
        self.name = name or f"node{node_id}"
        self.cpu = ProcessorSharingCPU(
            sim, cores=cores, ht_factor=ht_factor, speed=speed, name=f"{self.name}.cpu"
        )
        #: objects placed on this node (informational, for reports)
        self.resident_objects: list[object] = []

    @property
    def cores(self) -> int:
        return self.cpu.cores

    def place(self, obj: object) -> None:
        """Record that ``obj`` lives here (placement bookkeeping)."""
        self.resident_objects.append(obj)

    def execute(self, work: float) -> None:
        """Run ``work`` seconds-at-full-speed on this node's CPU complex
        (blocks the calling simulated process for the shared duration)."""
        self.cpu.execute(work)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} cores={self.cores} objects={len(self.resident_objects)}>"
