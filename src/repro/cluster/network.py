"""Interconnect model.

A switched, full-duplex Ethernet in the style of the paper's Gigabit
testbed.  We model the dominant first-order costs:

* **latency** — per-message one-way delay (propagation + switch + stack);
* **bandwidth** — serialisation of the payload onto the wire;
* **intra-node** messages are (near-)free: a small loopback latency.

Link contention is *not* modelled (a non-blocking switch fabric); the
paper's bottleneck is message volume through the pipeline and middleware
per-message overhead, both of which we do model (the latter in the
middleware layer, where it belongs — RMI and MPP differ there, not on
the wire).
"""

from __future__ import annotations

from repro.errors import ClusterError

__all__ = ["Network", "GIGABIT_ETHERNET"]


class Network:
    """Latency/bandwidth delay model plus traffic accounting."""

    def __init__(
        self,
        latency: float = 80e-6,
        bandwidth: float = 125e6,
        loopback_latency: float = 2e-6,
        name: str = "net",
    ):
        if latency < 0 or loopback_latency < 0:
            raise ClusterError("latencies must be >= 0")
        if bandwidth <= 0:
            raise ClusterError("bandwidth must be positive")
        self.latency = latency
        self.bandwidth = bandwidth
        self.loopback_latency = loopback_latency
        self.name = name
        # traffic accounting
        self.messages = 0
        self.bytes = 0
        self.remote_messages = 0

    def transit_delay(
        self, size_bytes: int, src_node: int | None, dst_node: int | None
    ) -> float:
        """One-way delay for ``size_bytes`` between two nodes.

        ``src_node == dst_node`` (or either unknown) uses the loopback
        path: no wire serialisation, tiny latency.
        """
        if size_bytes < 0:
            raise ClusterError("size_bytes must be >= 0")
        self.messages += 1
        self.bytes += size_bytes
        if src_node is None or dst_node is None or src_node == dst_node:
            return self.loopback_latency
        self.remote_messages += 1
        return self.latency + size_bytes / self.bandwidth

    def reset_counters(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.remote_messages = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Network {self.name} latency={self.latency:g}s "
            f"bandwidth={self.bandwidth:g}B/s msgs={self.messages}>"
        )


def GIGABIT_ETHERNET() -> Network:
    """The paper's interconnect: Gigabit Ethernet (~80 µs one-way
    latency through the stack, 125 MB/s)."""
    return Network(latency=80e-6, bandwidth=125e6)
