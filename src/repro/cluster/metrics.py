"""Cluster-level measurement reports.

Aggregates node CPU utilisation and network traffic into the summary
dictionaries the benchmark harness prints next to each experiment row —
the observability needed to *explain* the shapes of Figures 16/17 (e.g.
the pipeline's ``messages ≈ packs × stages`` blow-up).
"""

from __future__ import annotations

from typing import Any

from repro.cluster.topology import Cluster

__all__ = ["snapshot", "format_report"]


def snapshot(cluster: Cluster) -> dict[str, Any]:
    """Collect the current measurement state of a cluster."""
    sim_time = cluster.sim.now
    per_node = []
    for node in cluster.nodes:
        per_node.append(
            {
                "node": node.name,
                "cores": node.cores,
                "busy_time": node.cpu.busy_time,
                "utilisation": node.cpu.utilisation(),
                "jobs_completed": node.cpu.jobs_completed,
                "resident_objects": len(node.resident_objects),
            }
        )
    return {
        "sim_time": sim_time,
        "nodes": per_node,
        "network": {
            "messages": cluster.network.messages,
            "remote_messages": cluster.network.remote_messages,
            "bytes": cluster.network.bytes,
        },
        "mean_utilisation": (
            sum(n["utilisation"] for n in per_node) / len(per_node)
            if per_node
            else 0.0
        ),
    }


def format_report(snap: dict[str, Any]) -> str:
    """ASCII rendering of a snapshot (one line per node + totals)."""
    lines = [
        f"sim_time={snap['sim_time']:.4f}s  "
        f"messages={snap['network']['messages']} "
        f"(remote={snap['network']['remote_messages']}) "
        f"bytes={snap['network']['bytes']}",
    ]
    for node in snap["nodes"]:
        lines.append(
            f"  {node['node']:<8} util={node['utilisation']:6.1%} "
            f"busy={node['busy_time']:8.3f}s jobs={node['jobs_completed']:4d} "
            f"objects={node['resident_objects']}"
        )
    lines.append(f"  mean utilisation: {snap['mean_utilisation']:.1%}")
    return "\n".join(lines)
