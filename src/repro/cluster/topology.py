"""Cluster assembly: nodes + network + the paper's testbed preset."""

from __future__ import annotations

from repro.cluster.machine import Node
from repro.cluster.network import GIGABIT_ETHERNET, Network
from repro.errors import ClusterError
from repro.sim import Simulator

__all__ = ["Cluster", "paper_testbed", "single_node"]


class Cluster:
    """A set of nodes joined by one network."""

    def __init__(self, sim: Simulator, nodes: list[Node], network: Network):
        if not nodes:
            raise ClusterError("a cluster needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ClusterError(f"duplicate node ids: {ids}")
        self.sim = sim
        self.nodes = list(nodes)
        self.network = network

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def node(self, node_id: int) -> Node:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise ClusterError(f"no node with id {node_id}")

    @property
    def head(self) -> Node:
        """Node 0 — where the client/main program runs."""
        return self.nodes[0]

    def transit_delay(self, size_bytes: int, src: Node | None, dst: Node | None) -> float:
        return self.network.transit_delay(
            size_bytes,
            src.node_id if src is not None else None,
            dst.node_id if dst is not None else None,
        )

    def total_physical_cores(self) -> int:
        return sum(n.cores for n in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster {len(self.nodes)} nodes, {self.total_physical_cores()} cores>"


def paper_testbed(sim: Simulator) -> Cluster:
    """The evaluation platform of Section 6: seven dedicated dual-Xeon
    3.2 GHz machines with Hyper-Threading on Gigabit Ethernet."""
    nodes = [
        Node(sim, node_id=i, cores=2, ht_factor=1.3, speed=1.0) for i in range(7)
    ]
    return Cluster(sim, nodes, GIGABIT_ETHERNET())


def single_node(sim: Simulator, cores: int = 2, ht_factor: float = 1.3) -> Cluster:
    """A one-machine 'cluster' — the shared-memory scenario
    (FarmThreads in Table 1 runs here)."""
    return Cluster(
        sim, [Node(sim, 0, cores=cores, ht_factor=ht_factor)], GIGABIT_ETHERNET()
    )
