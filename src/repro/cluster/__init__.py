"""Simulated testbed: nodes with processor-sharing CPUs joined by a
latency/bandwidth network, plus the paper's 7-machine preset."""

from repro.cluster.machine import Node
from repro.cluster.metrics import format_report, snapshot
from repro.cluster.network import GIGABIT_ETHERNET, Network
from repro.cluster.topology import Cluster, paper_testbed, single_node

__all__ = [
    "Node",
    "Network",
    "GIGABIT_ETHERNET",
    "Cluster",
    "paper_testbed",
    "single_node",
    "snapshot",
    "format_report",
]
