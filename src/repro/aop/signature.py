"""Signature patterns for pointcut matching.

Implements the pattern sub-language that appears inside ``call(..)``,
``initialization(..)``, ``within(..)``, ``target(..)`` and ``args(..)``:

* **Type patterns** — ``PrimeFilter``, ``*Filter``, ``pkg.mod.Class``,
  ``Pipe+`` (the class or any subtype, including *virtual* subtypes
  registered via ``declare_parents``), ``*`` (any type).
* **Name patterns** — method names with ``*`` wildcards (``move*``).
* **Parameter patterns** — ``..`` (any number of arguments), ``*`` (exactly
  one argument of any type), or type patterns matched against the dynamic
  types of the actual arguments.

AspectJ resolves subtype tests against the Java type system; we keep our
own *virtual-subtype registry* so that ``declare parents`` (inter-type
declaration) can make a core class implement a marker interface without
mutating ``__bases__`` — exactly the mechanism the paper's reusable
``PipelineProtocol`` aspect relies on (Figure 9).
"""

from __future__ import annotations

import fnmatch
import re
from typing import Any, Iterable

from repro.errors import PointcutSyntaxError

__all__ = [
    "TypePattern",
    "NamePattern",
    "ParamsPattern",
    "SignaturePattern",
    "register_virtual_base",
    "unregister_virtual_base",
    "is_subtype",
    "virtual_bases_of",
]

# ---------------------------------------------------------------------------
# Virtual subtype registry (supports declare_parents on non-ABC interfaces)
# ---------------------------------------------------------------------------

_VIRTUAL_BASES: dict[type, set[type]] = {}


def register_virtual_base(cls: type, base: type) -> None:
    """Record that ``cls`` should be treated as a subtype of ``base``.

    Also registers with :mod:`abc` when ``base`` supports it so that
    ``isinstance`` checks in user code agree with pointcut matching.
    """
    _VIRTUAL_BASES.setdefault(cls, set()).add(base)
    register = getattr(base, "register", None)
    if callable(register):
        try:
            register(cls)
        except (TypeError, RuntimeError):  # plain classes have no ABC machinery
            pass


def unregister_virtual_base(cls: type, base: type) -> None:
    """Remove a virtual subtype relation (ABC registration is sticky and
    intentionally left in place; the pointcut matcher uses this registry,
    not ``issubclass``, as its source of truth for unweaving)."""
    bases = _VIRTUAL_BASES.get(cls)
    if bases is not None:
        bases.discard(base)
        if not bases:
            del _VIRTUAL_BASES[cls]


def virtual_bases_of(cls: type) -> frozenset[type]:
    """All bases registered for ``cls`` (not transitive, not inherited)."""
    return frozenset(_VIRTUAL_BASES.get(cls, frozenset()))


def is_subtype(cls: type, base: type) -> bool:
    """``issubclass`` extended with the virtual-subtype registry.

    The registry is consulted transitively through real MRO entries: if
    any class on ``cls``'s MRO was declared a virtual subtype of ``base``
    the relation holds.
    """
    try:
        if issubclass(cls, base):
            return True
    except TypeError:
        return False
    for entry in cls.__mro__:
        declared = _VIRTUAL_BASES.get(entry)
        if declared:
            if base in declared:
                return True
            # one level of transitivity through declared virtual bases
            for vb in declared:
                if vb is not base and is_subtype(vb, base):
                    return True
    return False


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


def _glob_to_regex(pattern: str) -> re.Pattern[str]:
    return re.compile(fnmatch.translate(pattern))


class TypePattern:
    """Matches classes by (possibly qualified, possibly wildcarded) name.

    ``Pipe+`` matches ``Pipe`` and all (virtual) subtypes.  An unqualified
    pattern matches against the class ``__name__``; a dotted pattern
    matches against ``module.qualname``.
    """

    __slots__ = ("text", "subtypes", "_regex", "_qualified", "_resolved")

    def __init__(self, text: str):
        text = text.strip()
        if not text:
            raise PointcutSyntaxError("empty type pattern")
        self.subtypes = text.endswith("+")
        if self.subtypes:
            text = text[:-1]
        if not text:
            raise PointcutSyntaxError("'+' requires a type name")
        self.text = text
        self._qualified = "." in text
        self._regex = _glob_to_regex(text)
        # Direct class reference (resolved lazily by pointcuts built from
        # class objects rather than strings).
        self._resolved: type | None = None

    @classmethod
    def from_class(cls, klass: type, subtypes: bool = False) -> "TypePattern":
        """Build a pattern that matches exactly ``klass`` (or subtypes)."""
        pat = cls.__new__(cls)
        pat.text = klass.__name__
        pat.subtypes = subtypes
        pat._qualified = False
        pat._regex = _glob_to_regex(klass.__name__)
        pat._resolved = klass
        return pat

    @property
    def is_wildcard_any(self) -> bool:
        """True for the universal pattern ``*``."""
        return self.text == "*" and not self._qualified

    def matches_class(self, klass: type) -> bool:
        """Does this pattern match the class ``klass``?"""
        if self._resolved is not None:
            if self.subtypes:
                return is_subtype(klass, self._resolved)
            return klass is self._resolved
        if self.subtypes:
            # Name-based subtype test: match the class itself or anything
            # on its (real + virtual) ancestry.
            if self._name_matches(klass):
                return True
            for ancestor in klass.__mro__[1:]:
                if self._name_matches(ancestor):
                    return True
            seen: set[type] = set()
            stack: list[type] = [klass]
            while stack:
                current = stack.pop()
                for entry in current.__mro__:
                    for vb in virtual_bases_of(entry):
                        if vb not in seen:
                            seen.add(vb)
                            if self._name_matches(vb):
                                return True
                            stack.append(vb)
            return False
        return self._name_matches(klass)

    def _name_matches(self, klass: type) -> bool:
        if self._qualified:
            full = f"{klass.__module__}.{klass.__qualname__}"
            return bool(self._regex.match(full))
        return bool(self._regex.match(klass.__name__))

    def matches_string(self, dotted: str) -> bool:
        """Match against a pre-rendered dotted name (used by ``within``)."""
        if self._qualified:
            return bool(self._regex.match(dotted))
        return bool(self._regex.match(dotted.rsplit(".", 1)[-1]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TypePattern({self.text}{'+' if self.subtypes else ''})"

    def __str__(self) -> str:
        return self.text + ("+" if self.subtypes else "")


class NamePattern:
    """Method-name pattern with ``*`` wildcards."""

    __slots__ = ("text", "_regex")

    def __init__(self, text: str):
        text = text.strip()
        if not text:
            raise PointcutSyntaxError("empty name pattern")
        self.text = text
        self._regex = _glob_to_regex(text)

    def matches(self, name: str) -> bool:
        return bool(self._regex.match(name))

    def __repr__(self) -> str:  # pragma: no cover
        return f"NamePattern({self.text})"

    def __str__(self) -> str:
        return self.text


#: Sentinel for the ``..`` parameter wildcard.
ELLIPSIS_PARAM = ".."
#: Sentinel for the ``*`` single-parameter wildcard.
ANY_PARAM = "*"


class ParamsPattern:
    """Pattern over the *dynamic* argument list of a joinpoint.

    ``(..)`` matches anything; ``(*)`` exactly one argument; ``(int, ..)``
    one ``int`` followed by anything.  Type names are matched against the
    dynamic type of each positional argument using :class:`TypePattern`
    rules (so user classes match by name and ``+`` works).
    """

    __slots__ = ("elements",)

    def __init__(self, elements: Iterable[str]):
        self.elements: list[str | TypePattern] = []
        for raw in elements:
            raw = raw.strip()
            if not raw:
                continue
            if raw == ELLIPSIS_PARAM or raw == ANY_PARAM:
                self.elements.append(raw)
            else:
                self.elements.append(TypePattern(raw))

    @classmethod
    def any(cls) -> "ParamsPattern":
        return cls([ELLIPSIS_PARAM])

    @property
    def is_any(self) -> bool:
        return self.elements == [ELLIPSIS_PARAM]

    def matches(self, args: tuple[Any, ...]) -> bool:
        return self._match(self.elements, list(args))

    def _match(self, pattern: list, args: list) -> bool:
        if not pattern:
            return not args
        head, rest = pattern[0], pattern[1:]
        if head == ELLIPSIS_PARAM:
            # try to consume 0..len(args) arguments
            for skip in range(len(args) + 1):
                if self._match(rest, args[skip:]):
                    return True
            return False
        if not args:
            return False
        if head == ANY_PARAM:
            return self._match(rest, args[1:])
        assert isinstance(head, TypePattern)
        if not head.matches_class(type(args[0])) and not _primitive_match(
            head, args[0]
        ):
            return False
        return self._match(rest, args[1:])

    def __str__(self) -> str:
        return ", ".join(str(e) for e in self.elements)


_PRIMITIVE_ALIASES = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
    "bytes": bytes,
    "list": list,
    "dict": dict,
    "tuple": tuple,
    "set": set,
}


def _primitive_match(pattern: TypePattern, value: Any) -> bool:
    """Allow Java-ish primitive names (``int``, ``str``...) as type
    patterns, including against numpy scalar/array kinds for ``int`` and
    ``float`` arguments coming from vectorised workloads."""
    alias = _PRIMITIVE_ALIASES.get(pattern.text)
    if alias is None:
        return False
    if isinstance(value, alias):
        return True
    kind = getattr(getattr(value, "dtype", None), "kind", None)
    if kind is not None:
        if alias is int and kind in ("i", "u"):
            return True
        if alias is float and kind == "f":
            return True
    return False


class SignaturePattern:
    """``TypePattern.NamePattern(ParamsPattern)`` — a full signature.

    The special method name ``new`` designates construction, mirroring
    AspectJ's ``Class.new(..)`` (the paper writes
    ``around (PrimeFilter.new(..))``).
    """

    __slots__ = ("type_pattern", "name_pattern", "params")

    def __init__(
        self,
        type_pattern: TypePattern,
        name_pattern: NamePattern,
        params: ParamsPattern,
    ):
        self.type_pattern = type_pattern
        self.name_pattern = name_pattern
        self.params = params

    @property
    def is_constructor(self) -> bool:
        return self.name_pattern.text in ("new", "__init__")

    @classmethod
    def parse(cls, text: str) -> "SignaturePattern":
        """Parse ``Type.name(params)`` (params optional → ``(..)``)."""
        text = text.strip()
        params = ParamsPattern.any()
        if "(" in text:
            if not text.endswith(")"):
                raise PointcutSyntaxError(
                    f"unbalanced parentheses in signature {text!r}", text
                )
            head, _, inner = text.partition("(")
            inner = inner[:-1]
            params = ParamsPattern(_split_params(inner)) if inner.strip() else ParamsPattern([])
            text = head.strip()
        if "." not in text:
            raise PointcutSyntaxError(
                f"signature {text!r} must be of the form Type.method(..)", text
            )
        type_text, _, name_text = text.rpartition(".")
        return cls(TypePattern(type_text), NamePattern(name_text), params)

    def matches_shadow(self, cls: type, name: str) -> bool:
        """Static part of matching: class and method name only."""
        return self.type_pattern.matches_class(cls) and self.name_pattern.matches(
            name
        )

    def matches_args(self, args: tuple[Any, ...]) -> bool:
        return self.params.matches(args)

    @property
    def has_dynamic_residue(self) -> bool:
        """True when argument matching must happen at each call."""
        return not self.params.is_any

    def __str__(self) -> str:
        return f"{self.type_pattern}.{self.name_pattern}({self.params})"

    def __repr__(self) -> str:  # pragma: no cover
        return f"SignaturePattern({self})"


def _split_params(inner: str) -> list[str]:
    """Split a parameter list on commas (no nested generics to worry
    about in our pattern language)."""
    return [piece for piece in (p.strip() for p in inner.split(",")) if piece]
