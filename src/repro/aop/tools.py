"""Introspection and debugging tools for woven systems.

The paper argues aspects make parallel code *easier to understand*; that
only holds if developers can see what is woven where.  These helpers
answer the three questions that come up while (un)plugging modules:

* :func:`explain` — which advice (from which aspects, in which order)
  applies at one method, and which parts are dynamic residues;
* :func:`weaving_report` — every woven class with its intercepted
  methods and the deployed aspects, one screenful;
* :func:`trace_advice` — a context manager recording every advice
  execution (aspect, joinpoint, order) for a block of code.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.aop.advice import AdviceKind, run_chain
from repro.aop.joinpoint import JoinPointKind
from repro.aop.weaver import Weaver, default_weaver

__all__ = ["explain", "weaving_report", "trace_advice", "AdviceTrace"]


def explain(
    cls: type, method: str, weaver: Weaver | None = None
) -> str:
    """Describe the advice chain at ``cls.method`` (and construction)."""
    weaver = weaver if weaver is not None else default_weaver
    lines = [f"{cls.__name__}.{method}:"]
    for kind, label in (
        (JoinPointKind.CALL, "call"),
        (JoinPointKind.INITIALIZATION, "initialization"),
    ):
        name = "__init__" if kind is JoinPointKind.INITIALIZATION else method
        entries, needs_caller = weaver.chain(cls, name, kind)
        if not entries:
            continue
        lines.append(f"  [{label}] chain (outermost first):")
        for index, entry in enumerate(entries):
            residue = " (dynamic residue)" if entry.needs_eval else ""
            lines.append(
                f"    {index + 1}. {entry.kind} {type(entry.aspect).__name__}."
                f"{entry.func.__name__}  <- {entry.pointcut}{residue}"
            )
        if needs_caller:
            lines.append("    (caller info resolved per call: within() in use)")
    if len(lines) == 1:
        lines.append("  no advice applies (inert)")
    return "\n".join(lines)


def weaving_report(weaver: Weaver | None = None) -> str:
    """One-screen summary of the weaver's state."""
    weaver = weaver if weaver is not None else default_weaver
    lines = ["=== weaving report ==="]
    woven = weaver.woven_classes
    lines.append(f"woven classes ({len(woven)}):")
    for cls in woven:
        methods = [
            name
            for name, attr in vars(cls).items()
            if getattr(attr, "__aop_dispatcher__", False)
            and name not in ("__new__", "__init__")
        ]
        lines.append(
            f"  {cls.__module__}.{cls.__name__}: "
            f"{', '.join(sorted(methods)) or '(construction only)'}"
        )
    deployed = weaver.deployed
    lines.append(f"deployed aspects ({len(deployed)}):")
    for aspect in deployed:
        advice_count = len(type(aspect)._advice_decls)
        lines.append(
            f"  {type(aspect).__name__} (precedence {aspect.precedence}, "
            f"{advice_count} advice)"
        )
    return "\n".join(lines)


class AdviceTrace:
    """Recorded advice executions: ``(aspect, kind, signature)`` rows."""

    def __init__(self) -> None:
        self.rows: list[tuple[str, str, str]] = []

    def record(self, aspect: Any, kind: AdviceKind, signature: str) -> None:
        self.rows.append((type(aspect).__name__, str(kind), signature))

    def of_aspect(self, name: str) -> list[tuple[str, str, str]]:
        return [row for row in self.rows if row[0] == name]

    def __len__(self) -> int:
        return len(self.rows)

    def format(self) -> str:
        return "\n".join(
            f"{index:4d}. {aspect:<28} {kind:<16} {signature}"
            for index, (aspect, kind, signature) in enumerate(self.rows, 1)
        )


@contextmanager
def trace_advice() -> Iterator[AdviceTrace]:
    """Record every advice execution inside the block.

    Implemented by temporarily wrapping the chain interpreter — zero
    per-deployment bookkeeping, works for any weaver.
    """
    import repro.aop.advice as advice_module
    import repro.aop.plan as plan_module
    import repro.aop.weaver as weaver_module

    trace = AdviceTrace()
    original_run_chain = advice_module.run_chain

    def traced_run_chain(entries, jp, original):
        for entry in entries:
            trace.record(entry.aspect, entry.kind, jp.signature)
        return original_run_chain(entries, jp, original)

    # Compiled plans consult their module's ``run_chain`` global per call
    # (the single-around fast path checks it against the baseline and
    # falls back to the interpreter while a wrapper is installed), so
    # patching the three modules covers every dispatch path.
    advice_module.run_chain = traced_run_chain
    weaver_module.run_chain = traced_run_chain
    plan_module.run_chain = traced_run_chain
    try:
        yield trace
    finally:
        advice_module.run_chain = original_run_chain
        weaver_module.run_chain = original_run_chain
        plan_module.run_chain = original_run_chain
