"""Joinpoint model.

A *joinpoint* is a well-defined event in program execution that advice can
intercept.  Mirroring the subset of AspectJ the paper uses (Section 3), we
support two kinds:

* ``CALL`` — invocation of a method on a woven class;
* ``INITIALIZATION`` — construction of an instance of a woven class
  (AspectJ's ``Class.new(..)`` pattern).

The :class:`JoinPoint` object handed to advice carries full reflective
information plus :meth:`JoinPoint.proceed`, which continues with the rest
of the advice chain (and ultimately the original behaviour).  Around advice
may call ``proceed`` zero, one or *many* times — the paper's partition
aspect calls the constructor joinpoint's ``proceed`` once per pipeline
stage to create its "aspect managed objects".
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable

from repro.errors import ProceedError

__all__ = ["JoinPointKind", "JoinPoint", "CallerInfo"]


class JoinPointKind(enum.Enum):
    """The kinds of interceptable events."""

    CALL = "call"
    INITIALIZATION = "initialization"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CallerInfo:
    """Lexical information about the code that reached a joinpoint.

    Computed lazily (walking Python frames is costly) and only when a
    deployed pointcut actually uses ``within(..)``.
    """

    __slots__ = ("module", "qualname", "function")

    def __init__(self, module: str, qualname: str, function: str):
        self.module = module
        self.qualname = qualname
        self.function = function

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CallerInfo({self.module}.{self.qualname})"


class JoinPoint:
    """Reflective description of one intercepted event.

    Attributes
    ----------
    kind:
        :class:`JoinPointKind` of the event.
    cls:
        The woven class owning the intercepted method / constructor.
    name:
        Method name (``"__init__"`` for initialization joinpoints).
    target:
        Receiver instance for ``CALL`` joinpoints, ``None`` for
        ``INITIALIZATION`` (the instance does not exist yet).
    args, kwargs:
        The *current* arguments.  ``proceed`` with no arguments re-uses
        them; ``proceed(x, y)`` replaces the positional arguments, exactly
        like AspectJ's ``proceed``.
    """

    __slots__ = (
        "kind",
        "cls",
        "name",
        "target",
        "args",
        "kwargs",
        "_proceed_map",
        "_caller",
        "_caller_resolver",
        "result",
        "exception",
        "from_advice",
    )

    def __init__(
        self,
        kind: JoinPointKind,
        cls: type,
        name: str,
        target: Any,
        args: tuple,
        kwargs: dict,
    ):
        self.kind = kind
        self.cls = cls
        self.name = name
        self.target = target
        self.args = args
        self.kwargs = kwargs
        # Continuations are tracked *per thread*: an async concurrency
        # aspect may hand the rest of the chain to a spawned activity
        # while the original thread unwinds — neither may clobber the
        # other's view of ``proceed``.
        self._proceed_map: dict[int, Callable] = {}
        self._caller: CallerInfo | None = None
        self._caller_resolver: Callable[[], CallerInfo] | None = None
        #: Set on ``after_returning`` advice invocations.
        self.result: Any = None
        #: Set on ``after_throwing`` advice invocations.
        self.exception: BaseException | None = None
        #: Snapshot taken at dispatch: was this joinpoint reached from
        #: advice code?  (``adviceexecution()`` matches on this.)
        self.from_advice: bool = False

    # -- identity ---------------------------------------------------------

    @property
    def signature(self) -> str:
        """Human-readable ``Class.method`` signature of the joinpoint."""
        if self.kind is JoinPointKind.INITIALIZATION:
            return f"{self.cls.__name__}.new"
        return f"{self.cls.__name__}.{self.name}"

    @property
    def target_class(self) -> type:
        """Dynamic type of the receiver (the defining class for inits)."""
        if self.target is not None:
            return type(self.target)
        return self.cls

    # -- caller (within) ---------------------------------------------------

    @property
    def caller(self) -> CallerInfo | None:
        """Lexical caller info; resolved lazily, may be ``None``."""
        if self._caller is None and self._caller_resolver is not None:
            self._caller = self._caller_resolver()
        return self._caller

    # -- chain control -----------------------------------------------------

    def proceed(self, *args: Any, **kwargs: Any) -> Any:
        """Continue with the rest of the advice chain / original code.

        With no arguments the current ``args``/``kwargs`` are re-used.
        Passing positional or keyword arguments substitutes them for the
        remainder of the chain (AspectJ ``proceed(..)`` semantics).
        For initialization joinpoints, each invocation constructs and
        returns a *fresh, fully initialised* instance.
        """
        proceed = self._proceed_map.get(threading.get_ident())
        if proceed is None:
            raise ProceedError(
                f"proceed() called outside an active around advice for {self.signature}"
            )
        return proceed(*args, **kwargs)

    def capture_proceed(self) -> Callable[..., Any]:
        """Capture the continuation for *deferred* execution.

        An around advice that hands the rest of the chain to another
        activity (the concurrency aspect spawning a thread) must capture
        the continuation while the advice body is still active — after
        the advice returns, :meth:`proceed` is disarmed.  The returned
        callable stays valid and runs the remainder of the chain on
        whichever thread invokes it.
        """
        proceed = self._proceed_map.get(threading.get_ident())
        if proceed is None:
            raise ProceedError(
                f"capture_proceed() outside an active around advice for {self.signature}"
            )
        return proceed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JoinPoint {self.kind} {self.signature} args={self.args!r}>"
