"""Joinpoint model.

A *joinpoint* is a well-defined event in program execution that advice can
intercept.  Mirroring the subset of AspectJ the paper uses (Section 3), we
support two kinds:

* ``CALL`` — invocation of a method on a woven class;
* ``INITIALIZATION`` — construction of an instance of a woven class
  (AspectJ's ``Class.new(..)`` pattern).

The :class:`JoinPoint` object handed to advice carries full reflective
information plus :meth:`JoinPoint.proceed`, which continues with the rest
of the advice chain (and ultimately the original behaviour).  Around advice
may call ``proceed`` zero, one or *many* times — the paper's partition
aspect calls the constructor joinpoint's ``proceed`` once per pipeline
stage to create its "aspect managed objects".
"""

from __future__ import annotations

import enum
from threading import get_ident
from typing import Any, Callable

from repro.errors import ProceedError

__all__ = ["JoinPointKind", "JoinPoint", "CallerInfo"]

#: The compiled plans' around-segment continuation class, injected by
#: :mod:`repro.aop.plan` at import time (a set-after-import hand-off —
#: ``plan`` imports this module, so it cannot be imported here).
#: :meth:`JoinPoint.proceed` type-checks the armed continuation against
#: it and *inlines* the level step: one Python frame per around level
#: instead of two, and no re-packing of the argument views.
_AROUND_CONT: type | None = None

#: The frozen-continuation class used by :meth:`JoinPoint.capture_proceed`
#: for *fused* all-around plans (see ``_FusedJoinPoint`` in
#: :mod:`repro.aop.plan`); injected the same way as ``_AROUND_CONT``.
_CAPTURED_CONT: type | None = None


class JoinPointKind(enum.Enum):
    """The kinds of interceptable events."""

    CALL = "call"
    INITIALIZATION = "initialization"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CallerInfo:
    """Lexical information about the code that reached a joinpoint.

    Computed lazily (walking Python frames is costly) and only when a
    deployed pointcut actually uses ``within(..)``.
    """

    __slots__ = ("module", "qualname", "function")

    def __init__(self, module: str, qualname: str, function: str):
        self.module = module
        self.qualname = qualname
        self.function = function

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CallerInfo({self.module}.{self.qualname})"


class JoinPoint:
    """Reflective description of one intercepted event.

    Attributes
    ----------
    kind:
        :class:`JoinPointKind` of the event.
    cls:
        The woven class owning the intercepted method / constructor.
    name:
        Method name (``"__init__"`` for initialization joinpoints).
    target:
        Receiver instance for ``CALL`` joinpoints, ``None`` for
        ``INITIALIZATION`` (the instance does not exist yet).
    args, kwargs:
        The *current* arguments.  ``proceed`` with no arguments re-uses
        them; ``proceed(x, y)`` replaces the positional arguments, exactly
        like AspectJ's ``proceed``.
    """

    __slots__ = (
        "kind",
        "cls",
        "name",
        "target",
        "args",
        "kwargs",
        "_proceed_map",
        "_armed_tid",
        "_caller",
        "_caller_resolver",
        "result",
        "exception",
        "from_advice",
    )

    def __init__(
        self,
        kind: JoinPointKind,
        cls: type,
        name: str,
        target: Any,
        args: tuple,
        kwargs: dict,
    ):
        self.kind = kind
        self.cls = cls
        self.name = name
        self.target = target
        self.args = args
        self.kwargs = kwargs
        # Continuations are tracked *per thread*: an async concurrency
        # aspect may hand the rest of the chain to a spawned activity
        # while the original thread unwinds — neither may clobber the
        # other's view of ``proceed``.
        self._proceed_map: dict[int, Callable] = {}
        #: Thread whose around-segment continuation is fused into this
        #: joinpoint (see ``_FusedJoinPoint`` in repro.aop.plan); ``-1``
        #: when dispatch goes through the proceed map instead.
        self._armed_tid: int = -1
        self._caller: CallerInfo | None = None
        self._caller_resolver: Callable[[], CallerInfo] | None = None
        #: Set on ``after_returning`` advice invocations.
        self.result: Any = None
        #: Set on ``after_throwing`` advice invocations.
        self.exception: BaseException | None = None
        #: Snapshot taken at dispatch: was this joinpoint reached from
        #: advice code?  (``adviceexecution()`` matches on this.)
        self.from_advice: bool = False

    # -- identity ---------------------------------------------------------

    @property
    def signature(self) -> str:
        """Human-readable ``Class.method`` signature of the joinpoint."""
        if self.kind is JoinPointKind.INITIALIZATION:
            return f"{self.cls.__name__}.new"
        return f"{self.cls.__name__}.{self.name}"

    @property
    def target_class(self) -> type:
        """Dynamic type of the receiver (the defining class for inits)."""
        if self.target is not None:
            return type(self.target)
        return self.cls

    # -- caller (within) ---------------------------------------------------

    @property
    def caller(self) -> CallerInfo | None:
        """Lexical caller info; resolved lazily, may be ``None``."""
        if self._caller is None and self._caller_resolver is not None:
            self._caller = self._caller_resolver()
        return self._caller

    # -- chain control -----------------------------------------------------

    def proceed(self, *args: Any, **kwargs: Any) -> Any:
        """Continue with the rest of the advice chain / original code.

        With no arguments the current ``args``/``kwargs`` are re-used.
        Passing positional or keyword arguments substitutes them for the
        remainder of the chain (AspectJ ``proceed(..)`` semantics).
        For initialization joinpoints, each invocation constructs and
        returns a *fresh, fully initialised* instance.
        """
        tid = get_ident()
        if self._armed_tid == tid:
            # Fused all-around plan: the continuation state lives in
            # slots on this joinpoint itself (see ``_FusedJoinPoint`` in
            # repro.aop.plan) — no dict lookup, no continuation object.
            i = self._i
            nxt = i + 1
            cargs = self._aargs
            ckwargs = self._akwargs
            if not args and not kwargs:
                self.args = cargs
                self.kwargs = ckwargs
                if nxt == self._n:
                    return self._orig(self.target, *cargs, **ckwargs)
                self._i = nxt
                try:
                    result = self._funcs[nxt](self)
                except BaseException:
                    self._i = i
                    raise
                self._i = i
                return result
            use_args = args if args else cargs
            use_kwargs = kwargs if kwargs else ckwargs
            self.args = use_args
            self.kwargs = use_kwargs
            if nxt == self._n:
                result = self._orig(self.target, *use_args, **use_kwargs)
            else:
                self._i = nxt
                self._aargs = use_args
                self._akwargs = use_kwargs
                try:
                    result = self._funcs[nxt](self)
                except BaseException:
                    self._i = i
                    self._aargs = cargs
                    self._akwargs = ckwargs
                    raise
            self.args = cargs
            self.kwargs = ckwargs
            self._i = i
            self._aargs = cargs
            self._akwargs = ckwargs
            return result
        p = self._proceed_map.get(tid)
        if p is None:
            raise ProceedError(
                f"proceed() called outside an active around advice for {self.signature}"
            )
        if p.__class__ is not _AROUND_CONT:
            # interpreter closures / captured continuations
            return p(*args, **kwargs)
        # Inlined step of the compiled around-segment continuation
        # (mirrors ``_AroundCont.__call__`` — see repro.aop.plan): the
        # armed level ``i`` proceeds into level ``i + 1`` or, past the
        # last around, into the segment tail.  On success the armed view
        # is restored so a second ``proceed()`` replays; on an exception
        # it is rolled back to this level (``jp.args`` deliberately
        # stays as the failing level set it).
        i = p.i
        nxt = i + 1
        cargs = p.args
        ckwargs = p.kwargs
        if not args and not kwargs:
            # no substitution: every argument view is already current,
            # only the armed level index moves
            self.args = cargs
            self.kwargs = ckwargs
            if nxt == p.n:
                orig = p.orig
                if orig is not None:  # bare original: skip the tail frame
                    return orig(p.self_obj, *cargs, **ckwargs)
                return p.tail(self, p.self_obj, cargs, ckwargs)
            p.i = nxt
            try:
                result = p.funcs[nxt](self)
            except BaseException:
                p.i = i
                raise
            p.i = i
            return result
        use_args = args if args else cargs
        use_kwargs = kwargs if kwargs else ckwargs
        self.args = use_args
        self.kwargs = use_kwargs
        if nxt == p.n:
            orig = p.orig
            if orig is not None:
                result = orig(p.self_obj, *use_args, **use_kwargs)
            else:
                result = p.tail(self, p.self_obj, use_args, use_kwargs)
        else:
            p.i = nxt
            p.args = use_args
            p.kwargs = use_kwargs
            try:
                result = p.funcs[nxt](self)
            except BaseException:
                p.i = i
                p.args = cargs
                p.kwargs = ckwargs
                raise
        self.args = cargs
        self.kwargs = ckwargs
        p.i = i
        p.args = cargs
        p.kwargs = ckwargs
        return result

    def capture_proceed(self) -> Callable[..., Any]:
        """Capture the continuation for *deferred* execution.

        An around advice that hands the rest of the chain to another
        activity (the concurrency aspect spawning a thread) must capture
        the continuation while the advice body is still active — after
        the advice returns, :meth:`proceed` is disarmed.  The returned
        callable stays valid and runs the remainder of the chain on
        whichever thread invokes it.
        """
        tid = get_ident()
        if self._armed_tid == tid:
            # Fused all-around plan: freeze the slot-resident state into
            # a replayable continuation (same shape the non-fused plans
            # capture from their ``_AroundCont``).
            return _CAPTURED_CONT(  # type: ignore[misc]
                self._funcs,
                self._n,
                self._tail,
                self,
                self.target,
                self._i,
                self._aargs,
                self._akwargs,
            )
        proceed = self._proceed_map.get(tid)
        if proceed is None:
            raise ProceedError(
                f"capture_proceed() outside an active around advice for {self.signature}"
            )
        # Compiled plans arm one mutable continuation object per around
        # segment (as its bound ``__call__``); its state changes as the
        # run unwinds, so capture asks it for a frozen snapshot.  The
        # interpreter's per-level closures have no ``capture`` and are
        # returned as-is.
        owner = getattr(proceed, "__self__", proceed)
        capture = getattr(owner, "capture", None)
        if capture is not None:
            return capture()
        return proceed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JoinPoint {self.kind} {self.signature} args={self.args!r}>"
