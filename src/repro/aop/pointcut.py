"""Pointcut AST and combinators.

A pointcut selects a set of joinpoints.  Matching happens in two phases,
the same split AspectJ's weaver performs:

1. **Shadow matching** (:meth:`Pointcut.matches_shadow`) — purely static,
   against a ``(class, method-name, kind)`` triple.  The registry uses it
   to build cached advice chains per woven method.  It answers
   :data:`NO` (never matches there), :data:`YES` (always matches there),
   or :data:`MAYBE` (matches depending on runtime state).
2. **Dynamic evaluation** (:meth:`Pointcut.evaluate`) — per call, for
   residues such as argument types, ``target``, ``cflow``, ``within`` and
   ``adviceexecution``.

Pointcuts compose with ``&`` (and), ``|`` (or) and ``~`` (not), mirroring
AspectJ's ``&&``, ``||``, ``!``.
"""

from __future__ import annotations

from typing import Any

from repro.aop import cflow as _cflow
from repro.aop.joinpoint import JoinPoint, JoinPointKind
from repro.aop.signature import ParamsPattern, SignaturePattern, TypePattern

__all__ = [
    "NO",
    "YES",
    "MAYBE",
    "Pointcut",
    "Call",
    "Execution",
    "Initialization",
    "Within",
    "Target",
    "Args",
    "CFlow",
    "CFlowBelow",
    "AdviceExecution",
    "TruePointcut",
    "FalsePointcut",
    "And",
    "Or",
    "Not",
    "call",
    "execution",
    "initialization",
    "within",
    "target",
    "args",
    "cflow",
    "cflowbelow",
]

# Three-valued shadow-matching results.
NO = 0
YES = 1
MAYBE = 2


class Pointcut:
    """Base class for all pointcut AST nodes."""

    #: True when dynamic evaluation needs the lexical caller (``within``).
    needs_caller: bool = False

    # -- matching ----------------------------------------------------------

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> int:
        raise NotImplementedError

    def evaluate(self, jp: JoinPoint) -> bool:
        """Full dynamic test; only called when shadow said YES or MAYBE."""
        raise NotImplementedError

    # -- composition ---------------------------------------------------------

    def __and__(self, other: "Pointcut") -> "Pointcut":
        return And(self, _coerce(other))

    def __or__(self, other: "Pointcut") -> "Pointcut":
        return Or(self, _coerce(other))

    def __invert__(self) -> "Pointcut":
        return Not(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self}>"


def _coerce(value: Any) -> "Pointcut":
    if isinstance(value, Pointcut):
        return value
    if isinstance(value, str):
        from repro.aop.parser import parse_pointcut

        return parse_pointcut(value)
    raise TypeError(f"cannot combine pointcut with {value!r}")


class _KindedSignature(Pointcut):
    """Common base for call/execution/initialization."""

    kind: JoinPointKind

    def __init__(self, signature: SignaturePattern | str):
        if isinstance(signature, str):
            signature = SignaturePattern.parse(signature)
        self.signature = signature

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> int:
        if kind is not self.kind:
            return NO
        if self.kind is JoinPointKind.INITIALIZATION:
            if not self.signature.type_pattern.matches_class(cls):
                return NO
        elif not self.signature.matches_shadow(cls, name):
            return NO
        return MAYBE if self.signature.has_dynamic_residue else YES

    def evaluate(self, jp: JoinPoint) -> bool:
        if jp.kind is not self.kind:
            return False
        if self.kind is JoinPointKind.INITIALIZATION:
            if not self.signature.type_pattern.matches_class(jp.cls):
                return False
        elif not self.signature.matches_shadow(jp.cls, jp.name):
            return False
        return self.signature.matches_args(jp.args)

    def __str__(self) -> str:
        label = {
            JoinPointKind.CALL: "call",
            JoinPointKind.INITIALIZATION: "initialization",
        }[self.kind]
        return f"{label}({self.signature})"


class Call(_KindedSignature):
    """``call(Type.method(params))`` — interception of a method call."""

    kind = JoinPointKind.CALL


class Execution(Call):
    """``execution(..)`` — in this runtime weaver, call-site and execution
    interception coincide (we wrap the method on the defining class), so
    ``execution`` is an alias of :class:`Call`.  Kept as a distinct node so
    expressions round-trip and the distinction can be tightened later."""

    def __str__(self) -> str:
        return f"execution({self.signature})"


class Initialization(_KindedSignature):
    """``initialization(Type.new(params))`` — construction interception."""

    kind = JoinPointKind.INITIALIZATION


class Within(Pointcut):
    """``within(TypeOrModulePattern)`` — restricts to joinpoints reached
    from code whose module/qualname matches the pattern."""

    needs_caller = True

    def __init__(self, pattern: TypePattern | str):
        if isinstance(pattern, str):
            pattern = TypePattern(pattern)
        self.pattern = pattern

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> int:
        return MAYBE

    def evaluate(self, jp: JoinPoint) -> bool:
        caller = jp.caller
        if caller is None:
            return False
        return self.pattern.matches_string(
            f"{caller.module}.{caller.qualname}"
        ) or self.pattern.matches_string(caller.module)

    def __str__(self) -> str:
        return f"within({self.pattern})"


class Target(Pointcut):
    """``target(TypePattern)`` — dynamic type of the receiver."""

    def __init__(self, pattern: TypePattern | str | type):
        if isinstance(pattern, type):
            pattern = TypePattern.from_class(pattern, subtypes=True)
        elif isinstance(pattern, str):
            pattern = TypePattern(pattern)
        self.pattern = pattern

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> int:
        # The receiver may be a subclass instance; decide dynamically
        # unless the defining class itself can never match or always does.
        if self.pattern.matches_class(cls):
            return YES
        return MAYBE

    def evaluate(self, jp: JoinPoint) -> bool:
        return self.pattern.matches_class(jp.target_class)

    def __str__(self) -> str:
        return f"target({self.pattern})"


class Args(Pointcut):
    """``args(params)`` — dynamic argument pattern."""

    def __init__(self, params: ParamsPattern | str):
        if isinstance(params, str):
            from repro.aop.signature import _split_params

            params = ParamsPattern(_split_params(params))
        self.params = params

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> int:
        return YES if self.params.is_any else MAYBE

    def evaluate(self, jp: JoinPoint) -> bool:
        return self.params.matches(jp.args)

    def __str__(self) -> str:
        return f"args({self.params})"


class CFlow(Pointcut):
    """``cflow(pc)`` — some joinpoint on the current control-flow stack
    (including the current one) matches ``pc``."""

    include_current = True

    def __init__(self, inner: Pointcut):
        self.inner = inner
        self.needs_caller = inner.needs_caller

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> int:
        return MAYBE

    def evaluate(self, jp: JoinPoint) -> bool:
        stack = _cflow.current_stack()
        entries = stack if self.include_current else stack[:-1]
        for frame_jp in entries:
            if (
                self.inner.matches_shadow(frame_jp.cls, frame_jp.name, frame_jp.kind)
                is not NO
                and self.inner.evaluate(frame_jp)
            ):
                return True
        return False

    def __str__(self) -> str:
        return f"cflow({self.inner})"


class CFlowBelow(CFlow):
    """``cflowbelow(pc)`` — like ``cflow`` but excluding the current
    joinpoint."""

    include_current = False

    def __str__(self) -> str:
        return f"cflowbelow({self.inner})"


class AdviceExecution(Pointcut):
    """``adviceexecution()`` — true when the joinpoint was *reached from*
    advice code (snapshot taken at dispatch time, so evaluating it for
    inner advice of the same chain is not polluted by outer advice
    bodies).  ``~AdviceExecution()`` restricts a pointcut to joinpoints
    reached from core functionality only."""

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> int:
        return MAYBE

    def evaluate(self, jp: JoinPoint) -> bool:
        return jp.from_advice

    def __str__(self) -> str:
        return "adviceexecution()"


class TruePointcut(Pointcut):
    """Matches every joinpoint (identity for ``&``)."""

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> int:
        return YES

    def evaluate(self, jp: JoinPoint) -> bool:
        return True

    def __str__(self) -> str:
        return "true()"


class FalsePointcut(Pointcut):
    """Matches no joinpoint (identity for ``|``)."""

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> int:
        return NO

    def evaluate(self, jp: JoinPoint) -> bool:
        return False

    def __str__(self) -> str:
        return "false()"


class And(Pointcut):
    def __init__(self, left: Pointcut, right: Pointcut):
        self.left = left
        self.right = right
        self.needs_caller = left.needs_caller or right.needs_caller

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> int:
        l = self.left.matches_shadow(cls, name, kind)
        if l is NO:
            return NO
        r = self.right.matches_shadow(cls, name, kind)
        if r is NO:
            return NO
        return YES if (l is YES and r is YES) else MAYBE

    def evaluate(self, jp: JoinPoint) -> bool:
        return self.left.evaluate(jp) and self.right.evaluate(jp)

    def __str__(self) -> str:
        return f"({self.left} && {self.right})"


class Or(Pointcut):
    def __init__(self, left: Pointcut, right: Pointcut):
        self.left = left
        self.right = right
        self.needs_caller = left.needs_caller or right.needs_caller

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> int:
        l = self.left.matches_shadow(cls, name, kind)
        r = self.right.matches_shadow(cls, name, kind)
        if l is YES or r is YES:
            return YES
        if l is NO and r is NO:
            return NO
        return MAYBE

    def evaluate(self, jp: JoinPoint) -> bool:
        return self.left.evaluate(jp) or self.right.evaluate(jp)

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


class Not(Pointcut):
    def __init__(self, inner: Pointcut):
        self.inner = inner
        self.needs_caller = inner.needs_caller

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> int:
        inner = self.inner.matches_shadow(cls, name, kind)
        if inner is NO:
            return YES
        if inner is YES:
            return NO
        return MAYBE

    def evaluate(self, jp: JoinPoint) -> bool:
        return not self.inner.evaluate(jp)

    def __str__(self) -> str:
        return f"!{self.inner}"


# ---------------------------------------------------------------------------
# Convenience constructors (programmatic pointcut building)
# ---------------------------------------------------------------------------


def call(signature: str) -> Call:
    """``call("Type.method(..)")``"""
    return Call(signature)


def execution(signature: str) -> Execution:
    return Execution(signature)


def initialization(signature: str) -> Initialization:
    """``initialization("Type.new(..)")`` — also reachable as
    ``call("Type.new(..)")`` in the string language."""
    return Initialization(signature)


def within(pattern: str) -> Within:
    return Within(pattern)


def target(pattern: str | type) -> Target:
    return Target(pattern)


def args(params: str) -> Args:
    return Args(params)


def cflow(inner: Pointcut | str) -> CFlow:
    return CFlow(_coerce(inner))


def contains_cflow(node: Pointcut) -> bool:
    """Does this pointcut tree use ``cflow``/``cflowbelow`` anywhere?

    The weaver checks this at deployment: when any live pointcut is
    flow-sensitive, every dispatcher must maintain the joinpoint stack
    even at shadows with no applicable advice (AspectJ instruments
    cflow entry/exit shadows the same way)."""
    if isinstance(node, CFlow):
        return True
    if isinstance(node, (And, Or)):
        return contains_cflow(node.left) or contains_cflow(node.right)
    if isinstance(node, Not):
        return contains_cflow(node.inner)
    return False


def cflowbelow(inner: Pointcut | str) -> CFlowBelow:
    return CFlowBelow(_coerce(inner))
