"""The weaver: class instrumentation and the deployment registry.

``weave(cls)`` rewrites a class in place — each plain method is replaced
by a *compiled dispatch plan* (see :mod:`repro.aop.plan`) and
construction is intercepted through ``__new__`` / ``__init__`` patches.
This is the runtime analogue of AspectJ's compile-time weaving, with one
twist: instead of generic dispatchers interpreting an epoch-cached
advice-chain table per call, each shadow's dispatcher is a closure
*specialised* to the advice that applies there (the inert / static /
generic decision tree of :mod:`repro.aop.plan` — every statically
matched chain compiles, whatever its kind mix and ordering; only
dynamic-residue chains fall back to the interpreter), recompiled only
when a deploy/undeploy actually changes that shadow's chain.  A static shadow→deployment match index
(built from ``Pointcut.matches_shadow``) keeps "(un)plug on the fly"
cheap under load: deploying an aspect whose pointcuts match ``Jacobi.*``
leaves every ``Primes.*`` plan untouched.

Invalidation rules (what a mutation recompiles or prunes):

* **deploy/undeploy** — only the shadows in the deployment's static
  match set recompile (each recompile also drops the shadow's cached
  batch plan, since batch plans bake the same chain);
* **flow-sensitivity flips** (first/last ``cflow`` pointcut live) —
  global recompile: the *inert* plan shape changes everywhere (stack
  maintenance on/off);
* **``declare_parents``** — global: it rewrites the subtype relation
  that *other* deployments' ``Base+`` pointcuts match against, so every
  deployment's match index is rebuilt before recompiling;
* **unweave** — prunes every per-class artifact so long-lived processes
  don't pin ephemeral classes: the class's shadows (taking their call
  and batch plans with them), its chain-cache rows, its ``PlanStats``
  counters (call and batch), and its entries in live deployments' match
  sets;
* the weaver ``version`` bumps only *after* recompiled plans are
  installed, so :class:`~repro.aop.plan.MethodTable` consumers can never
  cache a pre-mutation entry under the new version.

Construction semantics (matching paper Section 4.1):

* around advice on ``initialization(C.new(..))`` may call ``proceed``
  several times — each call builds a **fresh fully-initialised instance**
  (the aspect-managed objects of Figure 4) — and may return any object to
  the client;
* passing a :class:`~repro.aop.plan.CtorPack` to a single ``proceed``
  performs **batched construction**: the innermost step builds one
  instance per argset and returns the list, so a duplication loop pays
  one traversal of the inner initialization chain per duplicate *set*
  instead of one per worker;
* constructions performed *inside advice bodies* (e.g. the partition
  aspect composing its own helpers) take the raw path and are NOT
  re-intercepted — "this pointcut only intercepts object creations in the
  core functionality";
* method **calls** made inside advice ARE re-intercepted — Figure 7's
  block 3 relies on recursive interception of ``filter`` to forward packs
  down the pipeline.
"""

from __future__ import annotations

import functools
import sys
import threading
from typing import Any, Callable, Iterable

from repro.aop.advice import AdviceKind, BoundAdvice, run_chain
from repro.aop.aspect import Aspect
from repro.aop.cflow import (
    bypassing_construction,
    construction_bypass,
    entered_joinpoint,
    in_advice,
)
from repro.aop.intertype import IntertypeApplier
from repro.aop.joinpoint import JoinPoint, JoinPointKind
from repro.aop.plan import (
    CtorPack,
    PlanStats,
    Shadow,
    compile_call_impl,
    resolve_caller,
)
from repro.aop.pointcut import MAYBE, NO, Pointcut, contains_cflow
from repro.errors import DeploymentError, WeaveError

__all__ = ["Weaver", "default_weaver", "weave", "unweave", "deploy", "undeploy",
           "undeploy_all", "unweave_all", "raw_construct", "deployed_aspects",
           "is_woven"]

_MISSING = object()
_ORIGINALS_ATTR = "__aop_originals__"
_WOVEN_FLAG = "__aop_woven__"


# CPython quirk: once a class's ``__new__``/``__init__`` has been assigned
# a Python function, the type's tp_new/tp_init slots are permanently
# de-optimised to the dynamic-lookup wrappers.  Deleting the attribute then
# leaves ``object.__new__`` reachable through ``slot_tp_new``, which makes
# it reject constructor arguments ("object.__new__() takes exactly one
# argument") for every subclass.  Unweaving therefore installs these
# passthrough shims instead of deleting, restoring default construction
# semantics for classes that never defined the dunder themselves.


def _shim_new(cls: type, *args: Any, **kwargs: Any) -> Any:
    return object.__new__(cls)


def _shim_init(self: Any, *args: Any, **kwargs: Any) -> None:
    object.__init__(self)


_shim_new.__aop_shim__ = True  # type: ignore[attr-defined]
_shim_init.__aop_shim__ = True  # type: ignore[attr-defined]


class _ConstructionState(threading.local):
    def __init__(self) -> None:
        self.skip_init_ids: set[int] = set()


_RECONSTRUCTORS = frozenset({"copy", "copyreg", "pickle"})


def _called_from_reconstruction() -> bool:
    """Is ``cls.__new__(cls)`` being invoked by copy/pickle machinery?

    Object *reconstruction* (deepcopy, unpickling) calls ``__new__``
    directly with no arguments and must not run initialization advice —
    AspectJ's deserialization likewise skips constructors.  The Python
    implementations of :mod:`copy`/:mod:`pickle` are visible on the
    stack; the C unpickler is not (the serializer's construction bypass
    covers that path).
    """
    frame = sys._getframe(2)
    for _ in range(5):
        if frame is None:
            return False
        module = frame.f_globals.get("__name__", "")
        if module in _RECONSTRUCTORS:
            return True
        frame = frame.f_back
    return False


def _init_requires_args(init: Callable) -> bool:
    """Does ``init`` have required parameters beyond ``self``?"""
    code = getattr(init, "__code__", None)
    if code is None:
        return False
    required = code.co_argcount - 1 - len(getattr(init, "__defaults__", None) or ())
    return required > 0


class _Deployment:
    """Book-keeping for one deployed aspect instance."""

    __slots__ = ("aspect", "seq", "resolved", "intertype", "matched")

    def __init__(self, aspect: Aspect, seq: int):
        self.aspect = aspect
        self.seq = seq
        # list of (kind, pointcut, bound_func, decl_index)
        self.resolved: list[tuple[AdviceKind, Pointcut, Callable, int]] = []
        self.intertype = IntertypeApplier()
        #: shadows whose chains this deployment can affect (static index)
        self.matched: set[Shadow] = set()


class Weaver:
    """Instrumentation + deployment registry.

    A single :data:`default_weaver` serves normal use (class patches are
    global by nature); independent instances exist for tests that need an
    isolated registry over their own classes.
    """

    def __init__(self) -> None:
        self._woven: dict[type, dict[str, Any]] = {}
        self._deployments: list[_Deployment] = []
        self._epoch = 0
        self._seq = 0
        self._chain_cache: dict[tuple[type, str, JoinPointKind], tuple[int, list[BoundAdvice], bool]] = {}
        self._ctor_state = _ConstructionState()
        self._lock = threading.RLock()
        # True while any deployed pointcut is flow-sensitive; compiled
        # plans then maintain the joinpoint stack even on inert shadows.
        self._cflow_active = False
        #: live shadows per woven class, keyed (name, kind)
        self._shadows: dict[type, dict[tuple[str, JoinPointKind], Shadow]] = {}
        #: plan-compiler counters + hooks (targeted-invalidation tests)
        self.plan_stats = PlanStats()

    @property
    def version(self) -> int:
        """Monotonic mutation generation: bumped by weave/unweave/deploy/
        undeploy.  Plan consumers (method tables) cache against it."""
        return self._epoch

    # ------------------------------------------------------------------
    # Weaving
    # ------------------------------------------------------------------

    def weave(self, cls: type, methods: Iterable[str] | None = None) -> type:
        """Instrument ``cls`` for interception.  Idempotent.

        ``methods`` restricts which methods get dispatchers; by default
        every plain function defined in the class body (no dunders, no
        static/class methods, no properties) plus construction.
        """
        if not isinstance(cls, type):
            raise WeaveError(f"can only weave classes, got {cls!r}")
        with self._lock:
            if cls in self._woven:
                return cls
            originals: dict[str, Any] = {}
            names = list(methods) if methods is not None else [
                name
                for name, attr in vars(cls).items()
                if not name.startswith("__")
                and isinstance(attr, type(lambda: None))
            ]
            shadows: dict[tuple[str, JoinPointKind], Shadow] = {}
            for name in names:
                attr = vars(cls).get(name, _MISSING)
                if attr is _MISSING:
                    raise WeaveError(f"{cls.__name__}.{name} is not defined in the class body")
                if not callable(attr):
                    raise WeaveError(f"{cls.__name__}.{name} is not callable")
                originals[name] = attr
                shadows[(name, JoinPointKind.CALL)] = Shadow(
                    cls, name, JoinPointKind.CALL, attr
                )
            ctor_shadow = Shadow(
                cls, "__init__", JoinPointKind.INITIALIZATION, None
            )
            shadows[("__init__", JoinPointKind.INITIALIZATION)] = ctor_shadow
            self._weave_construction(cls, originals, ctor_shadow)
            self._woven[cls] = originals
            self._shadows[cls] = shadows
            setattr(cls, _WOVEN_FLAG, True)
            setattr(cls, _ORIGINALS_ATTR, originals)
            for shadow in shadows.values():
                self._recompile_shadow(shadow)
            self._bump_epoch()  # after installs; see _apply_deployment_change
            # extend the static match index of live deployments so a later
            # undeploy knows these shadows may need recompiling
            for deployment in self._deployments:
                for shadow in shadows.values():
                    if self._deployment_matches(deployment, shadow):
                        deployment.matched.add(shadow)
            return cls

    def unweave(self, cls: type) -> None:
        """Restore ``cls`` to its pre-weave definition."""
        with self._lock:
            originals = self._woven.pop(cls, None)
            if originals is None:
                raise WeaveError(f"{cls.__name__} is not woven")
            dead = self._shadows.pop(cls, None)
            if dead:
                # prune the static match index: a long-lived deployment
                # must not pin dead shadows (and their classes) forever
                dead_set = set(dead.values())
                for deployment in self._deployments:
                    deployment.matched -= dead_set
            self.plan_stats.prune_class(cls)
            for key in [k for k in self._chain_cache if k[0] is cls]:
                del self._chain_cache[key]
            for name, attr in originals.items():
                if attr is _MISSING:
                    if name == "__new__":
                        cls.__new__ = _shim_new  # type: ignore[assignment]
                    elif name == "__init__":
                        cls.__init__ = _shim_init  # type: ignore[assignment]
                    else:
                        try:
                            delattr(cls, name)
                        except AttributeError:
                            pass
                else:
                    setattr(cls, name, attr)
            for flag in (_WOVEN_FLAG, _ORIGINALS_ATTR):
                try:
                    delattr(cls, flag)
                except AttributeError:
                    pass
            self._bump_epoch()

    def unweave_all(self) -> None:
        for cls in list(self._woven):
            self.unweave(cls)

    def is_woven(self, cls: type) -> bool:
        return cls in self._woven

    @property
    def woven_classes(self) -> tuple[type, ...]:
        return tuple(self._woven)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(self, aspect: Aspect, targets: Iterable[type] = ()) -> Aspect:
        """Deploy an aspect instance: resolve its pointcuts, apply its
        inter-type declarations, and make its advice live.

        ``targets`` is a convenience that weaves the listed classes first
        (AspectJ weaves the whole program; we weave what we are told).
        """
        if not isinstance(aspect, Aspect):
            raise DeploymentError(f"expected an Aspect instance, got {aspect!r}")
        with self._lock:
            if any(d.aspect is aspect for d in self._deployments):
                raise DeploymentError(f"{aspect!r} is already deployed")
            for cls in targets:
                self.weave(cls)
            deployment = _Deployment(aspect, self._seq)
            self._seq += 1
            # Resolve all pointcuts up front so abstract aspects fail fast.
            for decl in type(aspect)._advice_decls:
                resolved = aspect.resolve_pointcut(decl.pointcut_source)
                bound = decl.func.__get__(aspect, type(aspect))
                deployment.resolved.append((decl.kind, resolved, bound, decl.index))
            try:
                for target_cls, name, func in type(aspect)._introductions:
                    deployment.intertype.introduce_member(
                        target_cls, name, func.__get__(aspect, type(aspect))
                        if _wants_self(func)
                        else func,
                    )
                for parent_decl in aspect.parents:
                    deployment.intertype.declare_parent(
                        parent_decl.target, parent_decl.base
                    )
            except Exception:
                deployment.intertype.revert()
                raise
            self._deployments.append(deployment)
            deployment.matched = {
                shadow
                for shadows in self._shadows.values()
                for shadow in shadows.values()
                if self._deployment_matches(deployment, shadow)
            }
            self._apply_deployment_change(
                deployment.matched,
                force_global=bool(deployment.intertype.declared_parents),
            )
            aspect.on_deploy()
            return aspect

    def undeploy(self, aspect: Aspect) -> None:
        """Remove a deployed aspect; its advice stops matching and its
        inter-type declarations are reverted."""
        with self._lock:
            for i, deployment in enumerate(self._deployments):
                if deployment.aspect is aspect:
                    del self._deployments[i]
                    had_parents = bool(deployment.intertype.declared_parents)
                    deployment.intertype.revert()
                    self._apply_deployment_change(
                        {s for s in deployment.matched if self._is_live(s)},
                        force_global=had_parents,
                    )
                    aspect.on_undeploy()
                    return
            raise DeploymentError(f"{aspect!r} is not deployed")

    def undeploy_all(self) -> None:
        for deployment in list(reversed(self._deployments)):
            self.undeploy(deployment.aspect)

    @property
    def deployed(self) -> tuple[Aspect, ...]:
        return tuple(d.aspect for d in self._deployments)

    def is_deployed(self, aspect: Aspect) -> bool:
        return any(d.aspect is aspect for d in self._deployments)

    # ------------------------------------------------------------------
    # Chain computation + plan compilation
    # ------------------------------------------------------------------

    def _bump_epoch(self) -> None:
        self._epoch += 1

    def _recompute_cflow(self) -> None:
        self._cflow_active = any(
            contains_cflow(resolved)
            for deployment in self._deployments
            for _, resolved, _, _ in deployment.resolved
        )

    def _is_live(self, shadow: Shadow) -> bool:
        """Is ``shadow`` still the current shadow at its site?  (A class
        may have been unwoven — and even rewoven with fresh shadows —
        since a deployment indexed it.)"""
        return self._shadows.get(shadow.cls, {}).get(
            (shadow.name, shadow.kind)
        ) is shadow

    @staticmethod
    def _deployment_matches(deployment: _Deployment, shadow: Shadow) -> bool:
        """Static index test: can any advice of ``deployment`` apply at
        ``shadow``?  NO means never (skip recompiling it); YES/MAYBE both
        count — MAYBE residues are evaluated per call by the plan."""
        return any(
            resolved.matches_shadow(shadow.cls, shadow.name, shadow.kind)
            is not NO
            for _, resolved, _, _ in deployment.resolved
        )

    def _apply_deployment_change(
        self, matched: set[Shadow], force_global: bool = False
    ) -> None:
        """Recompile after a deploy/undeploy: only the statically matched
        shadows — unless the change invalidates the index itself.

        Two changes are global by nature: flipping flow-sensitivity
        (alters the inert plan shape everywhere — stack maintenance
        on/off), and intertype ``declare_parents`` (alters the subtype
        relation that *other* deployments' ``Base+`` pointcuts match
        against, so their cached match sets must be rebuilt too).
        """
        was_cflow = self._cflow_active
        self._recompute_cflow()
        if force_global or was_cflow != self._cflow_active:
            all_shadows = [
                shadow
                for shadows in self._shadows.values()
                for shadow in shadows.values()
            ]
            if force_global:
                for deployment in self._deployments:
                    deployment.matched = {
                        shadow
                        for shadow in all_shadows
                        if self._deployment_matches(deployment, shadow)
                    }
            to_recompile: Iterable[Shadow] = all_shadows
        else:
            to_recompile = matched
        for shadow in to_recompile:
            self._recompile_shadow(shadow)
        # bump only after the recompiled plans are installed: a version
        # must never be observable while class attributes still predate
        # it (MethodTable keys its cache entries by observed version)
        self._bump_epoch()

    def _recompile_shadow(self, shadow: Shadow) -> None:
        """Recompute a shadow's chain and install its specialised impl.
        The cached batch plan is invalidated alongside: it bakes the same
        chain, so it must be recompiled lazily on next batched use."""
        entries, needs_caller = self._compute_chain(
            shadow.cls, shadow.name, shadow.kind
        )
        shadow.entries = tuple(entries)
        shadow.needs_caller = needs_caller
        shadow.compiles += 1
        shadow.batch_impl = None
        if shadow.kind is JoinPointKind.CALL:
            impl = compile_call_impl(self, shadow)
            shadow.impl = impl
            setattr(shadow.cls, shadow.name, impl)
        self.plan_stats.record(shadow)

    def _compute_chain(
        self, cls: type, name: str, kind: JoinPointKind
    ) -> tuple[list[BoundAdvice], bool]:
        entries: list[BoundAdvice] = []
        needs_caller = False
        for deployment in self._deployments:
            precedence = deployment.aspect.precedence
            for advice_kind, resolved, bound, index in deployment.resolved:
                shadow = resolved.matches_shadow(cls, name, kind)
                if shadow is NO:
                    continue
                needs_eval = shadow is MAYBE or resolved.needs_caller
                needs_caller = needs_caller or resolved.needs_caller
                entries.append(
                    BoundAdvice(
                        advice_kind,
                        resolved,
                        bound,
                        needs_eval,
                        deployment.aspect,
                        (-precedence, deployment.seq, index),
                    )
                )
        entries.sort(key=lambda e: e.sort_key)
        return entries, needs_caller

    def chain(
        self, cls: type, name: str, kind: JoinPointKind
    ) -> tuple[list[BoundAdvice], bool]:
        """Advice chain for a shadow, outermost-first, version-cached.

        Returns ``(entries, needs_caller)``.  Introspection-facing (see
        :func:`repro.aop.tools.explain`); the hot path reads compiled
        plans instead.
        """
        key = (cls, name, kind)
        cached = self._chain_cache.get(key)
        if cached is not None and cached[0] == self._epoch:
            return cached[1], cached[2]
        with self._lock:
            entries, needs_caller = self._compute_chain(cls, name, kind)
            self._chain_cache[key] = (self._epoch, entries, needs_caller)
            return entries, needs_caller

    # ------------------------------------------------------------------
    # Construction weaving
    # ------------------------------------------------------------------

    def _weave_construction(
        self, cls: type, originals: dict[str, Any], ctor_shadow: Shadow
    ) -> None:
        weaver = self
        orig_new = vars(cls).get("__new__", _MISSING)
        orig_init = vars(cls).get("__init__", _MISSING)
        # shims left by a previous unweave count as "not defined"
        if getattr(orig_new, "__aop_shim__", False):
            orig_new = _MISSING
        if getattr(orig_init, "__aop_shim__", False):
            orig_init = _MISSING
        originals["__new__"] = orig_new
        originals["__init__"] = orig_init
        # effective originals (may be inherited; may be a previous
        # unweave's shim, which is behaviourally the object default)
        real_new = cls.__new__
        real_init = cls.__init__

        def raw_new(kls: type, args: tuple, kwargs: dict) -> Any:
            if real_new is object.__new__:
                return object.__new__(kls)
            return real_new(kls, *args, **kwargs)

        init_needs_args = _init_requires_args(real_init)

        def woven_new(kls: type, *args: Any, **kwargs: Any) -> Any:
            if (
                kls is not cls
                or construction_bypass()
                or in_advice()
            ):
                return raw_new(kls, args, kwargs)
            # inert plan: no initialization advice applies here, so skip
            # the reconstruction frame-walk entirely
            entries = ctor_shadow.entries
            if not entries:
                return raw_new(kls, args, kwargs)
            if not args and not kwargs and (
                init_needs_args or _called_from_reconstruction()
            ):
                # bare __new__(cls): object reconstruction, not a client
                # construction — never an initialization joinpoint
                return raw_new(kls, args, kwargs)
            jp = JoinPoint(
                JoinPointKind.INITIALIZATION, cls, "__init__", None, args, kwargs
            )
            jp.from_advice = in_advice()
            if ctor_shadow.needs_caller:
                jp._caller = resolve_caller()

            def construct(*a: Any, **k: Any) -> Any:
                # a CtorPack through proceed is a *batched* construction:
                # one chain pass built N instances (see plan.CtorPack)
                if len(a) == 1 and not k and isinstance(a[0], CtorPack):
                    with bypassing_construction():
                        return [cls(*pa, **pk) for pa, pk in a[0].argsets]
                with bypassing_construction():
                    return cls(*a, **k)

            with entered_joinpoint(jp):
                result = run_chain(entries, jp, construct)
            if isinstance(result, cls):
                weaver._ctor_state.skip_init_ids.add(id(result))
            return result

        def woven_init(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
            skip = weaver._ctor_state.skip_init_ids
            ident = id(self_obj)
            if ident in skip:
                skip.discard(ident)
                return None
            return real_init(self_obj, *args, **kwargs)

        woven_new.__aop_dispatcher__ = True  # type: ignore[attr-defined]
        woven_init.__aop_dispatcher__ = True  # type: ignore[attr-defined]
        if real_init is not object.__init__ or orig_init is not _MISSING:
            functools.update_wrapper(woven_init, real_init)
        cls.__new__ = woven_new  # type: ignore[assignment]
        cls.__init__ = woven_init  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Raw construction helper
    # ------------------------------------------------------------------

    def raw_construct(self, cls: type, *args: Any, **kwargs: Any) -> Any:
        """Construct an instance bypassing initialization interception —
        the explicit way to build "aspect managed objects" outside of
        ``proceed``."""
        with bypassing_construction():
            return cls(*args, **kwargs)

    # ------------------------------------------------------------------
    # Test / lifecycle support
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Undeploy every aspect and unweave every class."""
        self.undeploy_all()
        self.unweave_all()
        self._chain_cache.clear()
        self.plan_stats.clear()


def _wants_self(func: Callable) -> bool:
    """Introduced members whose first parameter is named ``self`` become
    methods of the *target* class; if the first parameter is named
    ``aspect`` the member is bound to the aspect instance instead (so the
    introduction can reach aspect state)."""
    code = getattr(func, "__code__", None)
    if code is None or code.co_argcount == 0:
        return False
    return code.co_varnames[0] == "aspect"


# ---------------------------------------------------------------------------
# Default weaver + module-level convenience API
# ---------------------------------------------------------------------------

default_weaver = Weaver()


def weave(cls: type, methods: Iterable[str] | None = None) -> type:
    """Weave ``cls`` with the default weaver (see :meth:`Weaver.weave`)."""
    return default_weaver.weave(cls, methods)


def unweave(cls: type) -> None:
    default_weaver.unweave(cls)


def unweave_all() -> None:
    default_weaver.unweave_all()


def deploy(aspect: Aspect, targets: Iterable[type] = ()) -> Aspect:
    """Deploy with the default weaver (see :meth:`Weaver.deploy`)."""
    return default_weaver.deploy(aspect, targets)


def undeploy(aspect: Aspect) -> None:
    default_weaver.undeploy(aspect)


def undeploy_all() -> None:
    default_weaver.undeploy_all()


def deployed_aspects() -> tuple[Aspect, ...]:
    return default_weaver.deployed


def raw_construct(cls: type, *args: Any, **kwargs: Any) -> Any:
    return default_weaver.raw_construct(cls, *args, **kwargs)


def is_woven(cls: type) -> bool:
    return default_weaver.is_woven(cls)
