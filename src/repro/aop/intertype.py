"""Static crosscutting: inter-type declarations.

Implements the two mechanisms of paper Section 3 / Figure 2:

* **member introduction** — add methods/attributes to a class while an
  aspect is deployed (``public void Point.migrate(String node)``);
* **declare parents** — make a class a subtype of an interface
  (``declare parents: Point implements Serializable``), realised through
  the virtual-subtype registry so pointcut ``+`` patterns and
  ``isinstance`` both observe it.

All changes are recorded so undeployment restores the original class.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.aop.signature import register_virtual_base, unregister_virtual_base
from repro.errors import IntertypeError

__all__ = ["IntertypeApplier"]

_MISSING = object()


class IntertypeApplier:
    """Applies and reverts the inter-type declarations of one aspect."""

    def __init__(self) -> None:
        # (cls, name) -> previous value (or _MISSING)
        self._replaced: list[tuple[type, str, Any]] = []
        self._parents: list[tuple[type, type]] = []

    # -- apply ----------------------------------------------------------------

    def introduce_member(self, cls: type, name: str, value: Callable | Any) -> None:
        """Add ``value`` as attribute ``name`` of ``cls``.

        Introducing over an existing member raises: AspectJ rejects
        conflicting inter-type declarations at compile time and silent
        clobbering would make undeploy ambiguous.
        """
        if name in vars(cls):
            raise IntertypeError(
                f"cannot introduce {cls.__name__}.{name}: member already exists"
            )
        previous = vars(cls).get(name, _MISSING)
        setattr(cls, name, value)
        self._replaced.append((cls, name, previous))

    def declare_parent(self, cls: type, base: type) -> None:
        """Declare ``cls`` a subtype of ``base`` (virtual registration)."""
        if not isinstance(cls, type) or not isinstance(base, type):
            raise IntertypeError("declare_parents requires two classes")
        if cls is base:
            raise IntertypeError("a class cannot be declared its own parent")
        register_virtual_base(cls, base)
        self._parents.append((cls, base))

    @property
    def declared_parents(self) -> list[tuple[type, type]]:
        """Currently-applied parent declarations.  The weaver checks this
        to decide whether a deploy/undeploy changed the subtype relation
        (which invalidates every deployment's static match index)."""
        return list(self._parents)

    # -- revert ----------------------------------------------------------------

    def revert(self) -> None:
        """Undo every declaration, in reverse order of application."""
        while self._replaced:
            cls, name, previous = self._replaced.pop()
            if previous is _MISSING:
                try:
                    delattr(cls, name)
                except AttributeError:  # pragma: no cover - already gone
                    pass
            else:
                setattr(cls, name, previous)
        while self._parents:
            cls, base = self._parents.pop()
            unregister_virtual_base(cls, base)
