"""Aspect base class and declaration decorators.

An aspect groups advice, named pointcuts, inter-type declarations and
``declare parents`` into one module — the unit the paper plugs and
unplugs.  Usage mirrors the paper's (simplified AspectJ) sketches::

    class Partition(Aspect):
        filters = 4                                # aspect state

        @around("initialization(PrimeFilter.new(..))")
        def duplicate(self, jp):
            first = prev = None
            for i in range(self.filters):          # "aspect managed objects"
                obj = jp.proceed(...)
                ...
            return first

Abstract reusable aspects (paper Figure 9) declare *abstract pointcuts*
that concrete subclasses must bind::

    class PipelineProtocol(Aspect):
        stage_creation = abstract_pointcut()

        @around("stage_creation")                  # reference by name
        def duplicate(self, jp): ...

    class PrimePipeline(PipelineProtocol):
        stage_creation = pointcut("initialization(PrimeFilter.new(..))")
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable

from repro.aop.advice import AdviceDecl, AdviceKind
from repro.aop.parser import parse_pointcut
from repro.aop.pointcut import Pointcut
from repro.errors import AdviceError, DeploymentError

__all__ = [
    "Aspect",
    "around",
    "before",
    "after",
    "after_returning",
    "after_throwing",
    "introduce",
    "pointcut",
    "abstract_pointcut",
    "AbstractPointcut",
    "declare_parents",
    "ParentDeclaration",
]

_ADVICE_ATTR = "_aop_advice_marker"
_INTRODUCE_ATTR = "_aop_introduce_target"
_IDENTIFIER = re.compile(r"^[A-Za-z_]\w*$")


class AbstractPointcut:
    """Placeholder for a pointcut that concrete subclasses must bind."""

    __slots__ = ("doc",)

    def __init__(self, doc: str = ""):
        self.doc = doc

    def __repr__(self) -> str:  # pragma: no cover
        return "<abstract pointcut>"


def abstract_pointcut(doc: str = "") -> AbstractPointcut:
    """Declare an abstract named pointcut on an (abstract) aspect."""
    return AbstractPointcut(doc)


def pointcut(expression: str | Pointcut) -> Pointcut:
    """Declare a named pointcut from an expression string."""
    if isinstance(expression, Pointcut):
        return expression
    return parse_pointcut(expression)


def _advice(kind: AdviceKind, expression: Any) -> Callable:
    if expression is None:
        raise AdviceError(f"{kind} advice requires a pointcut expression")

    def decorator(func: Callable) -> Callable:
        markers = getattr(func, _ADVICE_ATTR, [])
        markers = list(markers) + [(kind, expression)]
        setattr(func, _ADVICE_ATTR, markers)
        return func

    return decorator


def around(expression: str | Pointcut) -> Callable:
    """Around advice — receives the :class:`JoinPoint`; must call
    ``jp.proceed(..)`` to run the original behaviour."""
    return _advice(AdviceKind.AROUND, expression)


def before(expression: str | Pointcut) -> Callable:
    """Before advice — runs prior to the joinpoint."""
    return _advice(AdviceKind.BEFORE, expression)


def after(expression: str | Pointcut) -> Callable:
    """After (finally) advice — runs whether the joinpoint returned or
    raised."""
    return _advice(AdviceKind.AFTER, expression)


def after_returning(expression: str | Pointcut) -> Callable:
    """After-returning advice — ``jp.result`` holds the return value."""
    return _advice(AdviceKind.AFTER_RETURNING, expression)


def after_throwing(expression: str | Pointcut) -> Callable:
    """After-throwing advice — ``jp.exception`` holds the raised error."""
    return _advice(AdviceKind.AFTER_THROWING, expression)


def introduce(target: type) -> Callable:
    """Inter-type member introduction: add the decorated function as a
    method of ``target`` while the aspect is deployed (paper Figure 2's
    ``Point.migrate``)."""

    def decorator(func: Callable) -> Callable:
        setattr(func, _INTRODUCE_ATTR, target)
        return func

    return decorator


class ParentDeclaration:
    """One ``declare parents: Target implements Base`` entry."""

    __slots__ = ("target", "base")

    def __init__(self, target: type, base: type):
        self.target = target
        self.base = base

    def __repr__(self) -> str:  # pragma: no cover
        return f"declare_parents({self.target.__name__} -> {self.base.__name__})"


def declare_parents(target: type, base: type) -> ParentDeclaration:
    """Build a parent declaration for an aspect's ``parents`` list."""
    return ParentDeclaration(target, base)


class Aspect:
    """Base class for all aspects.

    Class attributes recognised by the deployment machinery:

    ``precedence``
        Higher values run outermost.  The paper's layering corresponds to
        ``partition > concurrency > distribution > optimisation``.
    ``parents``
        Iterable of :class:`ParentDeclaration` applied at deploy time.
    named pointcuts
        Any class attribute whose value is a :class:`Pointcut` (from
        :func:`pointcut`) or :class:`AbstractPointcut`.
    """

    precedence: int = 0
    parents: Iterable[ParentDeclaration] = ()

    # populated by __init_subclass__
    _advice_decls: tuple[AdviceDecl, ...] = ()
    _introductions: tuple[tuple[type, str, Callable], ...] = ()

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        # A subclass re-declaring an advice method overrides the
        # inherited declaration (normal method-override semantics).
        overridden = set(vars(cls))
        decls: list[AdviceDecl] = [
            d for d in cls._advice_decls if d.name not in overridden
        ]
        intros: list[tuple[type, str, Callable]] = [
            entry for entry in cls._introductions if entry[1] not in overridden
        ]
        index = len(decls)
        for name, attr in vars(cls).items():
            markers = getattr(attr, _ADVICE_ATTR, None)
            if markers:
                for kind, expression in markers:
                    decls.append(AdviceDecl(kind, expression, attr, index))
                    index += 1
            intro_target = getattr(attr, _INTRODUCE_ATTR, None)
            if intro_target is not None:
                intros.append((intro_target, name, attr))
        cls._advice_decls = tuple(decls)
        cls._introductions = tuple(intros)

    # -- deployment-time resolution ---------------------------------------

    def resolve_pointcut(self, source: Any) -> Pointcut:
        """Resolve an advice's pointcut source against this instance.

        Accepts a :class:`Pointcut`, an expression string, or the bare
        name of an aspect attribute holding a named pointcut (string or
        :class:`Pointcut`); abstract pointcuts left unbound raise
        :class:`DeploymentError`.
        """
        seen: set[str] = set()
        while True:
            if isinstance(source, Pointcut):
                return source
            if isinstance(source, AbstractPointcut):
                raise DeploymentError(
                    f"aspect {type(self).__name__} leaves an abstract pointcut "
                    f"unbound; concrete subclasses must assign it"
                )
            if isinstance(source, str):
                if _IDENTIFIER.match(source):
                    if source in seen:
                        raise DeploymentError(
                            f"cyclic named-pointcut reference {source!r} in "
                            f"{type(self).__name__}"
                        )
                    seen.add(source)
                    if not hasattr(self, source):
                        raise DeploymentError(
                            f"aspect {type(self).__name__} has no named "
                            f"pointcut {source!r}"
                        )
                    source = getattr(self, source)
                    continue
                return parse_pointcut(source)
            raise DeploymentError(
                f"invalid pointcut source {source!r} in {type(self).__name__}"
            )

    def is_abstract(self) -> bool:
        """True if any advice pointcut resolves to an abstract pointcut."""
        for decl in self._advice_decls:
            try:
                self.resolve_pointcut(decl.pointcut_source)
            except DeploymentError:
                return True
        return False

    # -- lifecycle hooks ----------------------------------------------------

    def on_deploy(self) -> None:
        """Called after the aspect is deployed; override for setup."""

    def on_undeploy(self) -> None:
        """Called after the aspect is undeployed; override for teardown."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"<aspect {type(self).__name__}>"
