"""AspectJ-analogue aspect-oriented programming engine for Python.

This package provides the substrate the reproduced methodology is built
on: joinpoints, a pointcut expression language, advice, aspects with
inter-type declarations, and a runtime weaver supporting deploy/undeploy
— the "(un)pluggability" at the heart of the paper.

Quickstart (paper Figure 3, the logging aspect)::

    from repro.aop import Aspect, around, weave, deploy

    class Point:
        def __init__(self): self.x = self.y = 0
        def move_x(self, d): self.x += d
        def move_y(self, d): self.y += d

    class Logging(Aspect):
        @around("call(Point.move*(..))")
        def log(self, jp):
            print("Move called")
            return jp.proceed()

    weave(Point)
    deploy(Logging())
    Point().move_x(10)          # prints "Move called"
"""

from repro.aop.advice import AdviceKind
from repro.aop.aspect import (
    AbstractPointcut,
    Aspect,
    ParentDeclaration,
    abstract_pointcut,
    after,
    after_returning,
    after_throwing,
    around,
    before,
    declare_parents,
    introduce,
    pointcut,
)
from repro.aop.joinpoint import JoinPoint, JoinPointKind
from repro.aop.parser import parse_pointcut
from repro.aop.pointcut import (
    AdviceExecution,
    Args,
    Call,
    CFlow,
    CFlowBelow,
    Execution,
    FalsePointcut,
    Initialization,
    Pointcut,
    Target,
    TruePointcut,
    Within,
    args,
    call,
    cflow,
    cflowbelow,
    execution,
    initialization,
    target,
    within,
)
from repro.aop.plan import (
    BatchJoinPoint,
    CtorPack,
    MethodTable,
    PlanStats,
    Shadow,
    batched_entry,
    bound_entry,
    ctor_pack_of,
    piece_view,
)
from repro.aop.signature import (
    NamePattern,
    ParamsPattern,
    SignaturePattern,
    TypePattern,
    is_subtype,
)
from repro.aop.weaver import (
    Weaver,
    default_weaver,
    deploy,
    deployed_aspects,
    is_woven,
    raw_construct,
    undeploy,
    undeploy_all,
    unweave,
    unweave_all,
    weave,
)

__all__ = [
    # aspect declaration
    "Aspect",
    "around",
    "before",
    "after",
    "after_returning",
    "after_throwing",
    "introduce",
    "pointcut",
    "abstract_pointcut",
    "AbstractPointcut",
    "declare_parents",
    "ParentDeclaration",
    # joinpoints
    "JoinPoint",
    "JoinPointKind",
    "AdviceKind",
    # pointcut language
    "Pointcut",
    "parse_pointcut",
    "call",
    "execution",
    "initialization",
    "within",
    "target",
    "args",
    "cflow",
    "cflowbelow",
    "Call",
    "Execution",
    "Initialization",
    "Within",
    "Target",
    "Args",
    "CFlow",
    "CFlowBelow",
    "AdviceExecution",
    "TruePointcut",
    "FalsePointcut",
    # signatures
    "TypePattern",
    "NamePattern",
    "ParamsPattern",
    "SignaturePattern",
    "is_subtype",
    # weaving
    "Weaver",
    "default_weaver",
    "weave",
    "unweave",
    "unweave_all",
    "deploy",
    "undeploy",
    "undeploy_all",
    "deployed_aspects",
    "raw_construct",
    "is_woven",
    # compiled dispatch plans
    "Shadow",
    "PlanStats",
    "MethodTable",
    "BatchJoinPoint",
    "CtorPack",
    "ctor_pack_of",
    "bound_entry",
    "batched_entry",
    "piece_view",
]
