"""Parser for the pointcut expression string language.

Grammar (AspectJ-flavoured)::

    expr     := or_expr
    or_expr  := and_expr ( '||' and_expr )*
    and_expr := unary ( '&&' unary )*
    unary    := '!' unary | '(' expr ')' | primitive
    primitive:= designator '(' body ')'
    designator := call | execution | initialization | within | target
                | args | cflow | cflowbelow | adviceexecution | true | false

Signature bodies follow :class:`repro.aop.signature.SignaturePattern`;
``call(Type.new(..))`` is normalised to an initialization pointcut, the
form the paper's code sketches use (``around (PrimeFilter.new(..))``).
"""

from __future__ import annotations

from repro.aop import pointcut as pc
from repro.aop.signature import ParamsPattern, SignaturePattern, _split_params
from repro.errors import PointcutSyntaxError

__all__ = ["parse_pointcut"]

_DESIGNATORS = {
    "call",
    "execution",
    "initialization",
    "within",
    "target",
    "args",
    "cflow",
    "cflowbelow",
    "adviceexecution",
    "true",
    "false",
}


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # -- low-level ----------------------------------------------------------

    def error(self, message: str) -> PointcutSyntaxError:
        return PointcutSyntaxError(
            f"{message} at position {self.pos} in {self.text!r}",
            self.text,
            self.pos,
        )

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def accept(self, token: str) -> bool:
        self.skip_ws()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.accept(token):
            raise self.error(f"expected {token!r}")

    def identifier(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        if start == self.pos:
            raise self.error("expected identifier")
        return self.text[start : self.pos]

    def balanced_body(self) -> str:
        """Consume the body of ``designator( ... )`` handling one level of
        nested parentheses (signatures contain their own ``(params)``)."""
        self.expect("(")
        depth = 1
        start = self.pos
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    body = self.text[start : self.pos]
                    self.pos += 1
                    return body
            self.pos += 1
        raise self.error("unbalanced parentheses")

    # -- grammar -------------------------------------------------------------

    def parse(self) -> pc.Pointcut:
        node = self.or_expr()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing input")
        return node

    def or_expr(self) -> pc.Pointcut:
        node = self.and_expr()
        while self.accept("||"):
            node = pc.Or(node, self.and_expr())
        return node

    def and_expr(self) -> pc.Pointcut:
        node = self.unary()
        while self.accept("&&"):
            node = pc.And(node, self.unary())
        return node

    def unary(self) -> pc.Pointcut:
        if self.accept("!"):
            return pc.Not(self.unary())
        if self.peek() == "(":
            self.expect("(")
            node = self.or_expr()
            self.expect(")")
            return node
        return self.primitive()

    def primitive(self) -> pc.Pointcut:
        name = self.identifier()
        if name not in _DESIGNATORS:
            raise self.error(f"unknown pointcut designator {name!r}")
        body = self.balanced_body()
        return self.build(name, body.strip())

    def build(self, name: str, body: str) -> pc.Pointcut:
        if name in ("call", "execution", "initialization"):
            if not body:
                raise self.error(f"{name}() requires a signature")
            signature = SignaturePattern.parse(body)
            if name == "initialization" or signature.is_constructor:
                return pc.Initialization(signature)
            if name == "execution":
                return pc.Execution(signature)
            return pc.Call(signature)
        if name == "within":
            if not body:
                raise self.error("within() requires a pattern")
            return pc.Within(body)
        if name == "target":
            if not body:
                raise self.error("target() requires a pattern")
            return pc.Target(body)
        if name == "args":
            params = ParamsPattern(_split_params(body)) if body else ParamsPattern([])
            return pc.Args(params)
        if name == "cflow":
            return pc.CFlow(parse_pointcut(body))
        if name == "cflowbelow":
            return pc.CFlowBelow(parse_pointcut(body))
        if name == "adviceexecution":
            if body:
                raise self.error("adviceexecution() takes no body")
            return pc.AdviceExecution()
        if name == "true":
            return pc.TruePointcut()
        if name == "false":
            return pc.FalsePointcut()
        raise self.error(f"unhandled designator {name!r}")  # pragma: no cover


def parse_pointcut(text: str) -> pc.Pointcut:
    """Parse a pointcut expression string into a :class:`Pointcut` AST.

    >>> parse_pointcut("call(PrimeFilter.filter(..)) && !adviceexecution()")
    <And (call(PrimeFilter.filter(..)) && !adviceexecution())>
    """
    if not isinstance(text, str):
        raise TypeError(f"pointcut expression must be str, got {type(text)!r}")
    if not text.strip():
        raise PointcutSyntaxError("empty pointcut expression", text, 0)
    return _Parser(text).parse()
