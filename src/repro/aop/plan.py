"""Compiled dispatch plans.

The weaver used to install one *generic* dispatcher per woven method:
every call re-fetched the advice chain from an epoch-checked cache, then
interpreted it.  This module replaces interpretation with **compilation**
— per (shadow, deployment-state) the weaver asks :func:`compile_call_impl`
for a closure specialised to exactly the advice that applies there:

* **inert** shadows (no advice, no flow-sensitive pointcuts live) get a
  *clone* of the original function — same code object, so a woven-inert
  call costs the same as a plain call (the clone is a distinct object so
  weaving stays observable and unweave can restore the true original);
* inert shadows under an active ``cflow`` get a minimal stack-maintaining
  trampoline (no chain lookup, no advice scan);
* a **single around advice with no dynamic residue** gets a dedicated
  fast path that arms ``proceed`` directly instead of running the
  recursive chain interpreter;
* everything else gets a closure with the chain, the ``needs_caller``
  flag and the class/name baked in, calling the generic interpreter.

Plans are recompiled only when the deployment state *at that shadow*
changes — the weaver keeps a static shadow→deployment match index (built
from :meth:`Pointcut.matches_shadow`) so deploying an aspect whose
pointcuts can never match a shadow leaves that shadow's plan untouched.
:class:`PlanStats` counts compilations per shadow and exposes a hook list
so tests (and benchmarks) can assert exactly that.

The same Plan abstraction is what the other layers consume:

* :class:`MethodTable` — the middlewares' per-servant-class dispatch
  table.  Entries are the compiled class attributes, refreshed only when
  the weaver's version moves, so the server side stops resolving methods
  per request;
* :func:`bound_entry` — the partition skeletons' way to obtain a woven
  entry point once per worker instead of re-walking attribute lookup and
  the advice chain per work item.  Because the compiled plan *is* the
  class attribute, the bound attribute is the whole artifact.
"""

from __future__ import annotations

import functools
import sys
import types
from threading import get_ident
from typing import TYPE_CHECKING, Any, Callable

from repro.aop.advice import AdviceKind, BoundAdvice
from repro.aop.advice import run_chain as _baseline_run_chain
from repro.aop.cflow import _STATE as _FLOW  # per-thread flow state
from repro.aop.joinpoint import CallerInfo, JoinPoint, JoinPointKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aop.weaver import Weaver

__all__ = [
    "Shadow",
    "PlanStats",
    "MethodTable",
    "compile_call_impl",
    "bound_entry",
    "resolve_caller",
]

#: Chain interpreter used by compiled plans.  A module-level *name* (not a
#: baked-in reference) so :func:`repro.aop.tools.trace_advice` can patch it;
#: the single-around fast path checks it against the baseline and falls back
#: to the interpreter whenever tracing (or any other wrapper) is installed.
run_chain = _baseline_run_chain

_CALL = JoinPointKind.CALL
_MISS = object()


def resolve_caller() -> CallerInfo | None:
    """Find the first stack frame outside the AOP machinery."""
    try:
        frame = sys._getframe(2)
    except ValueError:  # pragma: no cover - no caller frames
        return None
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if not module.startswith("repro.aop"):
            code = frame.f_code
            qualname = getattr(code, "co_qualname", code.co_name)
            return CallerInfo(module, qualname, code.co_name)
        frame = frame.f_back
    return None


class Shadow:
    """One compiled joinpoint shadow: ``(cls, name, kind)`` plus its
    current plan (advice chain + specialised impl)."""

    __slots__ = ("cls", "name", "kind", "original", "impl", "entries",
                 "needs_caller", "compiles")

    def __init__(self, cls: type, name: str, kind: JoinPointKind,
                 original: Callable | None):
        self.cls = cls
        self.name = name
        self.kind = kind
        self.original = original
        #: the installed callable (class attribute) for CALL shadows
        self.impl: Callable | None = None
        #: advice chain applicable here, outermost first
        self.entries: tuple[BoundAdvice, ...] = ()
        self.needs_caller = False
        #: number of times this shadow's plan was compiled
        self.compiles = 0

    @property
    def key(self) -> tuple[type, str, JoinPointKind]:
        return (self.cls, self.name, self.kind)

    @property
    def inert(self) -> bool:
        return not self.entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "inert" if self.inert else f"{len(self.entries)} advice"
        return f"<Shadow {self.cls.__name__}.{self.name} [{self.kind}] {state}>"


class PlanStats:
    """Compilation counters + hooks for the plan compiler.

    ``hooks`` are called with the :class:`Shadow` on every compilation —
    the regression tests use this to prove that deploying an aspect only
    recompiles the shadows its pointcuts can match.
    """

    def __init__(self) -> None:
        self.total = 0
        self.by_shadow: dict[tuple[type, str, JoinPointKind], int] = {}
        self.hooks: list[Callable[[Shadow], None]] = []

    def record(self, shadow: Shadow) -> None:
        self.total += 1
        key = shadow.key
        self.by_shadow[key] = self.by_shadow.get(key, 0) + 1
        for hook in self.hooks:
            hook(shadow)

    def count(self, cls: type, name: str,
              kind: JoinPointKind = JoinPointKind.CALL) -> int:
        return self.by_shadow.get((cls, name, kind), 0)

    def snapshot(self) -> dict[tuple[type, str, JoinPointKind], int]:
        return dict(self.by_shadow)

    def prune_class(self, cls: type) -> None:
        """Drop counters for an unwoven class so long-lived processes
        weaving ephemeral classes don't pin them (and grow) forever."""
        for key in [k for k in self.by_shadow if k[0] is cls]:
            del self.by_shadow[key]

    def clear(self) -> None:
        self.total = 0
        self.by_shadow.clear()


# ---------------------------------------------------------------------------
# Impl compilation
# ---------------------------------------------------------------------------


def _mark(impl: Callable, original: Callable, *, inert: bool = False) -> Callable:
    impl.__aop_dispatcher__ = True  # type: ignore[attr-defined]
    impl.__wrapped__ = original  # type: ignore[attr-defined]
    if inert:
        impl.__aop_inert__ = True  # type: ignore[attr-defined]
    return impl


def _inert_impl(original: Callable) -> Callable:
    """The woven-inert plan: behaviourally *is* the original.

    For plain functions we clone the function object (same code, globals,
    defaults and closure), so calling it costs exactly a plain call; the
    clone is a distinct object so ``weave`` remains observable and
    ``unweave`` can still restore the genuine original.  Non-function
    callables get a thin trampoline preserving the dispatcher calling
    convention.
    """
    if isinstance(original, types.FunctionType):
        clone = types.FunctionType(
            original.__code__,
            original.__globals__,
            original.__name__,
            original.__defaults__,
            original.__closure__,
        )
        clone.__kwdefaults__ = original.__kwdefaults__
        functools.update_wrapper(clone, original)
        return _mark(clone, original, inert=True)

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        return original(self_obj, *args, **kwargs)

    return _mark(impl, original, inert=True)


def _tracking_impl(cls: type, name: str, original: Callable) -> Callable:
    """Inert shadow while a flow-sensitive pointcut is live: maintain the
    joinpoint stack (for ``cflow`` matching below) but nothing else."""

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        stack = _FLOW.stack
        stack.append(JoinPoint(_CALL, cls, name, self_obj, args, kwargs))
        try:
            return original(self_obj, *args, **kwargs)
        finally:
            stack.pop()

    return _mark(impl, original)


def _single_around_impl(
    cls: type, name: str, original: Callable, entry: BoundAdvice
) -> Callable:
    """Fast path: exactly one around advice, statically matched, no
    dynamic residue and no caller capture.  Arms ``proceed`` directly
    instead of running the recursive chain interpreter."""
    advice = entry.func
    entries = (entry,)

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        jp = JoinPoint(_CALL, cls, name, self_obj, args, kwargs)
        flow = _FLOW
        jp.from_advice = flow.advice_depth > 0
        interpreter = run_chain
        stack = flow.stack
        stack.append(jp)
        try:
            if interpreter is not _baseline_run_chain:  # tracing installed
                return interpreter(
                    entries, jp, lambda *a, **k: original(self_obj, *a, **k)
                )
            pm = jp._proceed_map

            def proceed(*new_args: Any, **new_kwargs: Any) -> Any:
                use_args = new_args if new_args else args
                use_kwargs = new_kwargs if new_kwargs else kwargs
                jp.args, jp.kwargs = use_args, use_kwargs
                result = original(self_obj, *use_args, **use_kwargs)
                jp.args, jp.kwargs = args, kwargs
                pm[get_ident()] = proceed
                return result

            tid = get_ident()
            saved = pm.get(tid)
            pm[tid] = proceed
            flow.advice_depth += 1
            try:
                return advice(jp)
            finally:
                flow.advice_depth -= 1
                tid = get_ident()
                if saved is None:
                    pm.pop(tid, None)
                else:
                    pm[tid] = saved
        finally:
            stack.pop()

    return _mark(impl, original)


def _all_around_impl(
    cls: type,
    name: str,
    original: Callable,
    entries: tuple[BoundAdvice, ...],
) -> Callable:
    """Compiled plan for a pure-around chain with no dynamic residues —
    the shape every partition/concurrency/distribution stack has.  Same
    recursion as the interpreter minus the per-level kind dispatch,
    residue checks and generator-based context managers."""
    funcs = tuple(entry.func for entry in entries)
    n = len(funcs)

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        jp = JoinPoint(_CALL, cls, name, self_obj, args, kwargs)
        flow = _FLOW
        jp.from_advice = flow.advice_depth > 0
        interpreter = run_chain
        stack = flow.stack
        stack.append(jp)
        try:
            if interpreter is not _baseline_run_chain:  # tracing installed
                return interpreter(
                    entries, jp, lambda *a, **k: original(self_obj, *a, **k)
                )
            pm = jp._proceed_map

            def invoke(i: int, args: tuple, kwargs: dict) -> Any:
                jp.args, jp.kwargs = args, kwargs
                if i == n:
                    return original(self_obj, *args, **kwargs)

                def proceed(*new_args: Any, **new_kwargs: Any) -> Any:
                    use_args = new_args if new_args else args
                    use_kwargs = new_kwargs if new_kwargs else kwargs
                    result = invoke(i + 1, use_args, use_kwargs)
                    jp.args, jp.kwargs = args, kwargs
                    pm[get_ident()] = proceed
                    return result

                tid = get_ident()
                saved = pm.get(tid)
                pm[tid] = proceed
                flow.advice_depth += 1
                try:
                    return funcs[i](jp)
                finally:
                    flow.advice_depth -= 1
                    tid = get_ident()
                    if saved is None:
                        pm.pop(tid, None)
                    else:
                        pm[tid] = saved

            return invoke(0, args, kwargs)
        finally:
            stack.pop()

    return _mark(impl, original)


def _chain_impl(
    cls: type,
    name: str,
    original: Callable,
    entries: tuple[BoundAdvice, ...],
    needs_caller: bool,
) -> Callable:
    """General advised plan: chain and flags baked in, interpreted by
    :func:`run_chain` (looked up through the patchable module global)."""

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        jp = JoinPoint(_CALL, cls, name, self_obj, args, kwargs)
        flow = _FLOW
        jp.from_advice = flow.advice_depth > 0
        if needs_caller:
            jp._caller = resolve_caller()
        stack = flow.stack
        stack.append(jp)
        try:
            return run_chain(
                entries, jp, lambda *a, **k: original(self_obj, *a, **k)
            )
        finally:
            stack.pop()

    return _mark(impl, original)


def compile_call_impl(weaver: "Weaver", shadow: Shadow) -> Callable:
    """Compile the specialised dispatcher for a CALL shadow's current
    chain (``shadow.entries`` / ``shadow.needs_caller`` must be fresh)."""
    original = shadow.original
    entries = shadow.entries
    if not entries:
        if weaver._cflow_active:
            return _tracking_impl(shadow.cls, shadow.name, original)
        return _inert_impl(original)
    if not shadow.needs_caller and all(
        entry.kind is AdviceKind.AROUND and not entry.needs_eval
        for entry in entries
    ):
        if len(entries) == 1:
            return _single_around_impl(
                shadow.cls, shadow.name, original, entries[0]
            )
        return _all_around_impl(shadow.cls, shadow.name, original, entries)
    return _chain_impl(
        shadow.cls, shadow.name, original, entries, shadow.needs_caller
    )


# ---------------------------------------------------------------------------
# Plan consumers for the other layers
# ---------------------------------------------------------------------------


def bound_entry(obj: Any, name: str) -> Callable[..., Any]:
    """The compiled entry point for ``obj.name``.

    The plan compiler installs the specialised dispatcher *as the class
    attribute*, so the bound attribute already is the complete per-shadow
    artifact — skeletons fetch it once per worker/stage and then invoke
    pieces through it without re-walking lookup or the advice chain.
    """
    return getattr(obj, name)


class MethodTable:
    """Per-servant-class dispatch table backed by compiled plans.

    The middlewares used to resolve ``getattr(servant, method)`` on every
    request.  A :class:`MethodTable` caches the class-level entry (which,
    for woven classes, is the compiled plan impl) and invalidates only
    when the weaver's version moves — i.e. when weave/unweave/deploy/
    undeploy may have changed class attributes.

    Entries that are not plain functions (properties, descriptors,
    instance attributes) fall back to per-call ``getattr`` so dispatch
    semantics are unchanged.

    Known trade-off: the table observes only *weaver* mutations.  Class
    attributes changed behind the weaver's back — direct monkeypatching
    of a servant class, or weaving it through a non-default
    :class:`~repro.aop.weaver.Weaver` while the table watches another —
    keep serving the cached entry until the watched weaver's version
    moves.  Servants are expected to be (re)woven via the weaver the
    table was built with (the middlewares use the default weaver).
    """

    __slots__ = ("cls", "weaver", "_version", "_cache")

    def __init__(self, cls: type, weaver: "Weaver | None" = None):
        if weaver is None:
            from repro.aop.weaver import default_weaver

            weaver = default_weaver
        self.cls = cls
        self.weaver = weaver
        self._version = weaver.version
        self._cache: dict[tuple[int, str], Callable | None] = {}

    def lookup(self, name: str) -> Callable | None:
        """The cached unbound entry for ``name``; ``None`` means "resolve
        dynamically" (non-function attribute or absent).

        Entries are keyed by the weaver version observed *before*
        resolving, so a thread preempted across a deploy can never plant
        a stale pre-deploy entry under the new version (the weaver bumps
        its version only after the recompiled plans are installed).  A
        racing write under an outdated version key is harmless garbage,
        cleared at the next version move.
        """
        version = self.weaver.version
        if version != self._version:
            self._cache.clear()
            self._version = version
        key = (version, name)
        entry = self._cache.get(key, _MISS)
        if entry is _MISS:
            entry = self._resolve(name)
            self._cache[key] = entry
        return entry

    def _resolve(self, name: str) -> Callable | None:
        for klass in self.cls.__mro__:
            attr = vars(klass).get(name, _MISS)
            if attr is not _MISS:
                if isinstance(attr, types.FunctionType):
                    return attr
                return None  # descriptor/odd attribute: dynamic dispatch
        return None

    def invoke(self, obj: Any, name: str, args: tuple = (),
               kwargs: dict | None = None) -> Any:
        """Dispatch ``obj.name(*args, **kwargs)`` through the table."""
        kwargs = kwargs or {}
        instance_dict = getattr(obj, "__dict__", None)
        if instance_dict is not None and name in instance_dict:
            return instance_dict[name](*args, **kwargs)
        func = self.lookup(name)
        if func is None:
            return getattr(obj, name)(*args, **kwargs)
        return func(obj, *args, **kwargs)
