"""Compiled dispatch plans.

The weaver used to install one *generic* dispatcher per woven method:
every call re-fetched the advice chain from an epoch-checked cache, then
interpreted it.  This module replaces interpretation with **compilation**
— per (shadow, deployment-state) the weaver asks :func:`compile_call_impl`
for a closure specialised to exactly the advice that applies there.

Decision tree (applied top-down by :func:`compile_call_impl`; the first
matching shape wins):

1. **inert** — no advice matches and no flow-sensitive pointcut is live:
   install a *clone* of the original function — same code object, so a
   woven-inert call costs the same as a plain call (the clone is a
   distinct object so weaving stays observable and unweave can restore
   the true original).  If a ``cflow`` pointcut is live anywhere, the
   inert plan is instead a minimal stack-maintaining trampoline (no
   chain lookup, no advice scan).
2. **single-around** — exactly one around advice, statically matched
   (no dynamic residue, no caller capture): a dedicated fast path that
   arms ``proceed`` directly instead of running the recursive chain
   interpreter.
3. **all-around** — a pure-around chain, statically matched: the same
   recursion as the interpreter minus per-level kind dispatch, residue
   checks and generator-based context managers.
4. **mixed** — before/after/after_returning/after_throwing advice
   alongside (or without) arounds, statically matched, provided the
   chain is *separable*: every non-around entry sorts before the first
   around.  The chain is partitioned at weave time into
   ``(prefix, arounds)`` and folded into nested closures — befores and
   afters run from compile-time-built try/finally frames (identical
   nesting to the interpreter), the around suffix reuses the all-around
   recursion.  No generic interpreter, no per-call kind dispatch.
5. **generic** — anything with a dynamic residue (``within``/``args``
   residues, caller capture) or a non-around entry *below* an around:
   a closure with the chain and flags baked in, calling the chain
   interpreter per call.

Invalidation rules: plans are recompiled only when the deployment state
*at that shadow* changes — the weaver keeps a static shadow→deployment
match index (built from :meth:`Pointcut.matches_shadow`) so deploying an
aspect whose pointcuts can never match a shadow leaves that shadow's
plan untouched.  Two changes are global: flipping flow-sensitivity
(rewrites the inert plan shape everywhere) and ``declare_parents``
(rewrites the subtype relation other deployments' ``Base+`` pointcuts
match against, forcing a full re-index).  Unweaving a class prunes every
per-class artifact: its shadows (and with them the cached batch plans),
its chain-cache rows, its :class:`PlanStats` counters (call *and* batch)
and its entries in the deployments' match index.  :class:`PlanStats`
counts compilations per shadow and exposes a hook list so tests (and
benchmarks) can assert exactly that.

The same Plan abstraction is what the other layers consume:

* :class:`MethodTable` — the middlewares' per-servant-class dispatch
  table.  Entries are the compiled class attributes, refreshed only when
  the weaver's version moves, so the server side stops resolving methods
  per request; :meth:`MethodTable.invoke_batch` serves batched requests
  through the compiled batch plan.
* :func:`bound_entry` — the partition skeletons' way to obtain a woven
  entry point once per worker instead of re-walking attribute lookup and
  the advice chain per work item.  Because the compiled plan *is* the
  class attribute, the bound attribute is the whole artifact.
* :func:`batched_entry` — the pack-granular sibling of ``bound_entry``:
  one compiled call dispatches a whole pack of pieces, running the
  advice chain **once per pack** around a :class:`BatchJoinPoint`
  (pack-level args, item count, merged piece view) instead of once per
  item.  Batch plans are compiled lazily per shadow, cached on the
  shadow, and invalidated by the same recompiles as the call plan.
"""

from __future__ import annotations

import functools
import sys
import types
from threading import get_ident
from typing import TYPE_CHECKING, Any, Callable

from repro.aop.advice import AdviceKind, BoundAdvice
from repro.aop.advice import run_chain as _baseline_run_chain
from repro.aop.cflow import _STATE as _FLOW  # per-thread flow state
from repro.aop.joinpoint import CallerInfo, JoinPoint, JoinPointKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aop.weaver import Weaver

__all__ = [
    "Shadow",
    "PlanStats",
    "MethodTable",
    "BatchJoinPoint",
    "CtorPack",
    "ctor_pack_of",
    "compile_call_impl",
    "compile_batch_impl",
    "bound_entry",
    "batched_entry",
    "piece_view",
    "resolve_caller",
]

#: Chain interpreter used by compiled plans.  A module-level *name* (not a
#: baked-in reference) so :func:`repro.aop.tools.trace_advice` can patch it;
#: the single-around fast path checks it against the baseline and falls back
#: to the interpreter whenever tracing (or any other wrapper) is installed.
run_chain = _baseline_run_chain

_CALL = JoinPointKind.CALL
_MISS = object()


def resolve_caller() -> CallerInfo | None:
    """Find the first stack frame outside the AOP machinery."""
    try:
        frame = sys._getframe(2)
    except ValueError:  # pragma: no cover - no caller frames
        return None
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if not module.startswith("repro.aop"):
            code = frame.f_code
            qualname = getattr(code, "co_qualname", code.co_name)
            return CallerInfo(module, qualname, code.co_name)
        frame = frame.f_back
    return None


def piece_view(piece: Any) -> tuple[tuple, dict]:
    """Normalise one batch item to ``(args, kwargs)``.

    Accepts the partition layer's ``CallPiece``-shaped objects (anything
    with ``args``/``kwargs`` attributes) as well as plain 2-tuples — the
    wire shape middlewares ship for batched requests.
    """
    try:
        return piece.args, piece.kwargs or {}
    except AttributeError:
        args, kwargs = piece
        return args, kwargs or {}


class BatchJoinPoint(JoinPoint):
    """One joinpoint standing for a whole *pack* of calls.

    Where a per-item dispatch allocates one :class:`JoinPoint` per piece
    and runs the advice chain once per piece, a batched dispatch builds a
    single ``BatchJoinPoint`` for the pack and runs the chain **once**:

    * ``pieces`` — the pack items, each a ``CallPiece``-shaped object or
      an ``(args, kwargs)`` pair (see :func:`piece_view`);
    * ``args`` — the pack-level view ``(pieces,)``: around advice may
      call ``proceed(new_pieces)`` to substitute the whole pack, exactly
      like per-call ``proceed`` substitutes arguments;
    * ``proceed()`` (and the innermost original) returns the **list of
      per-item results** in piece order.
    """

    __slots__ = ("pieces",)

    def __init__(self, cls: type, name: str, target: Any, pieces: tuple):
        super().__init__(_CALL, cls, name, target, (pieces,), {})
        self.pieces = pieces

    @property
    def item_count(self) -> int:
        """Number of items in the pack."""
        return len(self.pieces)

    def merged_view(self) -> tuple[tuple, dict]:
        """The merged piece view: concatenated positional arguments and
        merged keyword arguments across all items, in piece order."""
        merged_args: list = []
        merged_kwargs: dict = {}
        for piece in self.pieces:
            args, kwargs = piece_view(piece)
            merged_args.extend(args)
            merged_kwargs.update(kwargs)
        return tuple(merged_args), merged_kwargs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BatchJoinPoint {self.signature} x{len(self.pieces)}>"


class CtorPack:
    """A pack of constructor argument sets — batched *construction*.

    Duplication loops (farm/pipeline worker creation) used to call
    ``jp.proceed(*args_i)`` once per duplicate, paying one traversal of
    the remaining initialization chain — and, under distribution, one
    create-remote advice execution — *per worker*.  Passing a
    ``CtorPack`` to a single ``proceed`` instead runs the inner chain
    **once per duplicate set**: the weaver's innermost construction step
    recognises the pack and builds one fully-initialised instance per
    argset, returning the list in argset order.  Inner advice that cares
    about construction (the distribution aspect) detects the pack via
    :func:`ctor_pack_of` and handles the whole set in its single pass.

    ``argsets`` is a tuple of ``(args, kwargs)`` pairs, one per
    duplicate, in duplicate-index order.
    """

    __slots__ = ("argsets",)

    def __init__(self, argsets: Any):
        self.argsets = tuple(
            (tuple(args), dict(kwargs)) for args, kwargs in argsets
        )

    def __len__(self) -> int:
        return len(self.argsets)

    def __iter__(self) -> Any:
        return iter(self.argsets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CtorPack x{len(self.argsets)}>"


def ctor_pack_of(jp: Any) -> "CtorPack | None":
    """The :class:`CtorPack` travelling through an initialization
    joinpoint, or ``None`` for an ordinary per-instance construction.
    Advice on construction joinpoints that needs to act per instance
    (e.g. the distribution aspect's create-remote) calls this to decide
    whether ``proceed`` will hand back one instance or a list."""
    args = jp.args
    if len(args) == 1 and not jp.kwargs and isinstance(args[0], CtorPack):
        return args[0]
    return None


class Shadow:
    """One compiled joinpoint shadow: ``(cls, name, kind)`` plus its
    current plan (advice chain + specialised impl)."""

    __slots__ = ("cls", "name", "kind", "original", "impl", "entries",
                 "needs_caller", "compiles", "batch_impl")

    def __init__(self, cls: type, name: str, kind: JoinPointKind,
                 original: Callable | None):
        self.cls = cls
        self.name = name
        self.kind = kind
        self.original = original
        #: the installed callable (class attribute) for CALL shadows
        self.impl: Callable | None = None
        #: advice chain applicable here, outermost first
        self.entries: tuple[BoundAdvice, ...] = ()
        self.needs_caller = False
        #: number of times this shadow's plan was compiled
        self.compiles = 0
        #: lazily compiled pack-granular plan (see :func:`batched_entry`);
        #: reset to None whenever the call plan recompiles
        self.batch_impl: Callable | None = None

    @property
    def key(self) -> tuple[type, str, JoinPointKind]:
        return (self.cls, self.name, self.kind)

    @property
    def inert(self) -> bool:
        return not self.entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "inert" if self.inert else f"{len(self.entries)} advice"
        return f"<Shadow {self.cls.__name__}.{self.name} [{self.kind}] {state}>"


class PlanStats:
    """Compilation counters + hooks for the plan compiler.

    ``hooks`` are called with the :class:`Shadow` on every compilation —
    the regression tests use this to prove that deploying an aspect only
    recompiles the shadows its pointcuts can match.
    """

    def __init__(self) -> None:
        self.total = 0
        self.by_shadow: dict[tuple[type, str, JoinPointKind], int] = {}
        self.hooks: list[Callable[[Shadow], None]] = []
        #: batch-plan compilations (see :func:`batched_entry`)
        self.batch_total = 0
        self.batch_by_shadow: dict[tuple[type, str, JoinPointKind], int] = {}

    def record(self, shadow: Shadow) -> None:
        self.total += 1
        key = shadow.key
        self.by_shadow[key] = self.by_shadow.get(key, 0) + 1
        for hook in self.hooks:
            hook(shadow)

    def record_batch(self, shadow: Shadow) -> None:
        self.batch_total += 1
        key = shadow.key
        self.batch_by_shadow[key] = self.batch_by_shadow.get(key, 0) + 1

    def count(self, cls: type, name: str,
              kind: JoinPointKind = JoinPointKind.CALL) -> int:
        return self.by_shadow.get((cls, name, kind), 0)

    def batch_count(self, cls: type, name: str,
                    kind: JoinPointKind = JoinPointKind.CALL) -> int:
        return self.batch_by_shadow.get((cls, name, kind), 0)

    def snapshot(self) -> dict[tuple[type, str, JoinPointKind], int]:
        return dict(self.by_shadow)

    def prune_class(self, cls: type) -> None:
        """Drop counters for an unwoven class so long-lived processes
        weaving ephemeral classes don't pin them (and grow) forever.
        Covers call-plan and batch-plan counters alike."""
        for key in [k for k in self.by_shadow if k[0] is cls]:
            del self.by_shadow[key]
        for key in [k for k in self.batch_by_shadow if k[0] is cls]:
            del self.batch_by_shadow[key]

    def clear(self) -> None:
        self.total = 0
        self.by_shadow.clear()
        self.batch_total = 0
        self.batch_by_shadow.clear()


# ---------------------------------------------------------------------------
# Impl compilation
# ---------------------------------------------------------------------------


def _mark(impl: Callable, original: Callable, *, inert: bool = False) -> Callable:
    impl.__aop_dispatcher__ = True  # type: ignore[attr-defined]
    impl.__wrapped__ = original  # type: ignore[attr-defined]
    if inert:
        impl.__aop_inert__ = True  # type: ignore[attr-defined]
    return impl


def _inert_impl(original: Callable) -> Callable:
    """The woven-inert plan: behaviourally *is* the original.

    For plain functions we clone the function object (same code, globals,
    defaults and closure), so calling it costs exactly a plain call; the
    clone is a distinct object so ``weave`` remains observable and
    ``unweave`` can still restore the genuine original.  Non-function
    callables get a thin trampoline preserving the dispatcher calling
    convention.
    """
    if isinstance(original, types.FunctionType):
        clone = types.FunctionType(
            original.__code__,
            original.__globals__,
            original.__name__,
            original.__defaults__,
            original.__closure__,
        )
        clone.__kwdefaults__ = original.__kwdefaults__
        functools.update_wrapper(clone, original)
        return _mark(clone, original, inert=True)

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        return original(self_obj, *args, **kwargs)

    return _mark(impl, original, inert=True)


def _tracking_impl(cls: type, name: str, original: Callable) -> Callable:
    """Inert shadow while a flow-sensitive pointcut is live: maintain the
    joinpoint stack (for ``cflow`` matching below) but nothing else."""

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        stack = _FLOW.stack
        stack.append(JoinPoint(_CALL, cls, name, self_obj, args, kwargs))
        try:
            return original(self_obj, *args, **kwargs)
        finally:
            stack.pop()

    return _mark(impl, original)


def _single_around_impl(
    cls: type, name: str, original: Callable, entry: BoundAdvice
) -> Callable:
    """Fast path: exactly one around advice, statically matched, no
    dynamic residue and no caller capture.  Arms ``proceed`` directly
    instead of running the recursive chain interpreter."""
    advice = entry.func
    entries = (entry,)

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        jp = JoinPoint(_CALL, cls, name, self_obj, args, kwargs)
        flow = _FLOW
        jp.from_advice = flow.advice_depth > 0
        interpreter = run_chain
        stack = flow.stack
        stack.append(jp)
        try:
            if interpreter is not _baseline_run_chain:  # tracing installed
                return interpreter(
                    entries, jp, lambda *a, **k: original(self_obj, *a, **k)
                )
            pm = jp._proceed_map

            def proceed(*new_args: Any, **new_kwargs: Any) -> Any:
                use_args = new_args if new_args else args
                use_kwargs = new_kwargs if new_kwargs else kwargs
                jp.args, jp.kwargs = use_args, use_kwargs
                result = original(self_obj, *use_args, **use_kwargs)
                jp.args, jp.kwargs = args, kwargs
                pm[get_ident()] = proceed
                return result

            tid = get_ident()
            saved = pm.get(tid)
            pm[tid] = proceed
            flow.advice_depth += 1
            try:
                return advice(jp)
            finally:
                flow.advice_depth -= 1
                tid = get_ident()
                if saved is None:
                    pm.pop(tid, None)
                else:
                    pm[tid] = saved
        finally:
            stack.pop()

    return _mark(impl, original)


def _all_around_impl(
    cls: type,
    name: str,
    original: Callable,
    entries: tuple[BoundAdvice, ...],
) -> Callable:
    """Compiled plan for a pure-around chain with no dynamic residues —
    the shape every partition/concurrency/distribution stack has.  Same
    recursion as the interpreter minus the per-level kind dispatch,
    residue checks and generator-based context managers (the recursion
    itself lives in :func:`_around_core`, shared with the mixed and
    batch plans)."""
    core = _around_core(original, tuple(entry.func for entry in entries))

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        jp = JoinPoint(_CALL, cls, name, self_obj, args, kwargs)
        flow = _FLOW
        jp.from_advice = flow.advice_depth > 0
        interpreter = run_chain
        stack = flow.stack
        stack.append(jp)
        try:
            if interpreter is not _baseline_run_chain:  # tracing installed
                return interpreter(
                    entries, jp, lambda *a, **k: original(self_obj, *a, **k)
                )
            return core(jp, self_obj, args, kwargs)
        finally:
            stack.pop()

    return _mark(impl, original)


def _around_core(
    original: Callable, funcs: tuple[Callable, ...]
) -> Callable[[JoinPoint, Any, tuple, dict], Any]:
    """The compiled pure-around suffix as a reusable core.

    Returns ``core(jp, self_obj, args, kwargs) -> result`` running the
    around funcs with the same recursion as :func:`_all_around_impl`
    (``original`` is invoked as ``original(self_obj, *args, **kwargs)``).
    Shared by the mixed-chain call plan and the batch plans, which bake
    different ``original`` strategies around the same recursion.
    """
    n = len(funcs)

    def core(jp: JoinPoint, self_obj: Any, args: tuple, kwargs: dict) -> Any:
        if n == 0:
            return original(self_obj, *args, **kwargs)
        pm = jp._proceed_map
        flow = _FLOW

        def invoke(i: int, args: tuple, kwargs: dict) -> Any:
            jp.args, jp.kwargs = args, kwargs
            if i == n:
                return original(self_obj, *args, **kwargs)

            def proceed(*new_args: Any, **new_kwargs: Any) -> Any:
                use_args = new_args if new_args else args
                use_kwargs = new_kwargs if new_kwargs else kwargs
                result = invoke(i + 1, use_args, use_kwargs)
                jp.args, jp.kwargs = args, kwargs
                pm[get_ident()] = proceed
                return result

            tid = get_ident()
            saved = pm.get(tid)
            pm[tid] = proceed
            flow.advice_depth += 1
            try:
                return funcs[i](jp)
            finally:
                flow.advice_depth -= 1
                tid = get_ident()
                if saved is None:
                    pm.pop(tid, None)
                else:
                    pm[tid] = saved

        return invoke(0, args, kwargs)

    return core


def _wrap_step(kind: AdviceKind, func: Callable, inner: Callable) -> Callable:
    """One compile-time frame of the mixed-chain prefix: the before/after
    entry's semantics as a dedicated closure around ``inner``.  The
    try/finally nesting is built here, at compile time, so runtime pays
    neither kind dispatch nor generator-based context managers while
    keeping ordering byte-identical to the interpreter's."""
    if kind is AdviceKind.BEFORE:

        def step(jp: JoinPoint, self_obj: Any, args: tuple, kwargs: dict) -> Any:
            flow = _FLOW
            flow.advice_depth += 1
            try:
                func(jp)
            finally:
                flow.advice_depth -= 1
            return inner(jp, self_obj, args, kwargs)

    elif kind is AdviceKind.AFTER:

        def step(jp: JoinPoint, self_obj: Any, args: tuple, kwargs: dict) -> Any:
            try:
                return inner(jp, self_obj, args, kwargs)
            finally:
                flow = _FLOW
                flow.advice_depth += 1
                try:
                    func(jp)
                finally:
                    flow.advice_depth -= 1

    elif kind is AdviceKind.AFTER_RETURNING:

        def step(jp: JoinPoint, self_obj: Any, args: tuple, kwargs: dict) -> Any:
            result = inner(jp, self_obj, args, kwargs)
            jp.result = result
            flow = _FLOW
            flow.advice_depth += 1
            try:
                func(jp)
            finally:
                flow.advice_depth -= 1
            return result

    else:  # AdviceKind.AFTER_THROWING — arounds never reach _wrap_step

        def step(jp: JoinPoint, self_obj: Any, args: tuple, kwargs: dict) -> Any:
            try:
                return inner(jp, self_obj, args, kwargs)
            except BaseException as exc:
                jp.exception = exc
                flow = _FLOW
                flow.advice_depth += 1
                try:
                    func(jp)
                finally:
                    flow.advice_depth -= 1
                raise

    return step


def _fold_runner(
    prefix: tuple[BoundAdvice, ...],
    core: Callable[[JoinPoint, Any, tuple, dict], Any],
) -> Callable[[JoinPoint, Any, tuple, dict], Any]:
    """Fold a before/after prefix (outermost first) into nested closures
    around ``core`` — the compiled mixed-chain runner."""
    runner = core
    for entry in reversed(prefix):
        runner = _wrap_step(entry.kind, entry.func, runner)
    return runner


def _split_separable(
    entries: tuple[BoundAdvice, ...], needs_caller: bool
) -> tuple[tuple[BoundAdvice, ...], tuple[BoundAdvice, ...]] | None:
    """Partition a chain into ``(prefix, arounds)`` if it is *separable*:
    statically matched throughout (no residues, no caller capture) and
    with every non-around entry sorting before the first around.  A
    non-around below an around would interleave with ``proceed`` — only
    the generic interpreter preserves that ordering, so return None."""
    if needs_caller or any(entry.needs_eval for entry in entries):
        return None
    split = len(entries)
    for i, entry in enumerate(entries):
        if entry.kind is AdviceKind.AROUND:
            split = i
            break
    arounds = entries[split:]
    if any(entry.kind is not AdviceKind.AROUND for entry in arounds):
        return None
    return entries[:split], arounds


def _mixed_chain_impl(
    cls: type,
    name: str,
    original: Callable,
    entries: tuple[BoundAdvice, ...],
    prefix: tuple[BoundAdvice, ...],
    arounds: tuple[BoundAdvice, ...],
) -> Callable:
    """Compiled plan for a separable mixed-kind chain: the before/after
    prefix folded at compile time around the all-around recursion."""
    runner = _fold_runner(prefix, _around_core(original, tuple(e.func for e in arounds)))

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        jp = JoinPoint(_CALL, cls, name, self_obj, args, kwargs)
        flow = _FLOW
        jp.from_advice = flow.advice_depth > 0
        interpreter = run_chain
        stack = flow.stack
        stack.append(jp)
        try:
            if interpreter is not _baseline_run_chain:  # tracing installed
                return interpreter(
                    entries, jp, lambda *a, **k: original(self_obj, *a, **k)
                )
            return runner(jp, self_obj, args, kwargs)
        finally:
            stack.pop()

    return _mark(impl, original)


def _chain_impl(
    cls: type,
    name: str,
    original: Callable,
    entries: tuple[BoundAdvice, ...],
    needs_caller: bool,
) -> Callable:
    """General advised plan: chain and flags baked in, interpreted by
    :func:`run_chain` (looked up through the patchable module global)."""

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        jp = JoinPoint(_CALL, cls, name, self_obj, args, kwargs)
        flow = _FLOW
        jp.from_advice = flow.advice_depth > 0
        if needs_caller:
            jp._caller = resolve_caller()
        stack = flow.stack
        stack.append(jp)
        try:
            return run_chain(
                entries, jp, lambda *a, **k: original(self_obj, *a, **k)
            )
        finally:
            stack.pop()

    return _mark(impl, original)


def compile_call_impl(weaver: "Weaver", shadow: Shadow) -> Callable:
    """Compile the specialised dispatcher for a CALL shadow's current
    chain (``shadow.entries`` / ``shadow.needs_caller`` must be fresh).
    Implements the inert / single-around / all-around / mixed / generic
    decision tree described in the module docstring."""
    original = shadow.original
    entries = shadow.entries
    if not entries:
        if weaver._cflow_active:
            return _tracking_impl(shadow.cls, shadow.name, original)
        return _inert_impl(original)
    split = _split_separable(entries, shadow.needs_caller)
    if split is not None:
        prefix, arounds = split
        if not prefix:
            if len(arounds) == 1:
                return _single_around_impl(
                    shadow.cls, shadow.name, original, arounds[0]
                )
            return _all_around_impl(shadow.cls, shadow.name, original, entries)
        return _mixed_chain_impl(
            shadow.cls, shadow.name, original, entries, prefix, arounds
        )
    return _chain_impl(
        shadow.cls, shadow.name, original, entries, shadow.needs_caller
    )


# ---------------------------------------------------------------------------
# Plan consumers for the other layers
# ---------------------------------------------------------------------------


def bound_entry(obj: Any, name: str) -> Callable[..., Any]:
    """The compiled entry point for ``obj.name``.

    The plan compiler installs the specialised dispatcher *as the class
    attribute*, so the bound attribute already is the complete per-shadow
    artifact — skeletons fetch it once per worker/stage and then invoke
    pieces through it without re-walking lookup or the advice chain.
    """
    return getattr(obj, name)


def compile_batch_impl(weaver: "Weaver", shadow: Shadow) -> Callable[[Any, Any], list]:
    """Compile the pack-granular plan for a CALL shadow.

    The returned ``impl(self_obj, pieces) -> [results]`` runs the advice
    chain once around a :class:`BatchJoinPoint` whose innermost original
    applies the woven method to every piece.  Specialisation follows the
    call-plan decision tree: inert packs run a bare loop (zero joinpoint
    allocations), separable chains reuse the folded prefix + all-around
    recursion, residue-bearing chains fall back to one interpreted chain
    pass per pack (still a single ``BatchJoinPoint``).
    """
    original = shadow.original
    cls, name = shadow.cls, shadow.name
    entries = shadow.entries
    needs_caller = shadow.needs_caller

    def batch_core(self_obj: Any, pieces: Any) -> list:
        results = []
        for piece in pieces:
            args, kwargs = piece_view(piece)
            results.append(original(self_obj, *args, **kwargs))
        return results

    if not entries:
        if not weaver._cflow_active:
            return batch_core

        def tracking_batch(self_obj: Any, pieces: Any) -> list:
            stack = _FLOW.stack
            stack.append(BatchJoinPoint(cls, name, self_obj, tuple(pieces)))
            try:
                return batch_core(self_obj, pieces)
            finally:
                stack.pop()

        return tracking_batch

    split = _split_separable(entries, needs_caller)
    if split is not None:
        prefix, arounds = split
        runner = _fold_runner(
            prefix, _around_core(batch_core, tuple(e.func for e in arounds))
        )
    else:
        runner = None

    def advised_batch(self_obj: Any, pieces: Any) -> Any:
        jp = BatchJoinPoint(cls, name, self_obj, tuple(pieces))
        flow = _FLOW
        jp.from_advice = flow.advice_depth > 0
        if needs_caller:
            jp._caller = resolve_caller()
        interpreter = run_chain
        stack = flow.stack
        stack.append(jp)
        try:
            if runner is None or interpreter is not _baseline_run_chain:
                # jp.args is (pieces,): the interpreter's innermost call
                # unpacks it back into the batch core
                return interpreter(
                    entries, jp, lambda pack: batch_core(self_obj, pack)
                )
            return runner(jp, self_obj, jp.args, {})
        finally:
            stack.pop()

    return advised_batch


def _plain_batch(func: Callable) -> Callable[[Any], list]:
    def entry(pieces: Any) -> list:
        results = []
        for piece in pieces:
            args, kwargs = piece_view(piece)
            results.append(func(*args, **kwargs))
        return results

    return entry


def batched_entry(
    obj: Any, name: str, weaver: "Weaver | None" = None
) -> Callable[[Any], list]:
    """The compiled *batched* entry point for ``obj.name``.

    Returns ``entry(pieces) -> [results]`` dispatching a whole pack of
    pieces (``CallPiece``-shaped objects or ``(args, kwargs)`` pairs)
    through one compiled call: the advice chain runs once per pack with
    a :class:`BatchJoinPoint` instead of once per item.  Batch plans are
    compiled on first request, cached on the shadow, and invalidated by
    the same weave/deploy recompiles as the call plan.

    Objects whose method does not resolve to a shadow of ``weaver``
    (unwoven classes, subclass or instance overrides, classes woven by a
    different weaver) fall back to per-item dispatch through the bound
    attribute — unbatched, but semantically identical.
    """
    if weaver is None:
        from repro.aop.weaver import default_weaver

        weaver = default_weaver
    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict is not None and name in instance_dict:
        return _plain_batch(instance_dict[name])
    impl = _resolve_batch_impl(weaver, type(obj), name)
    if impl is None:
        return _plain_batch(getattr(obj, name))
    return functools.partial(impl, obj)


def _resolve_batch_impl(
    weaver: "Weaver", cls: type, name: str
) -> Callable[[Any, Any], list] | None:
    """The (lazily compiled) batch plan for ``cls.name``, or None when
    the method does not resolve to a shadow of ``weaver`` and callers
    must fall back to per-item dispatch."""
    shadow = None
    for klass in cls.__mro__:
        if name in vars(klass):
            shadows = weaver._shadows.get(klass)
            shadow = shadows.get((name, _CALL)) if shadows else None
            break
    if shadow is None or shadow.original is None:
        return None
    impl = shadow.batch_impl
    if impl is None:
        impl = compile_batch_impl(weaver, shadow)
        shadow.batch_impl = impl
        weaver.plan_stats.record_batch(shadow)
    return impl


class MethodTable:
    """Per-servant-class dispatch table backed by compiled plans.

    The middlewares used to resolve ``getattr(servant, method)`` on every
    request.  A :class:`MethodTable` caches the class-level entry (which,
    for woven classes, is the compiled plan impl) and invalidates only
    when the weaver's version moves — i.e. when weave/unweave/deploy/
    undeploy may have changed class attributes.

    Entries that are not plain functions (properties, descriptors,
    instance attributes) fall back to per-call ``getattr`` so dispatch
    semantics are unchanged.

    Known trade-off: the table observes only *weaver* mutations.  Class
    attributes changed behind the weaver's back — direct monkeypatching
    of a servant class, or weaving it through a non-default
    :class:`~repro.aop.weaver.Weaver` while the table watches another —
    keep serving the cached entry until the watched weaver's version
    moves.  Servants are expected to be (re)woven via the weaver the
    table was built with (the middlewares use the default weaver).
    """

    __slots__ = ("cls", "weaver", "_version", "_cache", "_batch_cache")

    def __init__(self, cls: type, weaver: "Weaver | None" = None):
        if weaver is None:
            from repro.aop.weaver import default_weaver

            weaver = default_weaver
        self.cls = cls
        self.weaver = weaver
        self._version = weaver.version
        self._cache: dict[tuple[int, str], Callable | None] = {}
        self._batch_cache: dict[tuple[int, str], Callable | None] = {}

    def lookup(self, name: str) -> Callable | None:
        """The cached unbound entry for ``name``; ``None`` means "resolve
        dynamically" (non-function attribute or absent).

        Entries are keyed by the weaver version observed *before*
        resolving, so a thread preempted across a deploy can never plant
        a stale pre-deploy entry under the new version (the weaver bumps
        its version only after the recompiled plans are installed).  A
        racing write under an outdated version key is harmless garbage,
        cleared at the next version move.
        """
        version = self.weaver.version
        if version != self._version:
            self._cache.clear()
            self._batch_cache.clear()
            self._version = version
        key = (version, name)
        entry = self._cache.get(key, _MISS)
        if entry is _MISS:
            entry = self._resolve(name)
            self._cache[key] = entry
        return entry

    def _resolve(self, name: str) -> Callable | None:
        for klass in self.cls.__mro__:
            attr = vars(klass).get(name, _MISS)
            if attr is not _MISS:
                if isinstance(attr, types.FunctionType):
                    return attr
                return None  # descriptor/odd attribute: dynamic dispatch
        return None

    def invoke(self, obj: Any, name: str, args: tuple = (),
               kwargs: dict | None = None) -> Any:
        """Dispatch ``obj.name(*args, **kwargs)`` through the table."""
        kwargs = kwargs or {}
        instance_dict = getattr(obj, "__dict__", None)
        if instance_dict is not None and name in instance_dict:
            return instance_dict[name](*args, **kwargs)
        func = self.lookup(name)
        if func is None:
            return getattr(obj, name)(*args, **kwargs)
        return func(obj, *args, **kwargs)

    def invoke_batch(self, obj: Any, name: str, pieces: Any) -> list:
        """Dispatch a pack of calls through the compiled batch plan.

        The server-side half of a batched request: one advice pass (one
        :class:`BatchJoinPoint`) covers the whole pack, and the list of
        per-item results ships back in a single reply.  The resolved
        batch plan is cached against the weaver version like
        :meth:`lookup` entries, so serving packs stops re-resolving the
        method per request.
        """
        instance_dict = getattr(obj, "__dict__", None)
        if instance_dict is not None and name in instance_dict:
            return _plain_batch(instance_dict[name])(pieces)
        version = self.weaver.version
        if version != self._version:
            self._cache.clear()
            self._batch_cache.clear()
            self._version = version
        key = (version, name)
        impl = self._batch_cache.get(key, _MISS)
        if impl is _MISS:
            impl = _resolve_batch_impl(self.weaver, self.cls, name)
            self._batch_cache[key] = impl
        if impl is None:
            return _plain_batch(getattr(obj, name))(pieces)
        return impl(obj, pieces)
