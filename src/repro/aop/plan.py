"""Compiled dispatch plans.

The weaver used to install one *generic* dispatcher per woven method:
every call re-fetched the advice chain from an epoch-checked cache, then
interpreted it.  This module replaces interpretation with **compilation**
— per (shadow, deployment-state) the weaver asks :func:`compile_call_impl`
for a closure specialised to exactly the advice that applies there.

Decision tree (applied top-down by :func:`compile_call_impl`; the first
matching shape wins):

1. **inert** — no advice matches and no flow-sensitive pointcut is live:
   install a *clone* of the original function — same code object, so a
   woven-inert call costs the same as a plain call (the clone is a
   distinct object so weaving stays observable and unweave can restore
   the true original).  If a ``cflow`` pointcut is live anywhere, the
   inert plan is instead a minimal stack-maintaining trampoline (no
   chain lookup, no advice scan).
2. **static** — *any* statically matched chain (no ``within``/``args``
   residues, no caller capture), whatever the kind mix and ordering:
   the sorted chain is partitioned into alternating segments of
   non-around and around entries.  Each non-around segment folds into
   compile-time try/finally frames (:func:`_wrap_step` — identical
   nesting to the interpreter, no per-call kind dispatch); each around
   segment becomes one :class:`_AroundCont` run — a single mutable
   continuation object armed **once per segment** in the joinpoint's
   per-thread proceed map, stepping through its levels with slot
   loads/stores instead of allocating one closure per level per call.
   Segments nest in chain order, so a before/after sorted *below* an
   around (the non-separable shape that used to force the interpreter)
   compiles too: it simply lands in the try/finally frames of the
   around segment beneath it.  Plans are labelled ``single-around`` /
   ``all-around`` / ``mixed`` for :class:`PlanStats`, but all three are
   the same machinery.
3. **generic** — only chains with a dynamic residue (``within``/``args``
   residues, caller capture) remain interpreted: a closure with the
   chain and flags baked in, calling the chain interpreter per call and
   counting itself in ``PlanStats.interpreter_calls``.

Captured continuations (``jp.capture_proceed()``) cannot hand out the
live :class:`_AroundCont` — its level state mutates as the run unwinds —
so capture returns a frozen :class:`_CapturedCont` snapshot that replays
the remainder of the chain on whichever thread invokes it, with the same
per-thread arming discipline as the interpreter's closures.

Invalidation rules: plans are recompiled only when the deployment state
*at that shadow* changes — the weaver keeps a static shadow→deployment
match index (built from :meth:`Pointcut.matches_shadow`) so deploying an
aspect whose pointcuts can never match a shadow leaves that shadow's
plan untouched.  Two changes are global: flipping flow-sensitivity
(rewrites the inert plan shape everywhere) and ``declare_parents``
(rewrites the subtype relation other deployments' ``Base+`` pointcuts
match against, forcing a full re-index).  Unweaving a class prunes every
per-class artifact: its shadows (and with them the cached batch plans),
its chain-cache rows, its :class:`PlanStats` counters (call *and* batch)
and its entries in the deployments' match index.  :class:`PlanStats`
counts compilations per shadow (with a per-kind histogram and a runtime
interpreter-fallback call counter) and exposes a hook list so tests (and
benchmarks) can assert exactly that.

The same Plan abstraction is what the other layers consume:

* :class:`MethodTable` — the middlewares' per-servant-class dispatch
  table.  Entries are the compiled class attributes, refreshed only when
  the weaver's version moves, so the server side stops resolving methods
  per request; :meth:`MethodTable.invoke_batch` serves batched requests
  through the compiled batch plan.
* :func:`bound_entry` — the partition skeletons' way to obtain a woven
  entry point once per worker instead of re-walking attribute lookup and
  the advice chain per work item.  Because the compiled plan *is* the
  class attribute, the bound attribute is the whole artifact.
* :func:`batched_entry` — the pack-granular sibling of ``bound_entry``:
  one compiled call dispatches a whole pack of pieces, running the
  advice chain **once per pack** around a :class:`BatchJoinPoint`
  (pack-level args, item count, merged piece view) instead of once per
  item.  Batch plans are compiled lazily per shadow, cached on the
  shadow, and invalidated by the same recompiles as the call plan; they
  follow the same decision tree, so a five-aspect stack never sends a
  pack through the interpreter either.
"""

from __future__ import annotations

import functools
import sys
import types
from itertools import groupby
from threading import get_ident
from typing import TYPE_CHECKING, Any, Callable

from repro.aop import joinpoint as _joinpoint_module
from repro.aop.advice import AdviceKind, BoundAdvice
from repro.aop.advice import run_chain as _baseline_run_chain
from repro.aop.cflow import _LOCAL as _FLOW_LOCAL
from repro.aop.joinpoint import CallerInfo, JoinPoint, JoinPointKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aop.weaver import Weaver

__all__ = [
    "Shadow",
    "PlanStats",
    "MethodTable",
    "BatchJoinPoint",
    "CtorPack",
    "ctor_pack_of",
    "compile_call_impl",
    "compile_batch_impl",
    "bound_entry",
    "batched_entry",
    "piece_view",
    "resolve_caller",
]

#: Chain interpreter used by compiled plans.  A module-level *name* (not a
#: baked-in reference) so :func:`repro.aop.tools.trace_advice` can patch it;
#: the compiled fast paths check it against the baseline and fall back
#: to the interpreter whenever tracing (or any other wrapper) is installed.
run_chain = _baseline_run_chain

_CALL = JoinPointKind.CALL
_MISS = object()


def resolve_caller() -> CallerInfo | None:
    """Find the first stack frame outside the AOP machinery."""
    try:
        frame = sys._getframe(2)
    except ValueError:  # pragma: no cover - no caller frames
        return None
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if not module.startswith("repro.aop"):
            code = frame.f_code
            qualname = getattr(code, "co_qualname", code.co_name)
            return CallerInfo(module, qualname, code.co_name)
        frame = frame.f_back
    return None


def piece_view(piece: Any) -> tuple[tuple, dict]:
    """Normalise one batch item to ``(args, kwargs)``.

    Accepts the partition layer's ``CallPiece``-shaped objects (anything
    with ``args``/``kwargs`` attributes) as well as plain 2-tuples — the
    wire shape middlewares ship for batched requests.  Tuples are
    recognised by exact type so the hot batch paths (the batch runner's
    ``batch_core`` and the pack-aware optimisation aspects, each of
    which view every piece per dispatch) never pay exception-based
    attribute dispatch.
    """
    if type(piece) is tuple:
        args, kwargs = piece
        return args, kwargs or {}
    try:
        return piece.args, piece.kwargs or {}
    except AttributeError:
        args, kwargs = piece
        return args, kwargs or {}


class BatchJoinPoint(JoinPoint):
    """One joinpoint standing for a whole *pack* of calls.

    Where a per-item dispatch allocates one :class:`JoinPoint` per piece
    and runs the advice chain once per piece, a batched dispatch builds a
    single ``BatchJoinPoint`` for the pack and runs the chain **once**:

    * ``pieces`` — the pack items, each a ``CallPiece``-shaped object or
      an ``(args, kwargs)`` pair (see :func:`piece_view`);
    * ``args`` — the pack-level view ``(pieces,)``: around advice may
      call ``proceed(new_pieces)`` to substitute the whole pack, exactly
      like per-call ``proceed`` substitutes arguments;
    * ``proceed()`` (and the innermost original) returns the **list of
      per-item results** in piece order.
    """

    __slots__ = ("pieces",)

    def __init__(self, cls: type, name: str, target: Any, pieces: tuple):
        super().__init__(_CALL, cls, name, target, (pieces,), {})
        self.pieces = pieces

    @property
    def item_count(self) -> int:
        """Number of items in the pack."""
        return len(self.pieces)

    def merged_view(self) -> tuple[tuple, dict]:
        """The merged piece view: concatenated positional arguments and
        merged keyword arguments across all items, in piece order."""
        merged_args: list = []
        merged_kwargs: dict = {}
        for piece in self.pieces:
            args, kwargs = piece_view(piece)
            merged_args.extend(args)
            merged_kwargs.update(kwargs)
        return tuple(merged_args), merged_kwargs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BatchJoinPoint {self.signature} x{len(self.pieces)}>"


class CtorPack:
    """A pack of constructor argument sets — batched *construction*.

    Duplication loops (farm/pipeline worker creation) used to call
    ``jp.proceed(*args_i)`` once per duplicate, paying one traversal of
    the remaining initialization chain — and, under distribution, one
    create-remote advice execution — *per worker*.  Passing a
    ``CtorPack`` to a single ``proceed`` instead runs the inner chain
    **once per duplicate set**: the weaver's innermost construction step
    recognises the pack and builds one fully-initialised instance per
    argset, returning the list in argset order.  Inner advice that cares
    about construction (the distribution aspect) detects the pack via
    :func:`ctor_pack_of` and handles the whole set in its single pass.

    ``argsets`` is a tuple of ``(args, kwargs)`` pairs, one per
    duplicate, in duplicate-index order.
    """

    __slots__ = ("argsets",)

    def __init__(self, argsets: Any):
        self.argsets = tuple(
            (tuple(args), dict(kwargs)) for args, kwargs in argsets
        )

    def __len__(self) -> int:
        return len(self.argsets)

    def __iter__(self) -> Any:
        return iter(self.argsets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CtorPack x{len(self.argsets)}>"


def ctor_pack_of(jp: Any) -> "CtorPack | None":
    """The :class:`CtorPack` travelling through an initialization
    joinpoint, or ``None`` for an ordinary per-instance construction.
    Advice on construction joinpoints that needs to act per instance
    (e.g. the distribution aspect's create-remote) calls this to decide
    whether ``proceed`` will hand back one instance or a list."""
    args = jp.args
    if len(args) == 1 and not jp.kwargs and isinstance(args[0], CtorPack):
        return args[0]
    return None


class Shadow:
    """One compiled joinpoint shadow: ``(cls, name, kind)`` plus its
    current plan (advice chain + specialised impl)."""

    __slots__ = ("cls", "name", "kind", "original", "impl", "entries",
                 "needs_caller", "compiles", "batch_impl")

    def __init__(self, cls: type, name: str, kind: JoinPointKind,
                 original: Callable | None):
        self.cls = cls
        self.name = name
        self.kind = kind
        self.original = original
        #: the installed callable (class attribute) for CALL shadows
        self.impl: Callable | None = None
        #: advice chain applicable here, outermost first
        self.entries: tuple[BoundAdvice, ...] = ()
        self.needs_caller = False
        #: number of times this shadow's plan was compiled
        self.compiles = 0
        #: lazily compiled pack-granular plan (see :func:`batched_entry`);
        #: reset to None whenever the call plan recompiles
        self.batch_impl: Callable | None = None

    @property
    def key(self) -> tuple[type, str, JoinPointKind]:
        return (self.cls, self.name, self.kind)

    @property
    def inert(self) -> bool:
        return not self.entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "inert" if self.inert else f"{len(self.entries)} advice"
        return f"<Shadow {self.cls.__name__}.{self.name} [{self.kind}] {state}>"


class PlanStats:
    """Compilation counters + hooks for the plan compiler.

    ``hooks`` are called with the :class:`Shadow` on every compilation —
    the regression tests use this to prove that deploying an aspect only
    recompiles the shadows its pointcuts can match.

    Beyond the per-shadow compile counts, the stats track the *shape*
    each compilation picked (``kinds`` / ``batch_kinds`` histograms over
    the plan-kind labels the compiler stamps on every impl) and a
    runtime ``interpreter_calls`` counter that only the generic
    dynamic-residue plans increment — so "this hot path never enters the
    interpreter" is a one-field assertion (see
    :meth:`repro.api.ParallelApp.plan_stats`).
    """

    def __init__(self) -> None:
        self.total = 0
        self.by_shadow: dict[tuple[type, str, JoinPointKind], int] = {}
        self.hooks: list[Callable[[Shadow], None]] = []
        #: batch-plan compilations (see :func:`batched_entry`)
        self.batch_total = 0
        self.batch_by_shadow: dict[tuple[type, str, JoinPointKind], int] = {}
        #: plan-kind histogram over call-plan compilations
        self.kinds: dict[str, int] = {}
        #: plan-kind histogram over batch-plan compilations
        self.batch_kinds: dict[str, int] = {}
        #: runtime calls served by the generic interpreter fallback
        #: (dynamic-residue chains only; tracing redirections not counted)
        self.interpreter_calls = 0

    def record(self, shadow: Shadow) -> None:
        self.total += 1
        key = shadow.key
        self.by_shadow[key] = self.by_shadow.get(key, 0) + 1
        kind = getattr(shadow.impl, "__aop_plan_kind__", None)
        if kind is not None:
            self.kinds[kind] = self.kinds.get(kind, 0) + 1
        for hook in self.hooks:
            hook(shadow)

    def record_batch(self, shadow: Shadow) -> None:
        self.batch_total += 1
        key = shadow.key
        self.batch_by_shadow[key] = self.batch_by_shadow.get(key, 0) + 1
        kind = getattr(shadow.batch_impl, "__aop_plan_kind__", None)
        if kind is not None:
            self.batch_kinds[kind] = self.batch_kinds.get(kind, 0) + 1

    def count(self, cls: type, name: str,
              kind: JoinPointKind = JoinPointKind.CALL) -> int:
        return self.by_shadow.get((cls, name, kind), 0)

    def batch_count(self, cls: type, name: str,
                    kind: JoinPointKind = JoinPointKind.CALL) -> int:
        return self.batch_by_shadow.get((cls, name, kind), 0)

    def snapshot(self) -> dict[tuple[type, str, JoinPointKind], int]:
        return dict(self.by_shadow)

    def summary(self) -> dict[str, Any]:
        """Read-only scalar snapshot: compile counts, the per-kind plan
        histograms, and the interpreter-fallback call counter."""
        return {
            "compiles": self.total,
            "batch_compiles": self.batch_total,
            "kinds": dict(self.kinds),
            "batch_kinds": dict(self.batch_kinds),
            "interpreter_calls": self.interpreter_calls,
        }

    def prune_class(self, cls: type) -> None:
        """Drop counters for an unwoven class so long-lived processes
        weaving ephemeral classes don't pin them (and grow) forever.
        Covers call-plan and batch-plan counters alike."""
        for key in [k for k in self.by_shadow if k[0] is cls]:
            del self.by_shadow[key]
        for key in [k for k in self.batch_by_shadow if k[0] is cls]:
            del self.batch_by_shadow[key]

    def clear(self) -> None:
        self.total = 0
        self.by_shadow.clear()
        self.batch_total = 0
        self.batch_by_shadow.clear()
        self.kinds.clear()
        self.batch_kinds.clear()
        self.interpreter_calls = 0


# ---------------------------------------------------------------------------
# Impl compilation
# ---------------------------------------------------------------------------


def _mark(impl: Callable, original: Callable, *, inert: bool = False,
          kind: str | None = None) -> Callable:
    impl.__aop_dispatcher__ = True  # type: ignore[attr-defined]
    impl.__wrapped__ = original  # type: ignore[attr-defined]
    if inert:
        impl.__aop_inert__ = True  # type: ignore[attr-defined]
    if kind is not None:
        impl.__aop_plan_kind__ = kind  # type: ignore[attr-defined]
    return impl


def _inert_impl(original: Callable) -> Callable:
    """The woven-inert plan: behaviourally *is* the original.

    For plain functions we clone the function object (same code, globals,
    defaults and closure), so calling it costs exactly a plain call; the
    clone is a distinct object so ``weave`` remains observable and
    ``unweave`` can still restore the genuine original.  Non-function
    callables get a thin trampoline preserving the dispatcher calling
    convention.
    """
    if isinstance(original, types.FunctionType):
        clone = types.FunctionType(
            original.__code__,
            original.__globals__,
            original.__name__,
            original.__defaults__,
            original.__closure__,
        )
        clone.__kwdefaults__ = original.__kwdefaults__
        functools.update_wrapper(clone, original)
        return _mark(clone, original, inert=True, kind="inert")

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        return original(self_obj, *args, **kwargs)

    return _mark(impl, original, inert=True, kind="inert")


def _tracking_impl(cls: type, name: str, original: Callable) -> Callable:
    """Inert shadow while a flow-sensitive pointcut is live: maintain the
    joinpoint stack (for ``cflow`` matching below) but nothing else."""

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        stack = _FLOW_LOCAL.flow.stack
        stack.append(JoinPoint(_CALL, cls, name, self_obj, args, kwargs))
        try:
            return original(self_obj, *args, **kwargs)
        finally:
            stack.pop()

    return _mark(impl, original, kind="tracking")


class _AroundCont:
    """The live continuation of one *around segment*: a single mutable
    object armed once per segment run in ``jp._proceed_map`` — calling it
    IS ``proceed`` for whichever level is currently executing.

    The interpreter (and the first compiled plans) allocated one
    ``proceed`` closure per around level per call and re-armed the
    per-thread proceed map at every level transition.  On a five-around
    stack that is five closure allocations plus ~4 map operations and
    ~20 ``get_ident`` calls per dispatch — the dominant cost of the
    ``five_aspect_stack`` bench.  Here the armed map entry never changes
    during the run; stepping a level is a handful of slot loads/stores:

    * ``i``/``args``/``kwargs`` — the *armed* level's index and argument
      view.  ``__call__`` (i.e. ``proceed``) invokes level ``i + 1``
      and, on success, restores the armed view exactly like the
      interpreter's per-level closures restore ``jp.args`` and re-arm
      themselves.  On an exception the armed view is rolled back to the
      caller level (the interpreter's ``finally`` map restore) and
      ``jp.args`` is deliberately left as the failing level set it.
    * ``tail`` — the compiled remainder below this segment: the original
      call, or folded before/after frames (possibly wrapping the next
      around segment of a non-separable chain).

    ``flow.advice_depth`` is maintained by the segment *run* (±1 for the
    whole segment, see :func:`_around_run`) rather than per level — every
    reader treats it as a boolean ("is advice on the stack?"), and the
    balanced hoist keeps it zero outside dispatch.
    """

    __slots__ = ("funcs", "n", "tail", "orig", "jp", "self_obj", "i",
                 "args", "kwargs")

    def __init__(self, funcs: tuple[Callable, ...], n: int, tail: Callable,
                 jp: JoinPoint, self_obj: Any):
        self.funcs = funcs
        self.n = n
        self.tail = tail
        # when the tail is nothing but the original call, the inlined
        # proceed step skips the tail frame and calls it directly
        self.orig = getattr(tail, "__aop_original__", None)
        self.jp = jp
        self.self_obj = self_obj
        # placeholder armed state; _invoke() sets the real view before
        # any advice body can observe it
        self.i = 0
        self.args: tuple = ()
        self.kwargs: dict = {}

    def _invoke(self, i: int, args: tuple, kwargs: dict) -> Any:
        """Run level ``i`` with ``args``/``kwargs`` as the current view
        (the entry point for level 0 and for captured replays)."""
        jp = self.jp
        jp.args = args
        jp.kwargs = kwargs
        if i == self.n:
            return self.tail(jp, self.self_obj, args, kwargs)
        prev_i, prev_args, prev_kwargs = self.i, self.args, self.kwargs
        self.i = i
        self.args = args
        self.kwargs = kwargs
        try:
            return self.funcs[i](jp)
        except BaseException:
            # unwind: roll the armed view back to the caller level so an
            # outer advice that catches can still proceed()
            self.i = prev_i
            self.args = prev_args
            self.kwargs = prev_kwargs
            raise

    def __call__(self, *new_args: Any, **new_kwargs: Any) -> Any:
        i = self.i
        args = self.args
        kwargs = self.kwargs
        use_args = new_args if new_args else args
        use_kwargs = new_kwargs if new_kwargs else kwargs
        jp = self.jp
        nxt = i + 1
        jp.args = use_args
        jp.kwargs = use_kwargs
        if nxt == self.n:
            result = self.tail(jp, self.self_obj, use_args, use_kwargs)
        else:
            self.i = nxt
            self.args = use_args
            self.kwargs = use_kwargs
            try:
                result = self.funcs[nxt](jp)
            except BaseException:
                self.i = i
                self.args = args
                self.kwargs = kwargs
                raise
        # restore this level's view so a second proceed() or a
        # post-proceed inspection of jp sees consistent state
        jp.args = args
        jp.kwargs = kwargs
        self.i = i
        self.args = args
        self.kwargs = kwargs
        return result

    def capture(self) -> "_CapturedCont":
        """A frozen snapshot of the armed level for deferred execution
        (see :meth:`JoinPoint.capture_proceed`) — the live object cannot
        be handed out because its state mutates as the run unwinds."""
        return _CapturedCont(
            self.funcs, self.n, self.tail, self.jp, self.self_obj,
            self.i, self.args, self.kwargs,
        )


# Hand the continuation class to the joinpoint module:
# ``JoinPoint.proceed`` type-checks the armed continuation against it
# and inlines the level step (one frame per level instead of two).
_joinpoint_module._AROUND_CONT = _AroundCont


class _CapturedCont:
    """A captured ``proceed``: the remainder of an around segment frozen
    at capture time, runnable later on any thread.

    Matches the interpreter's captured closures observably: replaying
    arms the invoking thread's own proceed-map slot (never another
    thread's), the innermost replay runs the tail at the invoker's
    advice depth (a spawned activity running the original is *not* "from
    advice"), and a successful replay leaves ``jp.args`` restored to the
    captured view with the capture re-armed on the invoking thread —
    unless that thread still has a *live* continuation armed (a
    synchronous replay from inside the original run), which must keep
    owning ``proceed`` exactly as the interpreter's per-level closures
    re-arm themselves on unwind.
    """

    __slots__ = ("funcs", "n", "tail", "jp", "self_obj", "i", "args",
                 "kwargs")

    def __init__(self, funcs: tuple[Callable, ...], n: int, tail: Callable,
                 jp: JoinPoint, self_obj: Any, i: int, args: tuple,
                 kwargs: dict):
        self.funcs = funcs
        self.n = n
        self.tail = tail
        self.jp = jp
        self.self_obj = self_obj
        self.i = i
        self.args = args
        self.kwargs = kwargs

    def capture(self) -> "_CapturedCont":
        return self

    def __call__(self, *new_args: Any, **new_kwargs: Any) -> Any:
        jp = self.jp
        use_args = new_args if new_args else self.args
        use_kwargs = new_kwargs if new_kwargs else self.kwargs
        nxt = self.i + 1
        tid = get_ident()
        if nxt >= self.n:
            jp.args = use_args
            jp.kwargs = use_kwargs
            result = self.tail(jp, self.self_obj, use_args, use_kwargs)
        else:
            cont = _AroundCont(self.funcs, self.n, self.tail, jp,
                               self.self_obj)
            pm = jp._proceed_map
            saved = pm.get(tid)
            fused_live = jp._armed_tid == tid
            if fused_live:
                # live fused run on this thread: the replay owns proceed
                # for its duration — the fused fast path must not shadow
                # the replay continuation armed below
                jp._armed_tid = -1
            pm[tid] = cont
            flow = _FLOW_LOCAL.flow
            flow.advice_depth += 1
            try:
                result = cont._invoke(nxt, use_args, use_kwargs)
            finally:
                flow.advice_depth -= 1
                if fused_live:
                    jp._armed_tid = tid
                if saved is None:
                    pm.pop(tid, None)
                else:
                    pm[tid] = saved
        jp.args = self.args
        jp.kwargs = self.kwargs
        if jp._proceed_map.get(tid) is None:
            # deferred (post-run) replay: stay armed so the capture can
            # be replayed again.  During a live run the armed live
            # continuation keeps ownership (its state at this instant is
            # identical to the capture's).
            jp._proceed_map[tid] = self
        return result


# Hand the captured-continuation class to the joinpoint module as well:
# ``JoinPoint.capture_proceed`` builds one directly when the continuation
# state is fused into the joinpoint (no ``_AroundCont`` exists to ask).
_joinpoint_module._CAPTURED_CONT = _CapturedCont


class _FusedJoinPoint(JoinPoint):
    """A joinpoint whose around-segment continuation is *fused into it*.

    The all-around plan is the hot shape, and after inlining the
    continuation step into ``JoinPoint.proceed`` the remaining per-call
    overhead was the continuation object itself: one allocation, one
    proceed-map store + pop, and a dict lookup plus class check on every
    ``proceed``.  For a pure-around chain the continuation holds nothing
    the joinpoint could not hold, so this subclass grows the seven
    continuation slots and the plan arms dispatch by writing the calling
    thread's id into ``_armed_tid`` (a base-class slot, ``-1`` =
    disarmed).  ``proceed`` checks ``_armed_tid == get_ident()`` first —
    a slot load and int compare — and steps on these slots directly.

    The proceed map still exists (empty) for captured replays and for
    cross-thread callers, which take the dict path as before.
    """

    __slots__ = ("_funcs", "_n", "_tail", "_orig", "_i", "_aargs",
                 "_akwargs")


def _around_run(
    funcs: tuple[Callable, ...],
    tail: Callable[[JoinPoint, Any, tuple, dict], Any],
) -> Callable[[JoinPoint, Any, tuple, dict], Any]:
    """One compiled around segment: ``run(jp, self_obj, args, kwargs)``
    arms a fresh :class:`_AroundCont` on the calling thread (one map
    write + one restore for the whole segment), bumps the advice depth
    once, and enters level 0.  ``tail`` runs below the innermost level —
    the original, or the next folded segment of a non-separable chain."""
    n = len(funcs)

    def run(jp: JoinPoint, self_obj: Any, args: tuple, kwargs: dict) -> Any:
        cont = _AroundCont(funcs, n, tail, jp, self_obj)
        pm = jp._proceed_map
        tid = get_ident()
        saved = pm.get(tid)
        pm[tid] = cont
        flow = _FLOW_LOCAL.flow
        flow.advice_depth += 1
        try:
            return cont._invoke(0, args, kwargs)
        finally:
            flow.advice_depth -= 1
            if saved is None:
                pm.pop(tid, None)
            else:
                pm[tid] = saved

    return run


def _wrap_step(kind: AdviceKind, func: Callable, inner: Callable) -> Callable:
    """One compile-time frame of a non-around segment: the before/after
    entry's semantics as a dedicated closure around ``inner``.  The
    try/finally nesting is built here, at compile time, so runtime pays
    neither kind dispatch nor generator-based context managers while
    keeping ordering byte-identical to the interpreter's."""
    if kind is AdviceKind.BEFORE:

        def step(jp: JoinPoint, self_obj: Any, args: tuple, kwargs: dict) -> Any:
            flow = _FLOW_LOCAL.flow
            flow.advice_depth += 1
            try:
                func(jp)
            finally:
                flow.advice_depth -= 1
            return inner(jp, self_obj, args, kwargs)

    elif kind is AdviceKind.AFTER:

        def step(jp: JoinPoint, self_obj: Any, args: tuple, kwargs: dict) -> Any:
            try:
                return inner(jp, self_obj, args, kwargs)
            finally:
                flow = _FLOW_LOCAL.flow
                flow.advice_depth += 1
                try:
                    func(jp)
                finally:
                    flow.advice_depth -= 1

    elif kind is AdviceKind.AFTER_RETURNING:

        def step(jp: JoinPoint, self_obj: Any, args: tuple, kwargs: dict) -> Any:
            result = inner(jp, self_obj, args, kwargs)
            jp.result = result
            flow = _FLOW_LOCAL.flow
            flow.advice_depth += 1
            try:
                func(jp)
            finally:
                flow.advice_depth -= 1
            return result

    else:  # AdviceKind.AFTER_THROWING — arounds never reach _wrap_step

        def step(jp: JoinPoint, self_obj: Any, args: tuple, kwargs: dict) -> Any:
            try:
                return inner(jp, self_obj, args, kwargs)
            except BaseException as exc:
                jp.exception = exc
                flow = _FLOW_LOCAL.flow
                flow.advice_depth += 1
                try:
                    func(jp)
                finally:
                    flow.advice_depth -= 1
                raise

    return step


def _original_tail(original: Callable) -> Callable:
    """The innermost runner frame: invoke the original method.  The
    ``__aop_original__`` tag lets :class:`_AroundCont` (and the inlined
    proceed step) bypass this frame and call the original directly."""

    def tail(jp: JoinPoint, self_obj: Any, args: tuple, kwargs: dict) -> Any:
        return original(self_obj, *args, **kwargs)

    tail.__aop_original__ = original  # type: ignore[attr-defined]
    return tail


def _is_static(entries: tuple[BoundAdvice, ...], needs_caller: bool) -> bool:
    """Whether a chain is fully statically matched — no per-call residue
    evaluation, no caller capture — and therefore compilable."""
    return not needs_caller and not any(e.needs_eval for e in entries)


def _static_kind(entries: tuple[BoundAdvice, ...]) -> str:
    """The :class:`PlanStats` label for a compiled static chain."""
    if all(e.kind is AdviceKind.AROUND for e in entries):
        return "single-around" if len(entries) == 1 else "all-around"
    return "mixed"


def _compile_static_runner(
    entries: tuple[BoundAdvice, ...],
    tail: Callable[[JoinPoint, Any, tuple, dict], Any],
) -> Callable[[JoinPoint, Any, tuple, dict], Any]:
    """Fold a fully static chain (outermost first) into nested runner
    frames around ``tail``.

    The chain is partitioned into maximal segments of consecutive
    around / non-around entries and folded innermost-out: non-around
    segments become compile-time :func:`_wrap_step` frames, around
    segments become :func:`_around_run` continuation runs.  Because the
    fold follows chain order, non-separable shapes — a before or after
    sorted *below* an around — simply land in the tail of the around
    segment above them, preserving the interpreter's interleaving
    exactly (the segment's ``_invoke`` refreshes ``jp.args`` before
    every tail entry, so the lower frames always observe the
    possibly-substituted view).
    """
    segments = [
        (is_around, tuple(group))
        for is_around, group in groupby(
            entries, key=lambda e: e.kind is AdviceKind.AROUND
        )
    ]
    runner = tail
    for is_around, segment in reversed(segments):
        if is_around:
            runner = _around_run(
                tuple(entry.func for entry in segment), runner
            )
        else:
            for entry in reversed(segment):
                runner = _wrap_step(entry.kind, entry.func, runner)
    return runner


def _static_impl(
    cls: type,
    name: str,
    original: Callable,
    entries: tuple[BoundAdvice, ...],
    runner: Callable[[JoinPoint, Any, tuple, dict], Any],
    track_stack: bool,
) -> Callable:
    """The dispatch wrapper shared by compiled mixed-segment plans: build
    the joinpoint, maintain the flow stack (only while a flow-sensitive
    pointcut is live — flipping that recompiles every plan), and enter
    the compiled ``runner`` (falling back to the interpreter only while
    advice tracing has patched :data:`run_chain`)."""

    if track_stack:

        @functools.wraps(original)
        def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
            jp = JoinPoint(_CALL, cls, name, self_obj, args, kwargs)
            flow = _FLOW_LOCAL.flow
            jp.from_advice = flow.advice_depth > 0
            interpreter = run_chain
            stack = flow.stack
            stack.append(jp)
            try:
                if interpreter is not _baseline_run_chain:  # tracing on
                    return interpreter(
                        entries, jp,
                        lambda *a, **k: original(self_obj, *a, **k),
                    )
                return runner(jp, self_obj, args, kwargs)
            finally:
                stack.pop()

        return impl

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        jp = JoinPoint(_CALL, cls, name, self_obj, args, kwargs)
        jp.from_advice = _FLOW_LOCAL.flow.advice_depth > 0
        interpreter = run_chain
        if interpreter is not _baseline_run_chain:  # tracing installed
            return interpreter(
                entries, jp, lambda *a, **k: original(self_obj, *a, **k)
            )
        return runner(jp, self_obj, args, kwargs)

    return impl


def _all_around_impl(
    cls: type,
    name: str,
    original: Callable,
    entries: tuple[BoundAdvice, ...],
    track_stack: bool,
) -> Callable:
    """The fused plan for a chain that is *only* around advice — the
    paper's hot shape (one optimisation/distribution/concurrency stack
    around a compute method, dispatched millions of times).

    Behaviourally identical to ``_static_impl`` over a single
    :func:`_around_run` segment, but flattened into one frame with every
    per-call constant held in closure cells and a single allocation done
    via ``__new__`` + slot stores:

    * the joinpoint is a :class:`_FusedJoinPoint` built inline (no
      ``__init__`` frame) — the continuation state lives in its slots,
      so there is no continuation object to allocate at all;
    * arming is one int store (``jp._armed_tid = get_ident()``) instead
      of a proceed-map store + pop; ``JoinPoint.proceed`` takes its
      slot-compare fast path;
    * level 0 is entered by calling its advice func directly: the fused
      armed view already carries the entry arguments.
    """
    funcs = tuple(entry.func for entry in entries)
    n = len(funcs)
    funcs0 = funcs[0]
    tail = _original_tail(original)

    if track_stack:

        @functools.wraps(original)
        def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
            jp = _FusedJoinPoint.__new__(_FusedJoinPoint)
            jp.kind = _CALL
            jp.cls = cls
            jp.name = name
            jp.target = self_obj
            jp.args = args
            jp.kwargs = kwargs
            jp._proceed_map = {}
            jp._caller = None
            jp._caller_resolver = None
            jp.result = None
            jp.exception = None
            flow = _FLOW_LOCAL.flow
            depth = flow.advice_depth
            jp.from_advice = depth > 0
            interpreter = run_chain
            stack = flow.stack
            stack.append(jp)
            try:
                if interpreter is not _baseline_run_chain:  # tracing on
                    jp._armed_tid = -1
                    return interpreter(
                        entries, jp,
                        lambda *a, **k: original(self_obj, *a, **k),
                    )
                jp._funcs = funcs
                jp._n = n
                jp._tail = tail
                jp._orig = original
                jp._i = 0
                jp._aargs = args
                jp._akwargs = kwargs
                jp._armed_tid = get_ident()
                flow.advice_depth = depth + 1
                try:
                    return funcs0(jp)
                finally:
                    flow.advice_depth = depth
                    jp._armed_tid = -1
            finally:
                stack.pop()

        return impl

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        jp = _FusedJoinPoint.__new__(_FusedJoinPoint)
        jp.kind = _CALL
        jp.cls = cls
        jp.name = name
        jp.target = self_obj
        jp.args = args
        jp.kwargs = kwargs
        jp._proceed_map = {}
        jp._caller = None
        jp._caller_resolver = None
        jp.result = None
        jp.exception = None
        flow = _FLOW_LOCAL.flow
        depth = flow.advice_depth
        jp.from_advice = depth > 0
        interpreter = run_chain
        if interpreter is not _baseline_run_chain:  # tracing installed
            jp._armed_tid = -1
            return interpreter(
                entries, jp, lambda *a, **k: original(self_obj, *a, **k)
            )
        jp._funcs = funcs
        jp._n = n
        jp._tail = tail
        jp._orig = original
        jp._i = 0
        jp._aargs = args
        jp._akwargs = kwargs
        jp._armed_tid = get_ident()
        flow.advice_depth = depth + 1
        try:
            return funcs0(jp)
        finally:
            flow.advice_depth = depth
            jp._armed_tid = -1

    return impl


def _chain_impl(
    cls: type,
    name: str,
    original: Callable,
    entries: tuple[BoundAdvice, ...],
    needs_caller: bool,
    stats: "PlanStats | None" = None,
) -> Callable:
    """General advised plan: chain and flags baked in, interpreted by
    :func:`run_chain` (looked up through the patchable module global).
    Reached only by dynamic-residue chains; each call is tallied in
    ``stats.interpreter_calls`` when stats are supplied."""

    @functools.wraps(original)
    def impl(self_obj: Any, *args: Any, **kwargs: Any) -> Any:
        jp = JoinPoint(_CALL, cls, name, self_obj, args, kwargs)
        flow = _FLOW_LOCAL.flow
        jp.from_advice = flow.advice_depth > 0
        if needs_caller:
            jp._caller = resolve_caller()
        if stats is not None:
            stats.interpreter_calls += 1
        stack = flow.stack
        stack.append(jp)
        try:
            return run_chain(
                entries, jp, lambda *a, **k: original(self_obj, *a, **k)
            )
        finally:
            stack.pop()

    return _mark(impl, original, kind="interpreted")


def compile_call_impl(weaver: "Weaver", shadow: Shadow) -> Callable:
    """Compile the specialised dispatcher for a CALL shadow's current
    chain (``shadow.entries`` / ``shadow.needs_caller`` must be fresh).
    Implements the inert / static / generic decision tree described in
    the module docstring."""
    original = shadow.original
    entries = shadow.entries
    if not entries:
        if weaver._cflow_active:
            return _tracking_impl(shadow.cls, shadow.name, original)
        return _inert_impl(original)
    if not _is_static(entries, shadow.needs_caller):
        return _chain_impl(
            shadow.cls, shadow.name, original, entries,
            shadow.needs_caller, weaver.plan_stats,
        )
    track_stack = weaver._cflow_active
    if all(entry.kind is AdviceKind.AROUND for entry in entries):
        impl = _all_around_impl(shadow.cls, shadow.name, original, entries,
                                track_stack)
    else:
        runner = _compile_static_runner(entries, _original_tail(original))
        impl = _static_impl(shadow.cls, shadow.name, original, entries,
                            runner, track_stack)
    return _mark(impl, original, kind=_static_kind(entries))


# ---------------------------------------------------------------------------
# Plan consumers for the other layers
# ---------------------------------------------------------------------------


def bound_entry(obj: Any, name: str) -> Callable[..., Any]:
    """The compiled entry point for ``obj.name``.

    The plan compiler installs the specialised dispatcher *as the class
    attribute*, so the bound attribute already is the complete per-shadow
    artifact — skeletons fetch it once per worker/stage and then invoke
    pieces through it without re-walking lookup or the advice chain.
    """
    return getattr(obj, name)


def _tag_batch(impl: Callable, kind: str) -> Callable:
    impl.__aop_plan_kind__ = kind  # type: ignore[attr-defined]
    return impl


def compile_batch_impl(weaver: "Weaver", shadow: Shadow) -> Callable[[Any, Any], list]:
    """Compile the pack-granular plan for a CALL shadow.

    The returned ``impl(self_obj, pieces) -> [results]`` runs the advice
    chain once around a :class:`BatchJoinPoint` whose innermost original
    applies the woven method to every piece.  Specialisation follows the
    call-plan decision tree: inert packs run a bare loop (zero joinpoint
    allocations), static chains — separable or not — run the same folded
    segment runner as the call plan, and only dynamic-residue chains
    fall back to one interpreted chain pass per pack (still a single
    ``BatchJoinPoint``, counted in ``PlanStats.interpreter_calls``).
    """
    original = shadow.original
    cls, name = shadow.cls, shadow.name
    entries = shadow.entries
    needs_caller = shadow.needs_caller
    stats = weaver.plan_stats

    def batch_core(self_obj: Any, pieces: Any) -> list:
        results = []
        for piece in pieces:
            args, kwargs = piece_view(piece)
            results.append(original(self_obj, *args, **kwargs))
        return results

    if not entries:
        if not weaver._cflow_active:
            return _tag_batch(batch_core, "inert")

        def tracking_batch(self_obj: Any, pieces: Any) -> list:
            stack = _FLOW_LOCAL.flow.stack
            stack.append(BatchJoinPoint(cls, name, self_obj, tuple(pieces)))
            try:
                return batch_core(self_obj, pieces)
            finally:
                stack.pop()

        return _tag_batch(tracking_batch, "tracking")

    if _is_static(entries, needs_caller):
        # jp.args is (pieces,): the tail unpacks the (possibly
        # proceed-substituted) pack back into the batch core
        def batch_tail(jp: JoinPoint, self_obj: Any, args: tuple,
                       kwargs: dict) -> list:
            return batch_core(self_obj, args[0])

        runner = _compile_static_runner(entries, batch_tail)
        kind = _static_kind(entries)
    else:
        runner = None
        kind = "interpreted"

    def advised_batch(self_obj: Any, pieces: Any) -> Any:
        jp = BatchJoinPoint(cls, name, self_obj, tuple(pieces))
        flow = _FLOW_LOCAL.flow
        jp.from_advice = flow.advice_depth > 0
        if needs_caller:
            jp._caller = resolve_caller()
        interpreter = run_chain
        stack = flow.stack
        stack.append(jp)
        try:
            if runner is None or interpreter is not _baseline_run_chain:
                if runner is None:
                    stats.interpreter_calls += 1
                # jp.args is (pieces,): the interpreter's innermost call
                # unpacks it back into the batch core
                return interpreter(
                    entries, jp, lambda pack: batch_core(self_obj, pack)
                )
            return runner(jp, self_obj, jp.args, {})
        finally:
            stack.pop()

    return _tag_batch(advised_batch, kind)


def _plain_batch(func: Callable) -> Callable[[Any], list]:
    def entry(pieces: Any) -> list:
        results = []
        for piece in pieces:
            args, kwargs = piece_view(piece)
            results.append(func(*args, **kwargs))
        return results

    return entry


def batched_entry(
    obj: Any, name: str, weaver: "Weaver | None" = None
) -> Callable[[Any], list]:
    """The compiled *batched* entry point for ``obj.name``.

    Returns ``entry(pieces) -> [results]`` dispatching a whole pack of
    pieces (``CallPiece``-shaped objects or ``(args, kwargs)`` pairs)
    through one compiled call: the advice chain runs once per pack with
    a :class:`BatchJoinPoint` instead of once per item.  Batch plans are
    compiled on first request, cached on the shadow, and invalidated by
    the same weave/deploy recompiles as the call plan.

    Objects whose method does not resolve to a shadow of ``weaver``
    (unwoven classes, subclass or instance overrides, classes woven by a
    different weaver) fall back to per-item dispatch through the bound
    attribute — unbatched, but semantically identical.
    """
    if weaver is None:
        from repro.aop.weaver import default_weaver

        weaver = default_weaver
    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict is not None and name in instance_dict:
        return _plain_batch(instance_dict[name])
    impl = _resolve_batch_impl(weaver, type(obj), name)
    if impl is None:
        return _plain_batch(getattr(obj, name))
    return functools.partial(impl, obj)


def _resolve_batch_impl(
    weaver: "Weaver", cls: type, name: str
) -> Callable[[Any, Any], list] | None:
    """The (lazily compiled) batch plan for ``cls.name``, or None when
    the method does not resolve to a shadow of ``weaver`` and callers
    must fall back to per-item dispatch."""
    shadow = None
    for klass in cls.__mro__:
        if name in vars(klass):
            shadows = weaver._shadows.get(klass)
            shadow = shadows.get((name, _CALL)) if shadows else None
            break
    if shadow is None or shadow.original is None:
        return None
    impl = shadow.batch_impl
    if impl is None:
        impl = compile_batch_impl(weaver, shadow)
        shadow.batch_impl = impl
        weaver.plan_stats.record_batch(shadow)
    return impl


class MethodTable:
    """Per-servant-class dispatch table backed by compiled plans.

    The middlewares used to resolve ``getattr(servant, method)`` on every
    request.  A :class:`MethodTable` caches the class-level entry (which,
    for woven classes, is the compiled plan impl) and invalidates only
    when the weaver's version moves — i.e. when weave/unweave/deploy/
    undeploy may have changed class attributes.

    Entries that are not plain functions (properties, descriptors,
    instance attributes) fall back to per-call ``getattr`` so dispatch
    semantics are unchanged.

    Known trade-off: the table observes only *weaver* mutations.  Class
    attributes changed behind the weaver's back — direct monkeypatching
    of a servant class, or weaving it through a non-default
    :class:`~repro.aop.weaver.Weaver` while the table watches another —
    keep serving the cached entry until the watched weaver's version
    moves.  Servants are expected to be (re)woven via the weaver the
    table was built with (the middlewares use the default weaver).
    """

    __slots__ = ("cls", "weaver", "_version", "_cache", "_batch_cache")

    def __init__(self, cls: type, weaver: "Weaver | None" = None):
        if weaver is None:
            from repro.aop.weaver import default_weaver

            weaver = default_weaver
        self.cls = cls
        self.weaver = weaver
        self._version = weaver.version
        self._cache: dict[tuple[int, str], Callable | None] = {}
        self._batch_cache: dict[tuple[int, str], Callable | None] = {}

    def lookup(self, name: str) -> Callable | None:
        """The cached unbound entry for ``name``; ``None`` means "resolve
        dynamically" (non-function attribute or absent).

        Entries are keyed by the weaver version observed *before*
        resolving, so a thread preempted across a deploy can never plant
        a stale pre-deploy entry under the new version (the weaver bumps
        its version only after the recompiled plans are installed).  A
        racing write under an outdated version key is harmless garbage,
        cleared at the next version move.
        """
        version = self.weaver.version
        if version != self._version:
            self._cache.clear()
            self._batch_cache.clear()
            self._version = version
        key = (version, name)
        entry = self._cache.get(key, _MISS)
        if entry is _MISS:
            entry = self._resolve(name)
            self._cache[key] = entry
        return entry

    def _resolve(self, name: str) -> Callable | None:
        for klass in self.cls.__mro__:
            attr = vars(klass).get(name, _MISS)
            if attr is not _MISS:
                if isinstance(attr, types.FunctionType):
                    return attr
                return None  # descriptor/odd attribute: dynamic dispatch
        return None

    def invoke(self, obj: Any, name: str, args: tuple = (),
               kwargs: dict | None = None) -> Any:
        """Dispatch ``obj.name(*args, **kwargs)`` through the table."""
        kwargs = kwargs or {}
        instance_dict = getattr(obj, "__dict__", None)
        if instance_dict is not None and name in instance_dict:
            return instance_dict[name](*args, **kwargs)
        func = self.lookup(name)
        if func is None:
            return getattr(obj, name)(*args, **kwargs)
        return func(obj, *args, **kwargs)

    def invoke_batch(self, obj: Any, name: str, pieces: Any) -> list:
        """Dispatch a pack of calls through the compiled batch plan.

        The server-side half of a batched request: one advice pass (one
        :class:`BatchJoinPoint`) covers the whole pack, and the list of
        per-item results ships back in a single reply.  The resolved
        batch plan is cached against the weaver version like
        :meth:`lookup` entries, so serving packs stops re-resolving the
        method per request.
        """
        instance_dict = getattr(obj, "__dict__", None)
        if instance_dict is not None and name in instance_dict:
            return _plain_batch(instance_dict[name])(pieces)
        version = self.weaver.version
        if version != self._version:
            self._cache.clear()
            self._batch_cache.clear()
            self._version = version
        key = (version, name)
        impl = self._batch_cache.get(key, _MISS)
        if impl is _MISS:
            impl = _resolve_batch_impl(self.weaver, self.cls, name)
            self._batch_cache[key] = impl
        if impl is None:
            return _plain_batch(getattr(obj, name))(pieces)
        return impl(obj, pieces)
