"""Advice kinds and the advice-chain interpreter.

An advice chain is the ordered list of advice applicable at one joinpoint
shadow.  Ordering follows AspectJ precedence rules: higher-precedence
aspects run *outermost* (their ``before`` runs first, their ``around``
wraps everything below, their ``after`` runs last).  Within one aspect,
declaration order decides.

The interpreter (:func:`run_chain`) executes the chain recursively;
``proceed`` at level *i* continues at level *i + 1*, and the innermost
``proceed`` performs the original behaviour (the method body, or raw
construction for initialization joinpoints).  Around advice may call
``proceed`` any number of times, with or without replacement arguments.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable, Sequence

from repro.aop.cflow import entered_advice
from repro.aop.joinpoint import JoinPoint
from repro.aop.pointcut import MAYBE, Pointcut
from repro.errors import AdviceError

__all__ = ["AdviceKind", "AdviceDecl", "BoundAdvice", "run_chain"]


class AdviceKind(enum.Enum):
    BEFORE = "before"
    AFTER = "after"  # after-finally
    AFTER_RETURNING = "after_returning"
    AFTER_THROWING = "after_throwing"
    AROUND = "around"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class AdviceDecl:
    """A single advice declaration inside an aspect class.

    ``pointcut_source`` is kept unresolved (string, :class:`Pointcut`, or
    the *name* of an aspect-level pointcut attribute) until deployment so
    abstract aspects can defer their pointcuts to concrete subclasses.
    """

    __slots__ = ("kind", "pointcut_source", "func", "index", "name")

    def __init__(
        self,
        kind: AdviceKind,
        pointcut_source: Any,
        func: Callable,
        index: int,
    ):
        self.kind = kind
        self.pointcut_source = pointcut_source
        self.func = func
        self.index = index
        self.name = func.__name__

    def __repr__(self) -> str:  # pragma: no cover
        return f"<AdviceDecl {self.kind} {self.name} on {self.pointcut_source!r}>"


class BoundAdvice:
    """Advice resolved against a deployed aspect instance and statically
    matched at one shadow."""

    __slots__ = ("kind", "pointcut", "func", "needs_eval", "aspect", "sort_key")

    def __init__(
        self,
        kind: AdviceKind,
        pointcut: Pointcut,
        func: Callable,
        needs_eval: bool,
        aspect: Any,
        sort_key: tuple,
    ):
        self.kind = kind
        self.pointcut = pointcut
        self.func = func
        self.needs_eval = needs_eval
        self.aspect = aspect
        self.sort_key = sort_key

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BoundAdvice {self.kind} from {type(self.aspect).__name__}>"


def run_chain(
    entries: Sequence[BoundAdvice],
    jp: JoinPoint,
    original: Callable[..., Any],
) -> Any:
    """Execute an advice chain around ``original`` for joinpoint ``jp``.

    ``entries`` must already be sorted outermost-first.  Returns whatever
    the outermost around advice (or the original code) returns.
    """
    n = len(entries)

    def invoke(i: int, args: tuple, kwargs: dict) -> Any:
        jp.args, jp.kwargs = args, kwargs
        if i == n:
            return original(*args, **kwargs)
        entry = entries[i]
        if entry.needs_eval and not entry.pointcut.evaluate(jp):
            return invoke(i + 1, args, kwargs)
        kind = entry.kind
        if kind is AdviceKind.BEFORE:
            with entered_advice():
                entry.func(jp)
            return invoke(i + 1, args, kwargs)
        if kind is AdviceKind.AROUND:
            # Continuations are per-thread: a spawned activity running a
            # captured continuation must not have its proceed clobbered
            # when the spawning thread's advice unwinds (and vice versa).
            def proceed(*new_args: Any, **new_kwargs: Any) -> Any:
                use_args = new_args if new_args else args
                use_kwargs = new_kwargs if new_kwargs else kwargs
                result = invoke(i + 1, use_args, use_kwargs)
                # restore this level's view so a second proceed() or a
                # post-proceed inspection of jp sees consistent state
                jp.args, jp.kwargs = args, kwargs
                jp._proceed_map[threading.get_ident()] = proceed
                return result

            tid = threading.get_ident()
            saved = jp._proceed_map.get(tid)
            jp._proceed_map[tid] = proceed
            try:
                with entered_advice():
                    return entry.func(jp)
            finally:
                tid = threading.get_ident()
                if saved is None:
                    jp._proceed_map.pop(tid, None)
                else:
                    jp._proceed_map[tid] = saved
        if kind is AdviceKind.AFTER:
            try:
                return invoke(i + 1, args, kwargs)
            finally:
                with entered_advice():
                    entry.func(jp)
        if kind is AdviceKind.AFTER_RETURNING:
            result = invoke(i + 1, args, kwargs)
            jp.result = result
            with entered_advice():
                entry.func(jp)
            return result
        if kind is AdviceKind.AFTER_THROWING:
            try:
                return invoke(i + 1, args, kwargs)
            except BaseException as exc:
                jp.exception = exc
                with entered_advice():
                    entry.func(jp)
                raise
        raise AdviceError(f"unknown advice kind {kind!r}")  # pragma: no cover

    return invoke(0, jp.args, jp.kwargs)


def chain_needs_eval(pointcut: Pointcut, shadow_result: int) -> bool:
    """Whether a statically matched advice still needs per-call checks."""
    return shadow_result is MAYBE or pointcut.needs_caller
