"""Control-flow state for dynamic pointcuts.

Tracks, per thread (simulated processes are real threads, so
``threading.local`` covers both execution backends):

* the stack of joinpoints currently executing — powering ``cflow(..)``
  and ``cflowbelow(..)``;
* the advice-execution depth — powering ``adviceexecution()`` and the
  default rule that *initialization* joinpoints are not re-matched for
  constructions performed inside advice (the paper: "This pointcut only
  intercepts object creations in the core functionality").
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aop.joinpoint import JoinPoint

__all__ = [
    "current_stack",
    "advice_depth",
    "in_advice",
    "entered_joinpoint",
    "entered_advice",
    "construction_bypass",
    "bypassing_construction",
]


class _FlowState(threading.local):
    def __init__(self) -> None:
        self.stack: list["JoinPoint"] = []
        self.advice_depth: int = 0
        self.construction_bypass: int = 0


_STATE = _FlowState()


def current_stack() -> list["JoinPoint"]:
    """The joinpoints currently executing on this thread, outermost first."""
    return _STATE.stack


def advice_depth() -> int:
    return _STATE.advice_depth


def in_advice() -> bool:
    """Is this thread currently executing advice code?"""
    return _STATE.advice_depth > 0


def construction_bypass() -> bool:
    """Is construction currently bypassing the weaver (``proceed`` of an
    initialization joinpoint, or :func:`repro.aop.raw_construct`)?"""
    return _STATE.construction_bypass > 0


@contextmanager
def entered_joinpoint(jp: "JoinPoint") -> Iterator[None]:
    """Push ``jp`` on the thread's control-flow stack for cflow matching."""
    _STATE.stack.append(jp)
    try:
        yield
    finally:
        _STATE.stack.pop()


@contextmanager
def entered_advice() -> Iterator[None]:
    """Mark advice execution (for ``adviceexecution()`` pointcuts)."""
    _STATE.advice_depth += 1
    try:
        yield
    finally:
        _STATE.advice_depth -= 1


@contextmanager
def bypassing_construction() -> Iterator[None]:
    """Run a block during which woven constructors use the raw path."""
    _STATE.construction_bypass += 1
    try:
        yield
    finally:
        _STATE.construction_bypass -= 1
