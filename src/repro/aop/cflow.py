"""Control-flow state for dynamic pointcuts.

Tracks, per thread (simulated processes are real threads, so
``threading.local`` covers both execution backends):

* the stack of joinpoints currently executing — powering ``cflow(..)``
  and ``cflowbelow(..)``;
* the advice-execution depth — powering ``adviceexecution()`` and the
  default rule that *initialization* joinpoints are not re-matched for
  constructions performed inside advice (the paper: "This pointcut only
  intercepts object creations in the core functionality").

Every attribute read on a ``threading.local`` pays a thread-dictionary
lookup, which adds up on the woven hot path (the compiled dispatch plans
touch flow state half a dozen times per call).  The state therefore
lives in a plain ``__slots__`` object reachable through *one*
``threading.local`` attribute: ``flow_state()`` resolves the thread
dictionary once, and every subsequent field access is an ordinary slot
load.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aop.joinpoint import JoinPoint

__all__ = [
    "flow_state",
    "current_stack",
    "advice_depth",
    "in_advice",
    "entered_joinpoint",
    "entered_advice",
    "construction_bypass",
    "bypassing_construction",
]


class _Flow:
    """Per-thread flow state; plain slots so field access is cheap."""

    __slots__ = ("stack", "advice_depth", "construction_bypass")

    def __init__(self) -> None:
        self.stack: list["JoinPoint"] = []
        self.advice_depth: int = 0
        self.construction_bypass: int = 0


class _FlowLocal(threading.local):
    def __init__(self) -> None:
        self.flow = _Flow()


_LOCAL = _FlowLocal()


def flow_state() -> _Flow:
    """This thread's flow state; fetch once, then use plain attributes."""
    return _LOCAL.flow


def current_stack() -> list["JoinPoint"]:
    """The joinpoints currently executing on this thread, outermost first."""
    return _LOCAL.flow.stack


def advice_depth() -> int:
    return _LOCAL.flow.advice_depth


def in_advice() -> bool:
    """Is this thread currently executing advice code?"""
    return _LOCAL.flow.advice_depth > 0


def construction_bypass() -> bool:
    """Is construction currently bypassing the weaver (``proceed`` of an
    initialization joinpoint, or :func:`repro.aop.raw_construct`)?"""
    return _LOCAL.flow.construction_bypass > 0


@contextmanager
def entered_joinpoint(jp: "JoinPoint") -> Iterator[None]:
    """Push ``jp`` on the thread's control-flow stack for cflow matching."""
    stack = _LOCAL.flow.stack
    stack.append(jp)
    try:
        yield
    finally:
        stack.pop()


@contextmanager
def entered_advice() -> Iterator[None]:
    """Mark advice execution (for ``adviceexecution()`` pointcuts)."""
    flow = _LOCAL.flow
    flow.advice_depth += 1
    try:
        yield
    finally:
        flow.advice_depth -= 1


@contextmanager
def bypassing_construction() -> Iterator[None]:
    """Run a block during which woven constructors use the raw path."""
    flow = _LOCAL.flow
    flow.construction_bypass += 1
    try:
        yield
    finally:
        flow.construction_bypass -= 1
