"""Declarative stack description: :class:`StackSpec`.

One value object describes a complete parallelisation stack — the
paper's Table-1 rows become data instead of wiring code::

    StackSpec(
        target=PrimeFilter,
        work="filter",                      # or a full call(..) pointcut
        splitter=workload.farm_splitter(8),
        strategy="farm",
        middleware="rmi",
        cluster=cluster,
        backend="sim",
    )

``work`` and ``creation`` accept either bare method names (expanded to
``call(Target.method(..))`` / ``initialization(Target.new(..))``) or
full pointcut expressions.  ``strategy``, ``middleware`` and ``backend``
are names resolved through the open registries of
:mod:`repro.api.registry`; :meth:`StackSpec.validate` resolves them
eagerly, so a typo fails at construction time with the full catalogue
and a nearest-match suggestion instead of deep inside deployment.

The special names registered here:

* strategy ``"none"`` — no partition module (service-style stacks that
  only need concurrency/distribution, e.g. for pack submission);
* middleware ``"none"`` — no distribution module (single-machine runs).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Any

from repro.api.registry import BACKENDS, MIDDLEWARES, STRATEGIES, register_middleware, register_strategy
from repro.errors import DeploymentError
from repro.runtime.admission import OVERFLOW_POLICIES

__all__ = ["StackSpec"]


@register_strategy("none")
def _no_partition(splitter: Any, creation: str, work: str, **options: Any) -> None:
    """The null strategy: the stack has no partition module."""
    return None


@register_middleware("none")
def _no_middleware(
    cluster: Any,
    creation: str,
    work: str,
    placement: Any = None,
    oneway: Any = (),
    **options: Any,
) -> tuple[None, None, None]:
    """The null middleware: the stack has no distribution module."""
    return None, None, None


#: ``Type.method`` captured from ``call(Type.method(..))``-shaped text
_METHOD_RE = re.compile(r"\.\s*([A-Za-z_][\w]*)\s*\(")
_IDENT_RE = re.compile(r"^[A-Za-z_]\w*$")


def _ensure_builtin_registrations() -> None:
    """Import the packages whose built-ins self-register, so
    ``validate()`` resolves catalogue names regardless of what the
    caller imported first (the imports are no-ops after the first
    call)."""
    import repro.parallel  # noqa: F401 - strategy/middleware registration
    import repro.runtime  # noqa: F401 - backend registration


@dataclass
class StackSpec:
    """Everything needed to assemble one parallelisation stack.

    Parameters mirror the methodology's decision points; only ``target``
    and ``work`` are mandatory (the null strategy/middleware/backend
    defaults give a plain local stack).
    """

    #: the core-functionality class being parallelised
    target: type
    #: work pointcut — bare method name or full ``call(..)`` expression
    work: str = ""
    #: creation pointcut — defaults to ``initialization(Target.new(..))``
    creation: str | None = None
    #: the application-supplied :class:`~repro.parallel.partition.base.WorkSplitter`
    splitter: Any = None
    #: partition strategy name from the strategy registry
    strategy: str = "farm"
    #: per-strategy builder options (e.g. heartbeat exchange accessors)
    strategy_options: dict[str, Any] = field(default_factory=dict)
    #: plug the asynchronous-invocation concurrency module?
    concurrency: bool = True
    #: distribution middleware name from the middleware registry
    middleware: str = "none"
    #: per-middleware builder options (e.g. RMI remote_interface)
    middleware_options: dict[str, Any] = field(default_factory=dict)
    #: simulated cluster — required by every middleware but ``"none"``
    cluster: Any = None
    #: servant placement policy (middleware default when None)
    placement: Any = None
    #: execution backend: registry name, instance, or None for
    #: auto ("sim" with a cluster, "thread" without)
    backend: Any = None
    #: methods invoked fire-and-forget (no reply wait) where supported
    oneway: tuple[str, ...] = ()
    #: cost-instrumentation aspect for simulated runs
    cost: Any = None
    #: extra optimisation modules/aspects plugged innermost, in order
    optimisations: tuple[Any, ...] = ()
    #: weaver override (tests); default weaver when None
    weaver: Any = None
    #: composition display name; derived from strategy+middleware if None
    name: str | None = None
    #: explicit work-method name for submission when ``work`` is a
    #: pattern a method name cannot be derived from
    work_method: str | None = None
    #: admission control — most submissions allowed in flight at once on
    #: the deployed stack (None = unbounded)
    max_in_flight: int | None = None
    #: overflow policy when ``max_in_flight`` is reached: ``block``
    #: (submitter waits for a slot), ``fail`` (AdmissionRejected), or
    #: ``shed-oldest`` (the oldest live call is cancelled with CallShed)
    overflow: str = "block"
    #: default per-call deadline in seconds (``submit(timeout=...)``
    #: overrides per call; None = no deadline).  Measured on the
    #: backend's clock: wall time on threads, virtual time on sim.
    timeout: float | None = None
    #: per-call retry policy (a :class:`repro.faults.RetryPolicy`):
    #: failed pieces are re-dispatched to healthy workers up to
    #: ``max_attempts`` times before the original failure latches
    #: (None = fail-fast, the pre-fault behaviour)
    retry: Any = None
    #: fault-injection schedule (a :class:`repro.faults.FaultSchedule`)
    #: installed on the ambient fault plane for the deployment's
    #: lifetime — a TEST knob, never set in production specs
    faults: Any = None
    #: tenant name this deployment submits as — requires ``scheduler``;
    #: every submit/map unit then acquires a cluster-level
    #: :class:`~repro.tenancy.TenantGrant` before its admission slot
    tenant: str | None = None
    #: the shared :class:`~repro.tenancy.ClusterScheduler` (one instance
    #: across the deployments it arbitrates) — requires ``tenant``
    scheduler: Any = None

    # -- derived views ------------------------------------------------------

    @property
    def work_pointcut(self) -> str:
        """The work pointcut, bare method names expanded."""
        return self._expand(self.work, "call", "{target}.{name}(..)")

    @property
    def creation_pointcut(self) -> str:
        """The creation pointcut (defaulted from the target when unset)."""
        if self.creation is None:
            return f"initialization({self.target.__name__}.new(..))"
        return self._expand(self.creation, "initialization", "{target}.{name}(..)")

    @property
    def pack_routable(self) -> bool:
        """Can ``app.map(pack=N)`` route packs through this spec?

        True for partition-less specs and for strategies whose
        coordinator aspect class declares ``routes_packs`` (the single
        source of truth, reached through the registered builder's
        ``coordinator_class``; both this check and ``app.map`` consult
        it) — farm, dynamic-farm and pipeline route whole packs per
        worker through the compiled batched entry; heartbeat (an
        iteration loop over a shared grid) genuinely cannot.
        """
        return self._strategy_flag("routes_packs")

    @property
    def oneway_routable(self) -> bool:
        """Can this spec's strategy serve fire-and-forget work at all?

        Stricter than :attr:`pack_routable`: a oneway call produces no
        replies, so the strategy must neither gather per-piece results
        nor forward between workers.  Farm and dynamic-farm packs are
        pure scatter (``oneway_packs`` on their aspect classes); the
        pipeline routes packs but *needs* every hop's reply to forward,
        so it is pack-routable yet not oneway-capable.
        """
        return self._strategy_flag("oneway_packs")

    def _strategy_flag(self, flag: str) -> bool:
        if self.strategy == "none":
            return True
        _ensure_builtin_registrations()
        builder = STRATEGIES.get(self.strategy)
        # single source of truth: the flags live on the strategy's
        # coordinator aspect class (exposed by the builder); a builder
        # without the pointer may carry the flag directly
        owner = getattr(builder, "coordinator_class", builder)
        return bool(getattr(owner, flag, False))

    def _oneway_covers_work(self) -> bool:
        """Does the ``oneway`` declaration touch the partition's work
        call?  Auxiliary fire-and-forget methods (a ``notify`` beside a
        reply-bearing work call) are the strategy's business only when
        the work call itself goes oneway.  With a work pattern no method
        name can be derived from, assume coverage (conservative)."""
        try:
            work = self.resolved_work_method
        except DeploymentError:
            return True
        return work in self.oneway

    @property
    def resolved_work_method(self) -> str:
        """The concrete method name submissions dispatch to."""
        if self.work_method is not None:
            return self.work_method
        if _IDENT_RE.match(self.work):
            return self.work
        match = _METHOD_RE.search(self.work)
        if match and "*" not in match.group(1):
            return match.group(1)
        raise DeploymentError(
            f"cannot derive a method name from work pointcut {self.work!r}; "
            f"set StackSpec.work_method explicitly"
        )

    def _expand(self, text: str, designator: str, signature: str) -> str:
        if _IDENT_RE.match(text):
            inner = signature.format(target=self.target.__name__, name=text)
            return f"{designator}({inner})"
        return text

    # -- validation ---------------------------------------------------------

    def validate(self) -> "StackSpec":
        """Eager validation with rich errors; returns self for chaining.

        Resolves every registry name (raising
        :class:`~repro.api.registry.UnknownNameError` with the catalogue
        and a typo suggestion), and checks the cross-field rules the
        assembly step would otherwise fail on obscurely.
        """
        _ensure_builtin_registrations()
        if not isinstance(self.target, type):
            raise DeploymentError(
                f"StackSpec.target must be a class, got {self.target!r}"
            )
        if not self.work:
            raise DeploymentError(
                f"StackSpec for {self.target.__name__} needs a work pointcut "
                f"(a method name like 'filter' or a call(..) expression)"
            )
        builder = STRATEGIES.get(self.strategy)  # raises UnknownNameError
        MIDDLEWARES.get(self.middleware)
        if isinstance(self.backend, str):
            BACKENDS.get(self.backend)
        needs_splitter = getattr(builder, "requires_splitter", True)
        if self.strategy != "none" and needs_splitter and self.splitter is None:
            raise DeploymentError(
                f"strategy {self.strategy!r} needs a splitter "
                f"(a WorkSplitter describing duplication and call split); "
                f"use strategy='none' for a partition-less stack"
            )
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise DeploymentError(
                f"max_in_flight must be >= 1 (or None for unbounded), "
                f"got {self.max_in_flight!r}"
            )
        if self.overflow not in OVERFLOW_POLICIES:
            raise DeploymentError(
                f"unknown overflow policy {self.overflow!r}; choose from "
                f"{', '.join(repr(p) for p in OVERFLOW_POLICIES)}"
            )
        if self.timeout is not None and not self.timeout > 0:
            raise DeploymentError(
                f"timeout must be a positive number of seconds "
                f"(or None for no deadline), got {self.timeout!r}"
            )
        # duck-checks, not isinstance: the knobs accept any object with
        # the policy/schedule protocol (test doubles included)
        if self.retry is not None and not (
            hasattr(self.retry, "max_attempts") and hasattr(self.retry, "retryable")
        ):
            raise DeploymentError(
                f"StackSpec.retry must be a RetryPolicy-like object "
                f"(max_attempts + retryable(exc)), got {self.retry!r}"
            )
        if self.faults is not None and not hasattr(self.faults, "fire"):
            raise DeploymentError(
                f"StackSpec.faults must be a FaultSchedule-like object "
                f"(with a fire(site, index) method), got {self.faults!r}"
            )
        # the tenant plane is all-or-nothing: a tenant name without a
        # scheduler has nothing to acquire from, a scheduler without a
        # tenant name has no quota to charge
        if (self.tenant is None) != (self.scheduler is None):
            raise DeploymentError(
                "StackSpec.tenant and StackSpec.scheduler come together: "
                f"got tenant={self.tenant!r}, scheduler={self.scheduler!r}"
            )
        if self.tenant is not None and not isinstance(self.tenant, str):
            raise DeploymentError(
                f"StackSpec.tenant must be a tenant name (str), "
                f"got {self.tenant!r}"
            )
        if self.scheduler is not None and not (
            hasattr(self.scheduler, "acquire")
            and hasattr(self.scheduler, "ensure_tenant")
        ):
            raise DeploymentError(
                f"StackSpec.scheduler must be a ClusterScheduler-like "
                f"object (acquire + ensure_tenant), got {self.scheduler!r}"
            )
        # the process-stack cross-checks run first: "rmi over the process
        # backend" should say THAT, not fall into the generic cluster rule
        self._validate_process_rules()
        self._validate_asyncio_rules()
        if self.middleware != "none" and self.cluster is None:
            bundle = MIDDLEWARES.get(self.middleware)
            if getattr(bundle, "requires_cluster", True):
                raise DeploymentError(
                    f"middleware {self.middleware!r} needs a cluster "
                    f"(e.g. repro.cluster.paper_testbed(Simulator()))"
                )
        if self.oneway and self.middleware == "none" and not self._is_asyncio():
            # fire-and-forget is a transport property — EXCEPT on the
            # asyncio backend, where the event loop is the transport:
            # a oneway call there is an unawaited loop task, dropped by
            # the backend without any middleware in the stack
            raise DeploymentError(
                "oneway methods need a distribution middleware "
                "(fire-and-forget is a transport property); "
                f"declared oneway={self.oneway!r} with middleware='none' "
                "(backend='asyncio' is the exception: its loop tasks can "
                "be detached natively)"
            )
        if (
            self.oneway
            and not self.oneway_routable
            and self._oneway_covers_work()
        ):
            # cross-field rule matching the map(pack=...) capabilities: a
            # strategy whose work call must gather replies (heartbeat,
            # divide-conquer) or forward them between workers (pipeline)
            # has no fire-and-forget story for that call — oneway never
            # produces the replies those strategies depend on.  Oneway
            # declarations on auxiliary (non-work) methods stay legal.
            raise DeploymentError(
                f"strategy {self.strategy!r} cannot serve its work call "
                f"oneway: the call depends on per-piece replies, which "
                f"fire-and-forget never produces (declared "
                f"oneway={list(self.oneway)}); use farm/dynamic-farm or "
                f"a partition-less spec"
            )
        # NOTE: resolved_work_method is deliberately NOT forced here — a
        # wildcard work pattern is deployable, it just cannot back
        # submit(), which raises its own targeted error on first use.
        return self

    def _validate_process_rules(self) -> None:
        """Cross-checks for the real out-of-process stack.

        The process backend/middleware run actual OS worker processes, so
        every *simulation-only* knob (cluster topologies, placement
        policies — both describe virtual nodes) is a contradiction worth
        failing on eagerly, as is mixing the process middleware with a
        backend that cannot host its workers.
        """
        backend_name = self.backend if isinstance(self.backend, str) else getattr(
            self.backend, "name", None
        )
        uses_process = self.middleware == "process" or backend_name == "process"
        if not uses_process:
            return
        if self.cluster is not None:
            raise DeploymentError(
                "the process stack runs real OS worker processes and "
                "cannot attach to a simulated cluster; drop cluster= or "
                "use backend='sim' with middleware 'rmi'/'mpp'"
            )
        if self.placement is not None:
            raise DeploymentError(
                "placement policies choose simulated nodes; the process "
                "stack places one resident worker process per servant "
                "(the OS schedules them) — drop placement="
            )
        if self.middleware == "process" and backend_name not in (None, "process"):
            raise DeploymentError(
                f"middleware 'process' needs backend='process' (or "
                f"backend=None for auto-resolution), got "
                f"backend={backend_name!r}"
            )
        if backend_name == "process" and self.middleware not in ("none", "process"):
            raise DeploymentError(
                f"backend 'process' pairs only with middleware 'process' "
                f"(auto-promoted from 'none'); middleware "
                f"{self.middleware!r} is a simulated transport"
            )

    def _backend_name(self) -> str | None:
        """The backend's registry name, whether given as a string or an
        instance (``None`` for auto-resolution)."""
        if isinstance(self.backend, str):
            return self.backend
        return getattr(self.backend, "name", None)

    def _is_asyncio(self) -> bool:
        return self._backend_name() == "asyncio"

    def _validate_asyncio_rules(self) -> None:
        """Cross-checks for the event-loop stack.

        The asyncio backend runs one real event loop in-process:
        simulation-only knobs (clusters, placement — both describe
        virtual nodes) and message-passing middlewares (whose reply
        waits would park loop-side activities on thread events) are
        contradictions worth failing on eagerly.
        """
        if not self._is_asyncio():
            return
        if self.cluster is not None:
            raise DeploymentError(
                "the asyncio backend runs a real event loop and cannot "
                "attach to a simulated cluster; drop cluster= or use "
                "backend='sim' with middleware 'rmi'/'mpp'"
            )
        if self.placement is not None:
            raise DeploymentError(
                "placement policies choose simulated nodes; the asyncio "
                "backend hosts every servant coroutine on its one event "
                "loop — drop placement="
            )
        if self.middleware != "none":
            raise DeploymentError(
                f"backend 'asyncio' pairs only with middleware 'none' "
                f"(the event loop IS the transport); middleware "
                f"{self.middleware!r} would marshal coroutines across a "
                f"boundary they cannot cross"
            )

    # -- convenience --------------------------------------------------------

    def with_(self, **changes: Any) -> "StackSpec":
        """A copy of this spec with ``changes`` applied (sweep helper)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human summary of the spec."""
        backend = (
            self.backend
            if isinstance(self.backend, str)
            else ("auto" if self.backend is None else type(self.backend).__name__)
        )
        return (
            f"StackSpec({self.target.__name__}: strategy={self.strategy}, "
            f"middleware={self.middleware}, backend={backend}, "
            f"concurrency={self.concurrency}, oneway={list(self.oneway)})"
        )
