"""`ParallelApp`: assemble, deploy, and drive a stack — futures first.

Where :class:`~repro.api.spec.StackSpec` *describes* a stack, a
:class:`ParallelApp` *is* one: it resolves the spec's registry names
into modules, assembles the :class:`~repro.parallel.composition.Composition`,
resolves the execution backend, and exposes a submission API built on
:mod:`repro.runtime.futures`:

* :meth:`ParallelApp.start` constructs the woven target (running the
  duplication advice) inside the app's execution context;
* :meth:`ParallelApp.submit` dispatches one work call and returns a
  :class:`~repro.runtime.futures.Future` immediately;
* :meth:`ParallelApp.map` dispatches many payloads — per item, or as
  *packs* through the compiled batched entry point
  (:func:`repro.aop.plan.batched_entry`): one advice pass and, under
  distribution, one message per pack.  Packs to methods declared
  ``oneway`` in the spec are fire-and-forget — the middleware sends one
  message and never waits for a reply.

On the simulation backend, calls made from *outside* the simulator are
transparently wrapped in a simulated process and driven to completion
(the returned future is already resolved); calls made from *inside* a
simulated process spawn sibling activities and return genuinely pending
futures.  On the thread backend every submission is a spawned thread.
The same application code therefore runs functionally and on the
simulated cluster — the paper's pluggable-platform claim, applied to the
API itself.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.aop.plan import batched_entry
from repro.aop.weaver import Weaver, default_weaver
from repro.api.registry import BACKENDS, MIDDLEWARES, STRATEGIES
from repro.api.spec import StackSpec
from repro.errors import (
    AdmissionError,
    DeadlineExceeded,
    DeploymentError,
    FutureError,
)
from repro.faults.schedule import install_faults, remove_faults
from repro.middleware.context import use_node
from repro.parallel.composition import Composition, ParallelModule
from repro.parallel.concern import Concern
from repro.parallel.concurrency import concurrency_module
from repro.parallel.partition.base import CallPiece
from repro.runtime.admission import AdmissionController, Deadline, use_envelope
from repro.runtime.backend import ExecutionBackend, use_backend
from repro.runtime.futures import Future, FutureGroup
from repro.runtime.simbackend import SimBackend
from repro.sim import current_process

__all__ = ["ParallelApp", "AppBuilder"]


class ParallelApp:
    """One assembled, deployable, submittable parallel application."""

    def __init__(self, spec: StackSpec):
        spec.validate()
        self.spec = spec
        self.weaver: Weaver = spec.weaver if spec.weaver is not None else default_weaver
        self.instance: Any = None
        self.partition: Any = None
        self.async_aspect: Any = None
        self.distribution: Any = None
        self.middleware: Any = None
        self.extra_middleware: Any = None
        self.modules: dict[str, ParallelModule] = {}
        creation = spec.creation_pointcut
        work = spec.work_pointcut
        name = spec.name if spec.name is not None else f"{spec.strategy}+{spec.middleware}"
        self.composition = Composition(name)

        # -- partition -----------------------------------------------------
        builder = STRATEGIES.get(spec.strategy)
        module = builder(spec.splitter, creation, work, **spec.strategy_options)
        if module is not None:
            self._plug(module)
            self.partition = getattr(module, "coordinator", None)

        # -- concurrency (unless merged into the partition module) ---------
        merged = module is not None and getattr(module, "provides_concurrency", False)
        if spec.concurrency and not merged:
            conc = concurrency_module(work, work)
            self._plug(conc)
            self.async_aspect = conc.async_aspect  # type: ignore[attr-defined]

        # -- execution backend (before distribution: the process bundle
        # parks its workers on the app's backend, and backend='process'
        # auto-promotes middleware 'none' → 'process') -----------------
        self.backend = self._resolve_backend(spec)

        # -- distribution --------------------------------------------------
        middleware_name = spec.middleware
        if (
            middleware_name == "none"
            and getattr(self.backend, "name", "") == "process"
        ):
            # backend='process' without a middleware is inert (servants
            # would never leave the parent); the promotion is what makes
            # the one-knob spec change deliver out-of-process execution
            middleware_name = "process"
        bundle = MIDDLEWARES.get(middleware_name)
        bundle_kwargs = dict(spec.middleware_options)
        if getattr(bundle, "wants_backend", False):
            bundle_kwargs.setdefault("backend", self.backend)
        self.middleware, self.extra_middleware, dist_module = bundle(
            spec.cluster,
            creation,
            work,
            placement=spec.placement,
            oneway=spec.oneway,
            **bundle_kwargs,
        )
        if dist_module is not None:
            self._plug(dist_module)
            self.distribution = getattr(dist_module, "aspect", None)

        # -- instrumentation + optimisations -------------------------------
        if spec.cost is not None:
            self._plug(
                ParallelModule("cost-model", Concern.INSTRUMENTATION, [spec.cost])
            )
        for index, extra in enumerate(spec.optimisations):
            if isinstance(extra, ParallelModule):
                self._plug(extra)
            else:  # a bare aspect: wrap it as its own module
                concern = getattr(extra, "concern", Concern.OPTIMISATION)
                self._plug(
                    ParallelModule(f"optimisation-{index}", concern, [extra])
                )

        #: the simulator driving a sim-backend app (None on threads)
        self.sim = getattr(self.backend, "sim", None)
        #: bounded admission table — submit()/map() acquire a slot per
        #: call and the spec's overflow policy applies beyond
        #: max_in_flight (an unbounded table still tracks slots for
        #: observability when max_in_flight is None)
        self.admission = AdmissionController(
            limit=spec.max_in_flight,
            policy=spec.overflow,
            backend=self.backend,
            name=self.composition.name,
        )
        #: the cluster-level tenant plane (spec.tenant/spec.scheduler):
        #: when installed, every submission unit acquires a TenantGrant
        #: before its admission slot; the tenant must already be
        #: registered, so typos fail at construction time
        self.scheduler = spec.scheduler
        self.tenant = spec.tenant
        if self.scheduler is not None:
            self.scheduler.ensure_tenant(self.tenant)
        self._submissions = 0
        #: the spec's fault schedule while installed on the fault plane
        #: (deploy installs it, undeploy removes it)
        self._faults_active: Any = None

    @staticmethod
    def _resolve_backend(spec: StackSpec) -> ExecutionBackend:
        backend = spec.backend
        if backend is None:
            if spec.middleware == "process":
                backend = "process"
            else:
                backend = "sim" if spec.cluster is not None else "thread"
        if isinstance(backend, str):
            return BACKENDS.get(backend)(cluster=spec.cluster)
        if not isinstance(backend, ExecutionBackend):
            raise DeploymentError(
                f"StackSpec.backend must be a registry name or an "
                f"ExecutionBackend, got {backend!r}"
            )
        return backend

    def _plug(self, module: ParallelModule) -> ParallelModule:
        self.composition.plug(module)
        self.modules[module.name] = module
        return module

    # -- lifecycle ----------------------------------------------------------

    def deploy(self) -> "ParallelApp":
        """Weave the target and deploy every module.  A spec-level fault
        schedule goes live on the ambient fault plane here and comes
        down at :meth:`undeploy` — the deployment's lifetime IS the
        schedule's."""
        self.composition.deploy(self.weaver, targets=[self.spec.target])
        if self.spec.faults is not None and self._faults_active is None:
            self._faults_active = install_faults(self.spec.faults)
        return self

    def undeploy(self) -> None:
        """Undeploy every module (the target class stays woven)."""
        if self._faults_active is not None:
            remove_faults(self._faults_active)
            self._faults_active = None
        self.composition.undeploy()

    def shutdown(self) -> None:
        """Stop middleware server activities (end of run)."""
        for mw in (self.middleware, self.extra_middleware):
            if mw is not None:
                mw.shutdown()

    def __enter__(self) -> "ParallelApp":
        return self.deploy()

    def __exit__(self, *exc: Any) -> None:
        self.undeploy()
        self.shutdown()

    def describe(self) -> str:
        """Table-1-style description of the assembled composition."""
        return self.composition.describe()

    @property
    def in_flight(self) -> int:
        """Live per-call dispatch tickets on the partition coordinator —
        how many splits this deployed stack is serving right now."""
        return getattr(self.partition, "in_flight", 0)

    @property
    def peak_in_flight(self) -> int:
        """Most splits ever in flight at once on this deployed stack
        (the overlap high-water mark the stress tests assert on)."""
        return getattr(self.partition, "peak_in_flight", 0)

    # -- admission observability ---------------------------------------------

    @property
    def admitted(self) -> int:
        """Admission slots currently held (submissions between admit
        and their future resolving)."""
        return self.admission.admitted

    def stats(self) -> dict:
        """Read-only deployment snapshot: the admission table's
        :meth:`~repro.runtime.admission.AdmissionController.stats` plus
        the live split counters (and the tenant name when this app
        submits through a cluster scheduler)."""
        snapshot = self.admission.stats()
        snapshot["in_flight"] = self.in_flight
        snapshot["peak_in_flight"] = self.peak_in_flight
        if self.tenant is not None:
            snapshot["tenant"] = self.tenant
        return snapshot

    def plan_stats(self) -> dict:
        """Compiler visibility for this app's weaver: a read-only
        snapshot of :class:`~repro.aop.plan.PlanStats` — compile counts,
        the per-kind plan histograms (``kinds`` / ``batch_kinds``), and
        the runtime ``interpreter_calls`` fallback counter.  Benchmarks
        and users assert "no interpreter on this path" by checking that
        ``interpreter_calls`` does not move across a hot loop; only
        dynamic-residue chains (``within``/``args`` residues) increment
        it.
        """
        return self.weaver.plan_stats.summary()

    def trace(self, ticket_id: int) -> dict | None:
        """The span timeline of one dispatch ticket.

        ``ticket_id`` is a dispatch-context id — take it from
        ``future.admission.ticket_id`` after a submission dispatched, or
        from the ``trace`` attribute of a
        :class:`~repro.errors.DeadlineExceeded`.  Live tickets are
        snapshotted in place; retired ones come from the partition
        coordinator's bounded history.  Returns ``None`` for unknown or
        evicted ids (and always for partition-less specs, which open no
        tickets).
        """
        owner = self.partition
        if owner is None or not hasattr(owner, "trace_of"):
            return None
        return owner.trace_of(ticket_id)

    def traces(self) -> list[dict]:
        """Recent ticket timelines, oldest first: every live ticket plus
        the retired ones still in the bounded history."""
        owner = self.partition
        if owner is None or not hasattr(owner, "trace_history"):
            return []
        return owner.trace_history()

    # -- execution context ---------------------------------------------------

    def _contextualise(self, fn: Callable[[], Any]) -> Callable[[], Any]:
        """Wrap ``fn`` so it runs under this app's backend (and, when a
        cluster exists, placed on its head node)."""
        cluster = self.spec.cluster

        def body() -> Any:
            with use_backend(self.backend):
                if cluster is not None:
                    with use_node(cluster.head):
                        return fn()
                return fn()

        return body

    def _outside_simulation(self) -> bool:
        return isinstance(self.backend, SimBackend) and current_process() is None

    def execute(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn()`` inside the app's execution context and return its
        result — driving the simulator when called from outside it."""
        body = self._contextualise(fn)
        if self._outside_simulation():
            out: dict[str, Any] = {}

            def main() -> None:
                out["result"] = body()

            self.sim.spawn(main, name="api.execute")
            self.sim.run()
            return out["result"]
        return body()

    def _dispatch(self, perform: Callable[[], None], name: str) -> None:
        """Run ``perform`` asynchronously in context: a spawned activity
        inside a live execution, a driven simulation run from outside."""
        body = self._contextualise(perform)
        if self._outside_simulation():
            self.sim.spawn(body, name=name)
            self.sim.run()
            return
        self.backend.spawn(body, name=name)

    # -- submission ----------------------------------------------------------

    def start(self, *args: Any, **kwargs: Any) -> Any:
        """Construct the (woven) target instance — the client-visible
        object whose calls the stack intercepts.  Runs the duplication
        advice, so workers/stages exist afterwards."""
        target = self.spec.target

        def build() -> Any:
            return target(*args, **kwargs)

        self.instance = self.execute(build)
        return self.instance

    def _entry_instance(self) -> Any:
        if self.instance is None:
            raise DeploymentError(
                "no target instance yet — call app.start(*ctor_args) "
                "inside the deployed context first"
            )
        return self.instance

    def _check_oneway(self, oneway: bool) -> None:
        if oneway and self.spec.resolved_work_method not in self.spec.oneway:
            raise DeploymentError(
                f"method {self.spec.resolved_work_method!r} is not declared "
                f"oneway in the spec (oneway={list(self.spec.oneway)}); "
                f"fire-and-forget must be declared so the transport knows"
            )

    def _deadline(self, timeout: float | None) -> Deadline | None:
        """Build the call's deadline: the explicit ``timeout=`` wins,
        the spec's default applies otherwise, None means no deadline."""
        budget = timeout if timeout is not None else self.spec.timeout
        if budget is None:
            return None
        return Deadline(budget, clock=self.backend.now)

    def _admit(self, deadline: Deadline | None, name: str) -> Any:
        """Acquire the call's capacity: the cluster-level tenant grant
        first (when a scheduler is installed — quotas, fairness and the
        tenant's own overflow policy apply there), then the
        deployment's admission slot.  The grant rides the slot and is
        released with it; a deployment-level rejection refunds the
        grant before propagating, so cluster capacity never leaks."""
        grant = None
        if self.scheduler is not None:
            grant = self.scheduler.acquire(
                self.tenant, deadline=deadline, name=name
            )
        try:
            slot = self.admission.admit(
                deadline=deadline, name=name, retry=self.spec.retry
            )
        except BaseException:
            if grant is not None:
                grant.release()
            raise
        if grant is not None:
            slot.grant = grant
            grant.attach_slot(slot)
        return slot

    def submit(
        self,
        *args: Any,
        oneway: bool = False,
        timeout: float | None = None,
        **kwargs: Any,
    ) -> Future:
        """Dispatch one work call; returns a :class:`Future` immediately.

        The call enters the woven method (running the full advice chain:
        split, spawn, redirect...); nested futures produced by the
        concurrency aspect are transparently unwrapped.  With
        ``oneway=True`` (the method must be declared in
        ``spec.oneway``) the future resolves to ``None`` as soon as the
        send completes.

        Admission control: the call first acquires a slot in the app's
        bounded admission table.  Beyond ``spec.max_in_flight`` the
        spec's overflow policy applies — ``block`` parks THIS caller
        until a slot frees, ``fail`` raises
        :class:`~repro.errors.AdmissionRejected` here, ``shed-oldest``
        cancels the oldest in-flight call (its future raises
        :class:`~repro.errors.CallShed`).  ``timeout=`` (or the spec's
        default) arms a per-call deadline: expiry cancels the call's
        dispatch ticket at the next boundary, unwinds its collector, and
        the future raises :class:`~repro.errors.DeadlineExceeded`
        carrying the ticket's trace.  The admission slot rides on the
        returned future as ``future.admission`` (its ``ticket_id``
        resolves traces via :meth:`trace`).

        Like ``oneway``, the ``timeout`` keyword is reserved by the
        submission API and never forwarded to the work method — a work
        method with its own ``timeout`` parameter must receive it
        positionally (or via a payload tuple through :meth:`map`).
        """
        self._check_oneway(oneway)
        instance = self._entry_instance()
        method = self.spec.resolved_work_method
        deadline = self._deadline(timeout)
        # acquire before dispatching: this is where backpressure (block),
        # rejection (fail) and shedding happen — in the submitter
        slot = self._admit(deadline, name=f"submit.{method}")
        self._submissions += 1
        future = Future(
            name=f"submit.{method}.{self._submissions}", backend=self.backend
        )
        future.admission = slot  # type: ignore[attr-defined]
        # middleware-less oneway (asyncio only, per validation): no
        # transport drops the reply, so the backend detaches the
        # outcome itself — a fire-and-forget loop task
        native_oneway = oneway and self.spec.middleware == "none"

        def perform() -> None:
            self._run_admitted(
                slot,
                method,
                produce=lambda: getattr(instance, method)(*args, **kwargs),
                deliver=lambda result: (
                    None if future.resolved else future.set_result(result)
                ),
                fail=lambda exc: (
                    None if future.resolved else future.set_exception(exc)
                ),
                detach=native_oneway,
            )

        try:
            self._dispatch(perform, name=future.name)
        except BaseException:
            # the activity never started, so perform's release will
            # never run — give the capacity back before re-raising
            slot.release()
            raise
        return future

    def _run_admitted(
        self,
        slot: Any,
        method: str,
        produce: Callable[[], Any],
        deliver: Callable[[Any], None],
        fail: Callable[[Exception], None],
        detach: bool = False,
    ) -> None:
        """The admission lifecycle shared by every dispatched unit
        (single submits and whole packs): re-check the slot (it may
        have been shed while the activity waited to run), run the woven
        call under the slot's envelope, enforce the strict completion
        deadline, close the deliver-vs-cancel race atomically, and —
        crucially — release the slot *before* resolving the caller's
        future, so a submitter waking from ``result()`` never finds the
        finished call still counted against ``max_in_flight``.

        ``detach=True`` is the middleware-less oneway path: the produced
        outcome is handed to the backend fire-and-forget (an unawaited
        loop task on asyncio) and the caller's future resolves to
        ``None`` as soon as the send completed."""
        try:
            slot.check()
            with use_envelope(slot):
                result = produce()
                if detach:
                    self.backend.detach(result)
                    result = None
                else:
                    if isinstance(result, Future):
                        result = self._await_nested(result, slot.deadline)
                    # an async servant's coroutine (raw, or carried
                    # through a thread-spawned future untouched) runs to
                    # completion on the backend's loop here — a targeted
                    # error on backends without one
                    result = self.backend.finish(result)
            self._enforce_completion_deadline(slot, method)
            # atomic deliver-vs-cancel: a unit shed (or expired)
            # mid-flight must not deliver — its slot was already handed
            # to someone else — while a delivered one cannot be shed
            cancelled = slot.finish()
            if cancelled is not None:
                raise cancelled
            slot.release()  # free capacity before waking the waiter
            deliver(result)
        except Exception as exc:  # noqa: BLE001 - delivered via futures
            slot.release()  # likewise: capacity first, then the error
            fail(exc)
        finally:
            slot.release()  # idempotent backstop for exotic unwinds

    def _enforce_completion_deadline(self, slot: Any, method: str) -> None:
        """Deadlines are strict: a call whose result arrives after its
        budget drained fails with :class:`DeadlineExceeded` (carrying
        the ticket's trace when one opened) instead of delivering late —
        even when no cooperative boundary noticed the expiry in flight.
        """
        deadline = slot.deadline
        if deadline is None or not deadline.expired:
            return
        trace = (
            self.trace(slot.ticket_id) if slot.ticket_id is not None else None
        )
        raise DeadlineExceeded(
            f"submit.{method}: call completed after its deadline of "
            f"{deadline.budget}s drained",
            trace=trace,
        )

    @staticmethod
    def _await_nested(result: Future, deadline: Deadline | None) -> Any:
        """Unwrap a nested future, bounding the wait by the deadline
        (how partition-less specs honour ``timeout=``)."""
        if deadline is None:
            return result.result()
        try:
            return result.result(timeout=max(deadline.remaining(), 0.0))
        except FutureError:
            deadline.check("awaiting the call's result")
            raise

    def map(
        self,
        items: Iterable[Any],
        pack: bool | int = False,
        oneway: bool = False,
        timeout: float | None = None,
    ) -> FutureGroup:
        """Dispatch one work call per payload; returns a
        :class:`FutureGroup` of per-item futures in payload order.

        Each item is the work method's positional argument (pass tuples
        for multi-argument calls).  ``pack`` switches to *batched*
        submission: payloads are grouped (``True`` = one pack, an int =
        packs of that size) and each pack rides the compiled batched
        entry point — the advice chain runs once per pack around a
        :class:`~repro.aop.plan.BatchJoinPoint` and, under distribution,
        the whole pack is one message.  On partitioned specs the
        partition layer routes each whole pack at the top level
        (``routes_packs`` strategies: farm and dynamic-farm send a pack
        to one worker, the pipeline streams it through the stages) — one
        advice pass and one message per pack per worker.  Strategies
        whose work call cannot carry independent packs (heartbeat's
        iteration loop, divide-and-conquer's recursion) are rejected
        eagerly.  With ``oneway=True`` packs are sent fire-and-forget
        and every future resolves to ``None``.

        Admission control applies per submission unit: one slot per
        item unpacked, one slot per pack when packing — so a bounded
        ``max_in_flight`` backpressures (or rejects / sheds) a large
        ``map`` exactly like a burst of submits.  ``timeout=`` arms the
        same per-call deadline as :meth:`submit` on every unit.
        """
        payloads = [item if isinstance(item, tuple) else (item,) for item in items]
        if not pack:
            # each unit is admitted independently; a rejected unit
            # fails ITS OWN future instead of aborting the map — the
            # caller always gets the full group back, so handles to
            # already-dispatched in-flight work are never stranded
            group = FutureGroup()
            for index, payload in enumerate(payloads):
                try:
                    group.add(
                        self.submit(*payload, oneway=oneway, timeout=timeout)
                    )
                except AdmissionError as exc:
                    rejected = Future(
                        name=f"map.rejected.{index}", backend=self.backend
                    )
                    rejected.set_exception(exc)
                    group.add(rejected)
            return group
        if self.partition is not None and not self.spec.pack_routable:
            raise DeploymentError(
                f"pack submission is not routable on strategy "
                f"{self.spec.strategy!r}: its work call cannot carry "
                f"independent packs (only strategies that route whole "
                f"packs per worker — farm, dynamic-farm, pipeline — or "
                f"partition-less specs support map(pack=...)); use plain "
                f"map()/submit() or the CommunicationPackingAspect for "
                f"split-level packing"
            )
        self._check_oneway(oneway)
        instance = self._entry_instance()
        method = self.spec.resolved_work_method
        if not payloads:
            return FutureGroup()  # nothing to pack
        size = len(payloads) if pack is True else int(pack)
        if size < 1:
            raise DeploymentError(f"pack size must be >= 1, got {size}")
        group = FutureGroup()
        # futures must live on the app's backend (like submit's), not the
        # ambient one — a sim-process caller waiting on a thread-event
        # future would deadlock the simulation's only OS thread
        futures = [
            group.add(Future(name=f"map.{method}.{i}", backend=self.backend))
            for i in range(len(payloads))
        ]

        def perform_pack(start: int, pieces: list[CallPiece], slot: Any) -> None:
            def produce() -> Any:
                return batched_entry(instance, method, self.weaver)(pieces)

            def deliver(results: Any) -> None:
                if results is None:  # oneway pack: no reply at all
                    results = [None] * len(pieces)
                for offset, result in enumerate(results):
                    if not futures[start + offset].resolved:
                        futures[start + offset].set_result(result)

            def fail(exc: Exception) -> None:
                for offset in range(len(pieces)):
                    if not futures[start + offset].resolved:
                        futures[start + offset].set_exception(exc)

            self._run_admitted(
                slot,
                method,
                produce,
                deliver,
                fail,
                detach=oneway and self.spec.middleware == "none",
            )

        for start in range(0, len(payloads), size):
            chunk = payloads[start : start + size]
            pieces = [
                CallPiece(index, payload) for index, payload in enumerate(chunk)
            ]
            # one admission unit per pack: blocking/failing/shedding
            # happens HERE, in the mapping caller, pack by pack — a
            # rejected pack fails its own futures and the map goes on,
            # keeping every handle in the returned group reachable
            try:
                slot = self._admit(
                    self._deadline(timeout), name=f"map.pack.{method}"
                )
            except AdmissionError as exc:
                for offset in range(len(chunk)):
                    futures[start + offset].set_exception(exc)
                continue
            for offset in range(len(chunk)):
                futures[start + offset].admission = slot  # type: ignore[attr-defined]
            try:
                self._dispatch(
                    lambda s=start, p=pieces, a=slot: perform_pack(s, p, a),
                    name=f"map.pack.{method}.{start}",
                )
            except BaseException:
                slot.release()  # the pack activity never started
                raise
        return group

    def call(self, *args: Any, **kwargs: Any) -> Any:
        """Synchronous convenience: ``submit(...).result()``."""
        return self.submit(*args, **kwargs).result()

    # -- fluent construction --------------------------------------------------

    @classmethod
    def of(cls, target: type) -> "AppBuilder":
        """Start a fluent builder: ``ParallelApp.of(X).work("f").build()``."""
        return AppBuilder(target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ParallelApp {self.composition.name} target={self.spec.target.__name__}>"


class AppBuilder:
    """Fluent accumulator producing a validated :class:`ParallelApp`.

    Every setter returns the builder; :meth:`build` validates the
    accumulated spec eagerly and assembles the app::

        app = (ParallelApp.of(MandelbrotRenderer)
               .work("render")
               .splitter(mandelbrot_splitter(4, 12))
               .strategy("farm")
               .backend("thread")
               .build())
    """

    def __init__(self, target: type):
        self._fields: dict[str, Any] = {"target": target}

    def _set(self, **values: Any) -> "AppBuilder":
        self._fields.update(values)
        return self

    def work(self, pointcut: str, method: str | None = None) -> "AppBuilder":
        """Name the work joinpoints (bare method name or pointcut)."""
        return self._set(work=pointcut, work_method=method)

    def creation(self, pointcut: str) -> "AppBuilder":
        """Name the construction joinpoint to duplicate."""
        return self._set(creation=pointcut)

    def splitter(self, splitter: Any) -> "AppBuilder":
        """Attach the application-supplied WorkSplitter."""
        return self._set(splitter=splitter)

    def strategy(self, name: str, **options: Any) -> "AppBuilder":
        """Choose the partition strategy (plus builder options)."""
        return self._set(strategy=name, strategy_options=options)

    def concurrency(self, enabled: bool = True) -> "AppBuilder":
        """Toggle the asynchronous-invocation module."""
        return self._set(concurrency=enabled)

    def middleware(self, name: str, cluster: Any = None, **options: Any) -> "AppBuilder":
        """Choose the distribution middleware (plus its cluster)."""
        values: dict[str, Any] = {"middleware": name, "middleware_options": options}
        if cluster is not None:
            values["cluster"] = cluster
        return self._set(**values)

    def cluster(self, cluster: Any) -> "AppBuilder":
        """Attach the simulated cluster."""
        return self._set(cluster=cluster)

    def placement(self, policy: Any) -> "AppBuilder":
        """Choose the servant placement policy."""
        return self._set(placement=policy)

    def backend(self, backend: Any) -> "AppBuilder":
        """Choose the execution backend (registry name or instance)."""
        return self._set(backend=backend)

    def oneway(self, *methods: str) -> "AppBuilder":
        """Declare fire-and-forget methods."""
        return self._set(oneway=tuple(methods))

    def cost(self, aspect: Any) -> "AppBuilder":
        """Attach a cost-instrumentation aspect (simulated runs)."""
        return self._set(cost=aspect)

    def optimise(self, *extras: Any) -> "AppBuilder":
        """Plug optimisation modules/aspects (innermost, in order)."""
        existing = self._fields.get("optimisations", ())
        return self._set(optimisations=tuple(existing) + extras)

    def admission(
        self, max_in_flight: int, overflow: str = "block"
    ) -> "AppBuilder":
        """Bound in-flight submissions and pick the overflow policy."""
        return self._set(max_in_flight=max_in_flight, overflow=overflow)

    def timeout(self, seconds: float) -> "AppBuilder":
        """Set the spec-level default per-call deadline."""
        return self._set(timeout=seconds)

    def retry(self, policy: Any) -> "AppBuilder":
        """Attach the per-call piece retry policy (a RetryPolicy)."""
        return self._set(retry=policy)

    def tenant(self, name: str, scheduler: Any) -> "AppBuilder":
        """Submit as ``name`` through a shared ClusterScheduler."""
        return self._set(tenant=name, scheduler=scheduler)

    def faults(self, schedule: Any) -> "AppBuilder":
        """Install a fault-injection schedule for the deployment (tests)."""
        return self._set(faults=schedule)

    def named(self, name: str) -> "AppBuilder":
        """Set the composition's display name."""
        return self._set(name=name)

    def weaver(self, weaver: Any) -> "AppBuilder":
        """Use a non-default weaver (isolated tests)."""
        return self._set(weaver=weaver)

    def spec(self) -> StackSpec:
        """The accumulated (validated) StackSpec."""
        return StackSpec(**self._fields).validate()

    def build(self) -> ParallelApp:
        """Validate eagerly and assemble the ParallelApp."""
        return ParallelApp(self.spec())
