"""Open registries for strategies, middlewares, and execution backends.

The seed's front door hard-coded its catalogues as tuples
(``STRATEGIES``/``MIDDLEWARES`` in ``skeletons.py``), so adding a new
partition strategy meant editing the facade.  This module replaces the
tuples with three :class:`Registry` instances that any package — the
built-in modules or an application — can extend::

    from repro.api.registry import register_strategy

    @register_strategy("wavefront")
    def wavefront_module(splitter, creation, work, **options):
        ...
        return module

Registered entries:

* **strategies** — builders ``(splitter, creation, work, **options) ->
  ParallelModule`` (the partition modules register themselves on
  import);
* **middlewares** — builders ``(cluster, creation, work, placement=None,
  oneway=(), **options) -> (middleware, extra_middleware, module)``
  (the distribution modules register themselves; ``"none"`` is
  registered by :mod:`repro.api.spec`);
* **backends** — factories ``(cluster=None, sim=None) ->
  ExecutionBackend`` (the thread and sim backends register themselves).

Unknown names raise :class:`UnknownNameError`, a
:class:`~repro.errors.DeploymentError` that lists every registered name
and suggests the nearest match for a typo — the error a user actually
needs when they type ``strategy="frm"``.

This module deliberately imports nothing heavier than the error
hierarchy, so any layer (runtime backends, partition skeletons,
distribution aspects) can register itself without an import cycle.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Iterator

from repro.errors import DeploymentError

__all__ = [
    "UnknownNameError",
    "Registry",
    "STRATEGIES",
    "MIDDLEWARES",
    "BACKENDS",
    "register_strategy",
    "register_middleware",
    "register_backend",
]


class UnknownNameError(DeploymentError):
    """An unregistered name was requested from a :class:`Registry`.

    Carries the requested ``name``, the registry ``kind``, the tuple of
    ``known`` names, and the nearest-match ``suggestion`` (or ``None``)
    so tooling can render the hint however it likes; ``str(exc)``
    already includes all of it.
    """

    def __init__(self, kind: str, name: str, known: tuple[str, ...]):
        self.kind = kind
        self.name = name
        self.known = known
        matches = difflib.get_close_matches(name, known, n=1, cutoff=0.5)
        self.suggestion: str | None = matches[0] if matches else None
        message = f"unknown {kind} {name!r}; registered: {', '.join(known) or '(none)'}"
        if self.suggestion is not None:
            message += f" — did you mean {self.suggestion!r}?"
        super().__init__(message)


class Registry:
    """A named, openly extensible name → entry table."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, Any] = {}
        #: lazy loader for the built-in entries — cleared before it runs
        #: so a bootstrap that registers entries cannot recurse
        self._bootstrap: Callable[[], None] | None = None

    def ensure(self) -> None:
        """Run the pending bootstrap (if any) exactly once.

        Lookups and listings call this first so an
        :class:`UnknownNameError` always carries the FULL built-in
        catalogue — historically ``BACKENDS.get("typo")`` before any
        ``repro.runtime`` import reported "registered: (none)", which
        pointed users at a packaging problem instead of their typo.
        """
        bootstrap, self._bootstrap = self._bootstrap, None
        if bootstrap is not None:
            bootstrap()

    def register(
        self, name: str, entry: Any = None, *, replace: bool = False
    ) -> Any:
        """Register ``entry`` under ``name``.

        With ``entry`` omitted, returns a decorator — the
        ``@register_strategy("farm")`` form.  Re-registering an existing
        name requires ``replace=True`` (guards against accidental
        shadowing of a built-in).
        """
        if entry is None:
            def decorator(obj: Any) -> Any:
                self.register(name, obj, replace=replace)
                return obj

            return decorator
        if not replace and name in self._entries:
            raise DeploymentError(
                f"{self.kind} {name!r} is already registered "
                f"(pass replace=True to override)"
            )
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> Any:
        """Remove and return the entry under ``name``."""
        self.ensure()
        if name not in self._entries:
            raise UnknownNameError(self.kind, name, self.names())
        return self._entries.pop(name)

    def get(self, name: str) -> Any:
        """The entry under ``name``; raises :class:`UnknownNameError`
        (with the full catalogue and a nearest-match suggestion) when
        absent."""
        self.ensure()
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownNameError(self.kind, name, self.names()) from None

    def names(self) -> tuple[str, ...]:
        """Registered names, sorted."""
        self.ensure()
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        self.ensure()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Registry {self.kind}: {', '.join(self.names())}>"


#: partition-strategy builders, e.g. ``"farm"`` → :func:`farm_module`
STRATEGIES = Registry("strategy")
#: distribution bundles, e.g. ``"rmi"`` → RMI middleware + module builder
MIDDLEWARES = Registry("middleware")
#: execution-backend factories, e.g. ``"thread"`` → ThreadBackend
BACKENDS = Registry("backend")


def register_strategy(name: str, builder: Callable | None = None, **kw: Any) -> Any:
    """Register a partition-strategy builder (decorator form when
    ``builder`` is omitted)."""
    return STRATEGIES.register(name, builder, **kw)


def register_middleware(name: str, builder: Callable | None = None, **kw: Any) -> Any:
    """Register a distribution-middleware builder (decorator form when
    ``builder`` is omitted)."""
    return MIDDLEWARES.register(name, builder, **kw)


def register_backend(name: str, factory: Callable | None = None, **kw: Any) -> Any:
    """Register an execution-backend factory (decorator form when
    ``factory`` is omitted)."""
    return BACKENDS.register(name, factory, **kw)


def _builtin_bootstrap() -> None:
    """Import every package whose modules self-register built-ins.

    Installed as each registry's ``_bootstrap`` so the catalogues are
    complete from the first lookup, however the caller reached them.
    The imports are the same ones :func:`repro.api.spec.
    _ensure_builtin_registrations` performs on the facade path.
    """
    import repro.api.spec  # noqa: F401 - registers middleware "none"
    import repro.parallel  # noqa: F401 - strategies + distribution bundles
    import repro.runtime  # noqa: F401 - thread/sim/process backends


for _registry in (STRATEGIES, MIDDLEWARES, BACKENDS):
    _registry._bootstrap = _builtin_bootstrap
