"""`repro.api` — the declarative, futures-first application surface.

This package is the front door the paper's pitch deserves: one
:class:`~repro.api.spec.StackSpec` describes a complete parallelisation
stack (target, pointcuts, splitter, strategy, middleware, backend,
optimisations), a :class:`~repro.api.app.ParallelApp` assembles and
deploys it, and :meth:`~repro.api.app.ParallelApp.submit` /
:meth:`~repro.api.app.ParallelApp.map` hand back futures on whichever
execution backend the spec names::

    from repro.api import ParallelApp, StackSpec

    app = ParallelApp(StackSpec(
        target=PrimeFilter,
        work="filter",
        splitter=workload.farm_splitter(8),
        strategy="farm",
    ))
    with app:
        app.start(2, workload.sqrt)
        future = app.submit(workload.candidates)
        primes = future.result()

Strategies, middlewares, and backends live in open registries
(:mod:`repro.api.registry`) — built-ins register themselves on import
and applications add their own with ``@register_strategy(...)`` et al.,
so new scenarios plug in without editing any facade.

Re-exports are resolved lazily (PEP 562): the partition / distribution /
runtime modules import :mod:`repro.api.registry` at class-definition
time to register themselves, and an eager ``__init__`` here would turn
that into an import cycle.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "Registry": "repro.api.registry",
    "UnknownNameError": "repro.api.registry",
    "STRATEGIES": "repro.api.registry",
    "MIDDLEWARES": "repro.api.registry",
    "BACKENDS": "repro.api.registry",
    "register_strategy": "repro.api.registry",
    "register_middleware": "repro.api.registry",
    "register_backend": "repro.api.registry",
    "StackSpec": "repro.api.spec",
    "ParallelApp": "repro.api.app",
    "AppBuilder": "repro.api.app",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    """Lazy re-export: resolve the named symbol from its home module."""
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    """Include the lazy re-exports in ``dir(repro.api)``."""
    return sorted(set(globals()) | set(_EXPORTS))
