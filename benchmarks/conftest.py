"""Benchmark-suite plumbing.

The paper-reproduction benches produce ASCII tables (the regenerated
figures).  pytest captures stdout, so benches register their reports
here and a terminal-summary hook prints them after the run — they appear
in ``bench_output.txt`` alongside pytest-benchmark's own tables.

Environment knobs:

* ``REPRO_BENCH_MAXIMUM`` — sieve scale (default 10_000_000, the paper's);
* ``REPRO_BENCH_PACKS``   — number of messages (default 50, the paper's).
"""

from __future__ import annotations

import os

_REPORTS: list[str] = []


def register_report(text: str) -> None:
    _REPORTS.append(text)


def bench_maximum() -> int:
    return int(os.environ.get("REPRO_BENCH_MAXIMUM", 10_000_000))


def bench_packs() -> int:
    return int(os.environ.get("REPRO_BENCH_PACKS", 50))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for report in _REPORTS:
        for line in report.splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
