"""Benchmark-suite plumbing.

The paper-reproduction benches produce ASCII tables (the regenerated
figures).  pytest captures stdout, so benches register their reports
here and a terminal-summary hook prints them after the run — they appear
in ``bench_output.txt`` alongside pytest-benchmark's own tables.

Machine-readable trajectory: after every run that collected
pytest-benchmark stats, the session hook appends a run record to
``benchmarks/BENCH_dispatch.json`` (per-bench mean/min/stddev plus
ratios against the plain-call baseline), so the dispatch-overhead
numbers can be compared across PRs instead of being re-eyeballed from
terminal tables.

Environment knobs:

* ``REPRO_BENCH_MAXIMUM`` — sieve scale (default 10_000_000, the paper's);
* ``REPRO_BENCH_PACKS``   — number of messages (default 50, the paper's);
* ``REPRO_BENCH_JSON``    — override the results-file path.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

_REPORTS: list[str] = []

#: how many historical runs to keep in the JSON trajectory
_KEEP_RUNS = 50


def register_report(text: str) -> None:
    _REPORTS.append(text)


def bench_maximum() -> int:
    return int(os.environ.get("REPRO_BENCH_MAXIMUM", 10_000_000))


def bench_packs() -> int:
    return int(os.environ.get("REPRO_BENCH_PACKS", 50))


def _results_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).parent / "BENCH_dispatch.json"


def _collect_benchmarks(config) -> dict[str, dict[str, float]]:
    session = getattr(config, "_benchmarksession", None)
    benchmarks = getattr(session, "benchmarks", None) or []
    collected: dict[str, dict[str, float]] = {}
    for bench in benchmarks:
        # only the dispatch bench belongs in the dispatch trajectory —
        # figure/sim benches collected in the same run are not comparable
        if "bench_aop_dispatch" not in getattr(bench, "fullname", ""):
            continue
        stats = getattr(bench, "stats", None)
        # pytest-benchmark >= 4 nests Stats inside Metadata.stats
        stats = getattr(stats, "stats", stats)
        if stats is None or not getattr(stats, "rounds", 0):
            continue
        collected[bench.name] = {
            "mean": stats.mean,
            "min": stats.min,
            "median": stats.median,
            "stddev": stats.stddev,
            "rounds": stats.rounds,
        }
    return collected


def _ratios_vs_plain(benches: dict[str, dict[str, float]]) -> dict[str, float]:
    plain = benches.get("test_plain_call")
    if not plain or not plain["mean"]:
        return {}
    return {
        name: round(stats["mean"] / plain["mean"], 3)
        for name, stats in benches.items()
        if name != "test_plain_call"
    }


def pytest_sessionfinish(session, exitstatus):
    benches = _collect_benchmarks(session.config)
    if not benches:
        return
    path = _results_path()
    try:
        history = json.loads(path.read_text()) if path.exists() else {}
    except (OSError, ValueError):
        history = {}
    runs = history.get("runs", [])
    runs.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "benchmarks": benches,
            "ratios_vs_plain_call": _ratios_vs_plain(benches),
        }
    )
    history["runs"] = runs[-_KEEP_RUNS:]
    try:
        path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    except OSError:  # read-only checkout: benches still report to terminal
        pass


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _collect_benchmarks(config):
        terminalreporter.write_sep("-", "dispatch trajectory")
        terminalreporter.write_line(
            f"benchmark stats appended to {_results_path()}"
        )
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for report in _REPORTS:
        for line in report.splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
