"""Benchmark-suite plumbing.

The paper-reproduction benches produce ASCII tables (the regenerated
figures).  pytest captures stdout, so benches register their reports
here and a terminal-summary hook prints them after the run — they appear
in ``bench_output.txt`` alongside pytest-benchmark's own tables.

Machine-readable trajectory: after every run that collected
pytest-benchmark stats, the session hook appends a run record to
``benchmarks/BENCH_dispatch.json`` (per-bench mean/min/stddev plus
ratios against the plain-call baseline), so the dispatch-overhead
numbers can be compared across PRs instead of being re-eyeballed from
terminal tables.

Environment knobs:

* ``REPRO_BENCH_MAXIMUM`` — sieve scale (default 10_000_000, the paper's);
* ``REPRO_BENCH_PACKS``   — number of messages (default 50, the paper's);
* ``REPRO_BENCH_JSON``    — override the results-file path.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

_REPORTS: list[str] = []

#: scenario-level scalars registered by benches (virtual-time p99s,
#: shed counts, ...) — merged into the trajectory as pseudo-benches
_METRICS: dict[str, float] = {}

#: how many historical runs to keep in the JSON trajectory
_KEEP_RUNS = 50


def register_report(text: str) -> None:
    _REPORTS.append(text)


def register_metric(name: str, value: float) -> None:
    """Record one scenario scalar for the trajectory JSON.

    The value lands in the run record shaped like a pytest-benchmark
    entry (``mean = median = min = value``, zero stddev, one round) so
    ``tools/check_bench_regression.py`` can gate metric pairs with the
    same machinery as timing pairs.  Scenario metrics measured on the
    sim's virtual clock are bit-stable across machines — a moved number
    is a behaviour change, not noise.
    """
    _METRICS[name] = float(value)


def _metric_entries() -> dict[str, dict[str, float]]:
    return {
        name: {
            "mean": value,
            "median": value,
            "min": value,
            "stddev": 0.0,
            "rounds": 1,
        }
        for name, value in _METRICS.items()
    }


def bench_maximum() -> int:
    return int(os.environ.get("REPRO_BENCH_MAXIMUM", 10_000_000))


def bench_packs() -> int:
    return int(os.environ.get("REPRO_BENCH_PACKS", 50))


def _results_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).parent / "BENCH_dispatch.json"


def _collect_benchmarks(config) -> dict[str, dict[str, float]]:
    session = getattr(config, "_benchmarksession", None)
    benchmarks = getattr(session, "benchmarks", None) or []
    collected: dict[str, dict[str, float]] = {}
    for bench in benchmarks:
        # only the dispatch bench belongs in the dispatch trajectory —
        # figure/sim benches collected in the same run are not comparable
        if "bench_aop_dispatch" not in getattr(bench, "fullname", ""):
            continue
        stats = getattr(bench, "stats", None)
        # pytest-benchmark >= 4 nests Stats inside Metadata.stats
        stats = getattr(stats, "stats", stats)
        if stats is None or not getattr(stats, "rounds", 0):
            continue
        collected[bench.name] = {
            "mean": stats.mean,
            "min": stats.min,
            "median": stats.median,
            "stddev": stats.stddev,
            "rounds": stats.rounds,
        }
    return collected


def _ratios_vs_plain(benches: dict[str, dict[str, float]]) -> dict[str, float]:
    plain = benches.get("test_plain_call")
    if not plain or not plain["mean"]:
        return {}
    return {
        name: round(stats["mean"] / plain["mean"], 3)
        for name, stats in benches.items()
        if name != "test_plain_call"
    }


def pytest_sessionfinish(session, exitstatus):
    benches = _collect_benchmarks(session.config)
    metrics = _metric_entries()
    if not benches and not metrics:
        return
    path = _results_path()
    try:
        history = json.loads(path.read_text()) if path.exists() else {}
    except (OSError, ValueError):
        history = {}
    runs = history.get("runs", [])
    runs.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            # ratios are computed over the timing benches only; the
            # scenario metrics ride along as pseudo-bench entries
            "benchmarks": {**benches, **metrics},
            "ratios_vs_plain_call": _ratios_vs_plain(benches),
        }
    )
    history["runs"] = runs[-_KEEP_RUNS:]
    try:
        path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    except OSError:  # read-only checkout: benches still report to terminal
        pass


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _collect_benchmarks(config) or _METRICS:
        terminalreporter.write_sep("-", "dispatch trajectory")
        terminalreporter.write_line(
            f"benchmark stats appended to {_results_path()}"
        )
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for report in _REPORTS:
        for line in report.splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
