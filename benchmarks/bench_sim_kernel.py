"""Experiment E6 — simulation-kernel throughput (substrate sanity).

Wall-clock cost of the DES primitives: raw timer events, process
hold/resume cycles, channel sends, and processor-sharing churn.  These
bound how large a simulated experiment stays practical.
"""

from __future__ import annotations

import pytest

from repro.sim import Channel, ProcessorSharingCPU, Simulator

pytestmark = pytest.mark.benchmark(max_time=0.5, min_rounds=3)


def test_timer_event_throughput(benchmark):
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1

        for i in range(5_000):
            sim.call_later(i * 1e-6, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 5_000


def test_process_hold_cycles(benchmark):
    def run():
        sim = Simulator()

        def proc():
            for _ in range(200):
                sim.hold(1e-6)

        for _ in range(5):
            sim.spawn(proc)
        sim.run()
        return sim.now

    benchmark(run)


def test_channel_messaging(benchmark):
    def run():
        sim = Simulator()
        ch = Channel(sim)
        n = 500

        def producer():
            for i in range(n):
                ch.send(i, delay=1e-6)

        def consumer():
            for _ in range(n):
                ch.recv()

        sim.spawn(consumer)
        sim.spawn(producer)
        sim.run()
        return ch.sent_count

    assert benchmark(run) == 500


def test_processor_sharing_churn(benchmark):
    def run():
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim, cores=2, ht_factor=1.3)

        def job(delay, work):
            sim.hold(delay)
            cpu.execute(work)

        for i in range(100):
            sim.spawn(lambda i=i: job(i * 0.001, 0.01 + 0.0001 * i))
        sim.run()
        return cpu.jobs_completed

    assert benchmark(run) == 100
