"""Experiment E5 — middleware cost ablation (why FarmMPP < FarmRMI).

Measures the *simulated* cost of one remote invocation over RMI vs MPP
for a range of payload sizes, reporting the per-call gap that produces
Figure 17's middleware ordering.  pytest-benchmark times the (fast)
harness; the table carries the simulated microseconds.
"""

from __future__ import annotations

import numpy as np
from conftest import register_report

from repro.bench.report import render_series
from repro.cluster import paper_testbed
from repro.middleware import MppMiddleware, RmiMiddleware, use_node
from repro.sim import Simulator

SIZES = (1_000, 10_000, 100_000, 800_000)  # bytes (payload)


class Sink:
    def take(self, blob):
        return len(blob)


def one_call_cost(make_middleware, size_bytes: int) -> float:
    sim = Simulator()
    cluster = paper_testbed(sim)
    middleware = make_middleware(cluster)
    payload = np.zeros(size_bytes // 8, dtype=np.int64)
    out = {}

    def main():
        ref = middleware.export(Sink(), cluster.node(1))
        with use_node(cluster.head):
            start = sim.now
            middleware.invoke(ref, "take", (payload,))
            out["cost"] = sim.now - start

    sim.spawn(main)
    sim.run()
    middleware.shutdown()
    sim.shutdown()
    return out["cost"]


def test_rmi_vs_mpp_per_call(benchmark):
    def sweep():
        series = {"RMI": [], "MPP": []}
        for size in SIZES:
            series["RMI"].append(one_call_cost(RmiMiddleware, size) * 1e3)
            series["MPP"].append(one_call_cost(MppMiddleware, size) * 1e3)
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = render_series(
        "E5 - simulated cost of one remote call (milliseconds)",
        "bytes",
        list(SIZES),
        series,
        unit="m",
    )
    register_report(report)
    # MPP must be cheaper at every size, increasingly so for big payloads
    for rmi_ms, mpp_ms in zip(series["RMI"], series["MPP"]):
        assert mpp_ms < rmi_ms
    gap_small = series["RMI"][0] - series["MPP"][0]
    gap_large = series["RMI"][-1] - series["MPP"][-1]
    assert gap_large > gap_small
