"""Experiment E7 — strategy-exchange and optimisation ablations.

The paper's Section 7 claims: exchanging one parallelisation strategy
for another is "just a matter of plugging or unplugging" modules, and
optimisations are modular.  This bench measures those exchanges on a
reduced sieve workload:

* partition exchange: pipeline vs farm vs dynamic farm (same middleware);
* middleware exchange: RMI vs MPP vs hybrid (same partition);
* communication packing: pack-coalescing factors 1/2/5 on PipeRMI,
  where per-message overhead dominates;
* thread pool: spawn-per-call vs pooled workers (FarmThreads).
"""

from __future__ import annotations

from conftest import register_report

from repro.aop.weaver import default_weaver
from repro.apps.primes import PrimeFilter, SieveWorkload, build_sieve_stack, sieve_cost_aspect
from repro.bench import PAPER_COST_MODEL, run_sieve
from repro.bench.report import render_checks, render_series
from repro.cluster import paper_testbed
from repro.middleware.context import use_node
from repro.parallel import CommunicationPackingAspect, Concern, ParallelModule, ThreadPoolAspect
from repro.runtime import Future, SimBackend, use_backend
from repro.sim import Simulator

MAXIMUM = 1_000_000
PACKS = 50
FILTERS = 7


def run_with_extra(combo, extra_module_factory=None):
    """Like harness.run_sieve but allowing an extra optimisation module."""
    sim = Simulator()
    cluster = paper_testbed(sim)
    workload = SieveWorkload(MAXIMUM, PACKS)
    cm = PAPER_COST_MODEL
    cost = sieve_cost_aspect(cm.ns_per_op, cm.aop_factor, cm.dispatch_cost)
    stack = build_sieve_stack(combo, workload, FILTERS, cluster=cluster, cost=cost)
    if extra_module_factory is not None:
        stack.composition.plug(extra_module_factory(stack))
    backend = SimBackend(sim)
    out = {}

    def main():
        with use_backend(backend), use_node(cluster.head):
            pf = PrimeFilter(2, workload.sqrt)
            result = pf.filter(workload.candidates)
            if isinstance(result, Future):
                result = result.result()
            out["n"] = len(result)
            out["t"] = sim.now

    try:
        with stack.composition.deployed(default_weaver, targets=[PrimeFilter]):
            sim.spawn(main, name="main")
            sim.run()
    finally:
        stack.shutdown()
        sim.shutdown()
        default_weaver.reset()
    return out["t"], out["n"]


def test_partition_and_middleware_exchange(benchmark):
    def sweep():
        combos = ["PipeRMI", "FarmRMI", "FarmDRMI", "FarmMPP", "PipeMPP", "FarmHybrid"]
        times = {}
        for combo in combos:
            result = run_sieve(combo, FILTERS, maximum=MAXIMUM, packs=PACKS)
            assert result.correct
            times[combo] = result.sim_time
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    checks = [
        ("farm beats pipeline under RMI", times["FarmRMI"] < times["PipeRMI"]),
        ("farm beats pipeline under MPP", times["FarmMPP"] < times["PipeMPP"]),
        ("MPP beats RMI for the farm", times["FarmMPP"] < times["FarmRMI"]),
        (
            "hybrid (data over MPP) between pure RMI and pure MPP",
            times["FarmMPP"] * 0.95
            <= times["FarmHybrid"]
            <= times["FarmRMI"] * 1.05,
        ),
    ]
    report = render_series(
        f"E7a - strategy exchange (sieve max={MAXIMUM:,}, {FILTERS} filters)",
        "filters",
        [FILTERS],
        {combo: [t] for combo, t in times.items()},
    ) + "\n" + render_checks("exchange checks", checks)
    register_report(report)
    assert all(ok for _, ok in checks), report


def test_communication_packing_factors(benchmark):
    def sweep():
        times = {}
        for factor in (1, 2, 5):
            def add_packing(stack, factor=factor):
                return ParallelModule(
                    f"packing-x{factor}",
                    Concern.OPTIMISATION,
                    [CommunicationPackingAspect(stack.partition, factor)],
                )

            extra = None if factor == 1 else add_packing
            t, n = run_with_extra("PipeRMI", extra)
            times[f"x{factor}"] = t
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = render_series(
        "E7b - communication packing on PipeRMI (message coalescing)",
        "filters",
        [FILTERS],
        {name: [t] for name, t in times.items()},
    )
    register_report(report)
    # At this scale the pipeline is per-message-overhead bound: packing
    # must help.
    assert times["x5"] < times["x1"]


def test_thread_pool_vs_spawn_per_call(benchmark):
    def sweep():
        def add_pool(stack):
            return ParallelModule(
                "thread-pool",
                Concern.OPTIMISATION,
                [ThreadPoolAspect(stack.async_aspect, size=8)],
            )

        spawn_t, n1 = run_with_extra("FarmThreads", None)
        pool_t, n2 = run_with_extra("FarmThreads", add_pool)
        assert n1 == n2
        return {"spawn-per-call": spawn_t, "pool-8": pool_t}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = render_series(
        "E7c - thread pool optimisation (FarmThreads)",
        "filters",
        [FILTERS],
        {name: [t] for name, t in times.items()},
    )
    register_report(report)
    # Spawning is free in simulated time; the pool bounds concurrency, so
    # times stay within a small factor — the point is pluggability.
    assert times["pool-8"] <= times["spawn-per-call"] * 1.5
