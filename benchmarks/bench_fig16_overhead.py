"""Experiment E1 — Figure 16: performance of Java versus AspectJ.

Hand-coded RMI pipeline sieve vs the woven PipeRMI stack across the
paper's filter counts on the simulated 7-node testbed.  The measured
quantity is *simulated* execution time; pytest-benchmark records the
harness wall time (one round — the simulation is deterministic, repeats
are identical by construction).
"""

from __future__ import annotations

from conftest import bench_maximum, bench_packs, register_report

from repro.bench import FILTER_COUNTS, fig16


def test_fig16_java_vs_aspectj(benchmark):
    result = benchmark.pedantic(
        lambda: fig16(
            filters=FILTER_COUNTS,
            maximum=bench_maximum(),
            packs=bench_packs(),
        ),
        rounds=1,
        iterations=1,
    )
    register_report(result.report)
    benchmark.extra_info["aspectj_series"] = result.series["AspectJ"]
    benchmark.extra_info["java_series"] = result.series["Java"]
    overhead = [
        (aj - java) / java
        for aj, java in zip(result.series["AspectJ"], result.series["Java"])
    ]
    benchmark.extra_info["max_overhead"] = max(overhead)
    assert result.passed, result.report
