"""Committed multi-tenant overload scenario (virtual time, seeded).

Three tenants with asymmetric weights share one cluster slot table
while an open-loop, Zipf-skewed million-user population offers 10x the
cluster's throughput.  Everything runs on the simulator, so minutes of
cluster time replay in seconds of wall time and every number below is
bit-stable — the trajectory metrics these scenarios register are gated
by ``tools/bench_gates.json`` exactly like the timing pairs:

* ``tenancy_p99_overload`` / ``tenancy_p99_light`` — the completed-
  request p99 under 10x overload vs the same cluster at half load (the
  price of saturation, bounded by the admission deadline);
* ``tenancy_shed_overload`` / ``tenancy_offered_overload`` — the
  shed-oldest scenario's cluster-wide shed rate.

The scenarios also assert the tenancy layer's two headline properties
inline: grant shares converge to the configured weights within 10%,
and a reserved high-priority tenant is never starved by a hot
low-priority neighbour.
"""

from __future__ import annotations

from conftest import register_metric, register_report

from repro.api import ParallelApp, StackSpec
from repro.runtime.simbackend import SimBackend
from repro.sim import Simulator, current_simulator
from repro.tenancy import ClusterScheduler
from repro.traffic import (
    PercentileRecorder,
    PoissonArrivals,
    TenantPopulation,
    TrafficGenerator,
    open_loop,
)

USERS = 1_000_000


class VirtualService:
    """Servant whose work is a pure virtual-time hold."""

    def __init__(self):
        pass

    def handle(self, user, cost):
        current_simulator().hold(cost)
        return user


def deploy_apps(backend, sched, tenants):
    apps = {}
    for name in tenants:
        app = ParallelApp(
            StackSpec(
                target=VirtualService,
                work="handle",
                strategy="none",
                concurrency=False,
                backend=backend,
                tenant=name,
                scheduler=sched,
                name=f"svc-{name}",
            )
        )
        app.deploy()
        app.start()
        apps[name] = app
    return apps


def tenant_table(title, report):
    rows = [
        f"{title}",
        f"{'tenant':<8} {'offered':>7} {'done':>5} {'shed':>5} "
        f"{'rej':>5} {'miss':>5} {'p50':>6} {'p95':>6} {'p99':>6}",
    ]
    for tenant in sorted(report):
        row = report[tenant]

        def fmt(value):
            return f"{value:6.2f}" if value is not None else "     -"

        rows.append(
            f"{tenant:<8} {row['offered']:>7} {row['completed']:>5} "
            f"{row['shed']:>5} {row['rejected']:>5} "
            f"{row['deadline_missed']:>5} {fmt(row['p50'])} "
            f"{fmt(row['p95'])} {fmt(row['p99'])}"
        )
    return "\n".join(rows)


def weighted_cluster(capacity, weights):
    sim = Simulator()
    backend = SimBackend(sim)
    sched = ClusterScheduler(capacity=capacity, backend=backend, name="bench")
    for name, weight in weights.items():
        sched.tenant(name, weight=weight, overflow="block")
    apps = deploy_apps(backend, sched, weights)
    return sim, sched, apps


WEIGHTS = {"gold": 5.0, "silver": 3.0, "bronze": 2.0}
BANDS = {"gold": 0.001, "silver": 0.05, "bronze": 0.949}


def run_weighted(rate, service, horizon, timeout):
    sim, sched, apps = weighted_cluster(10, WEIGHTS)
    generator = TrafficGenerator(
        PoissonArrivals(rate=rate, seed=42),
        TenantPopulation(BANDS, users=USERS, exponent=1.1),
        seed=43,
        service=lambda rng: service,
    )
    recorder = PercentileRecorder()
    report = open_loop(
        sim, generator, apps, recorder, timeout=timeout, horizon=horizon
    )
    return sched, recorder, report


def test_light_load_tail_latency():
    # same cluster at ~0.5x: 10 slots serving 0.2s calls = 50/s of
    # throughput, offered 25/s — the no-contention p99 baseline
    sched, recorder, report = run_weighted(
        rate=25.0, service=0.2, horizon=20.0, timeout=2.5
    )
    assert recorder.total("rejected") == 0, report
    assert recorder.total("completed") == recorder.total("offered")
    p99 = recorder.percentile(0.99)
    assert p99 is not None and p99 < 0.5
    register_metric("tenancy_p99_light", p99)
    register_report(tenant_table("tenancy: light load (0.5x)", report))


def test_overload_fairness_and_tail():
    # 10x overload: 10 slots x 1.0s service = 10/s of throughput,
    # offered 100/s with the Zipf mix (gold ~69% of traffic on 0.1% of
    # users).  Cluster grants must track the WEIGHTS, not the skew.
    sched, recorder, report = run_weighted(
        rate=100.0, service=1.0, horizon=8.0, timeout=2.5
    )
    tenants = sched.stats()["tenants"]
    granted = {name: tenants[name]["admitted_total"] for name in WEIGHTS}
    total = sum(granted.values())
    assert total > 80, report
    total_weight = sum(WEIGHTS.values())
    for name, weight in WEIGHTS.items():
        share = granted[name] / total
        expected = weight / total_weight
        assert abs(share - expected) <= 0.10 * expected, (name, granted)
    assert recorder.total("offered") > 5 * total  # overload was real
    p99 = recorder.percentile(0.99)
    assert p99 is not None
    register_metric("tenancy_p99_overload", p99)
    register_report(tenant_table("tenancy: 10x overload", report))


def test_overload_shedding_and_no_starvation():
    # "paid" reserves 1 of 4 slots (priority 5, cold: 0.5/s of 0.5s
    # calls); "free" (priority 0, hot, shed-oldest) floods the shared
    # slots at ~10x their throughput.  Paid must complete everything;
    # free pays for its own overload in sheds.
    sim = Simulator()
    backend = SimBackend(sim)
    sched = ClusterScheduler(capacity=4, backend=backend, name="bench-shed")
    sched.tenant("paid", weight=1.0, reserved=1, priority=5)
    sched.tenant("free", weight=10.0, priority=0, overflow="shed-oldest")
    apps = deploy_apps(backend, sched, ("paid", "free"))
    recorder = PercentileRecorder()

    def handle(arrival):
        recorder.offered(arrival.tenant)
        started = sim.now
        exc = None
        try:
            apps[arrival.tenant].submit(
                arrival.user, arrival.cost, timeout=2.5
            ).result()
        except Exception as caught:  # noqa: BLE001 - classified
            exc = caught
        recorder.observe(arrival.tenant, exc, sim.now - started)

    generators = [
        TrafficGenerator(
            PoissonArrivals(rate=0.5, seed=7),
            TenantPopulation({"paid": 1.0}, users=1_000),
            seed=8,
            service=lambda rng: 0.5,
        ),
        TrafficGenerator(
            PoissonArrivals(rate=30.0, seed=9),
            TenantPopulation({"free": 1.0}, users=USERS),
            seed=10,
            service=lambda rng: 1.0,
        ),
    ]
    for generator in generators:
        generator.run(sim, handle, horizon=10.0)
    sim.run()
    report = recorder.report()
    paid = report["paid"]
    assert paid["offered"] >= 3
    assert paid["completed"] == paid["offered"], report
    assert paid["shed"] == 0 and paid["deadline_missed"] == 0
    free = report["free"]
    assert free["offered"] > 200
    assert free["shed"] > 50, report
    assert sched.stats()["in_use"] == 0
    register_metric("tenancy_shed_overload", recorder.total("shed"))
    register_metric("tenancy_offered_overload", recorder.total("offered"))
    register_report(tenant_table("tenancy: shed-oldest overload", report))
