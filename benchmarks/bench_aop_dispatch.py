"""Experiment E4 — real (wall-clock) AOP dispatch overhead.

The simulated Figure 16 models AspectJ's overhead with calibrated
constants; this bench *measures* our own engine's interception costs
with pytest-benchmark, grounding the model:

* plain method call (unwoven class);
* woven-inert call (class instrumented, no advice deployed) — with
  compiled dispatch plans this must stay within 1.5× of the plain call;
* one around advice (the single-around fast path);
* a five-aspect stack (partition-like depth);
* re-plug churn: deploy/undeploy against many woven bystander classes,
  which exercises the targeted plan invalidation (only matching shadows
  recompile).

Results are also appended to ``benchmarks/BENCH_dispatch.json`` by the
conftest hook so the trajectory is tracked across PRs.
"""

from __future__ import annotations

import pytest

from repro.aop import (
    Aspect,
    around,
    deploy,
    undeploy,
    undeploy_all,
    unweave_all,
    weave,
)

# bound calibration so the whole suite stays fast; dispatch costs are
# microseconds, 0.5 s of samples is plenty
pytestmark = pytest.mark.benchmark(max_time=0.5, min_rounds=5)

N = 1000


def make_target():
    class Target:
        def work(self, x):
            return x + 1

    return Target


def run_loop(obj):
    total = 0
    for i in range(N):
        total += obj.work(i)
    return total


@pytest.fixture(autouse=True)
def clean():
    undeploy_all()
    unweave_all()
    yield
    undeploy_all()
    unweave_all()


def test_plain_call(benchmark):
    Target = make_target()
    obj = Target()
    assert benchmark(lambda: run_loop(obj)) == N * (N - 1) // 2 + N


def test_woven_inert_call(benchmark):
    Target = make_target()
    weave(Target)
    obj = Target()
    assert benchmark(lambda: run_loop(obj)) == N * (N - 1) // 2 + N


def test_one_around_advice(benchmark):
    Target = make_target()

    class Pass(Aspect):
        @around("call(Target.work(..))")
        def passthrough(self, jp):
            return jp.proceed()

    weave(Target)
    deploy(Pass())
    obj = Target()
    assert benchmark(lambda: run_loop(obj)) == N * (N - 1) // 2 + N


def test_five_aspect_stack(benchmark):
    Target = make_target()

    def make_aspect(level):
        class Pass(Aspect):
            precedence = level

            @around("call(Target.work(..))")
            def passthrough(self, jp):
                return jp.proceed()

        return Pass()

    weave(Target)
    for level in range(5):
        deploy(make_aspect(level))
    obj = Target()
    assert benchmark(lambda: run_loop(obj)) == N * (N - 1) // 2 + N


def test_replug_with_woven_bystanders(benchmark):
    """Deploy+undeploy one narrowly-scoped aspect while 20 other woven
    classes stand by: the static match index must keep re-plug cost
    independent of how much unrelated code is woven."""
    Target = make_target()
    weave(Target)
    bystanders = []
    for i in range(20):
        cls = type(f"Bystander{i}", (), {"run": lambda self, x: x})
        weave(cls)
        bystanders.append(cls)

    class Pass(Aspect):
        @around("call(Target.work(..))")
        def passthrough(self, jp):
            return jp.proceed()

    def replug():
        aspect = deploy(Pass())
        undeploy(aspect)

    benchmark(replug)


def test_initialization_interception(benchmark):
    Target = make_target()

    class Tag(Aspect):
        @around("initialization(Target.new(..))")
        def tag(self, jp):
            return jp.proceed()

    weave(Target)
    deploy(Tag())

    def build():
        for _ in range(100):
            Target()

    benchmark(build)
