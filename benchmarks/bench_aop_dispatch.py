"""Experiment E4 — real (wall-clock) AOP dispatch overhead.

The simulated Figure 16 models AspectJ's overhead with calibrated
constants; this bench *measures* our own engine's interception costs
with pytest-benchmark, grounding the model:

* plain method call (unwoven class);
* woven-inert call (class instrumented, no advice deployed) — with
  compiled dispatch plans this must stay within 1.5× of the plain call;
* one around advice (the single-around fast path);
* a five-aspect stack (partition-like depth);
* a mixed-kind five-advice chain (before/after/after_returning alongside
  arounds) — compiled vs the generic interpreter the seed used, which
  must be ≥ 1.5× slower than the compiled mixed plan;
* batched dispatch: an 8-piece pack through the compiled batched entry
  (one BatchJoinPoint per pack) vs 8 per-item calls — plus an invariant
  check that a farm with packing factor 8 allocates exactly one
  joinpoint per pack;
* re-plug churn: deploy/undeploy against many woven bystander classes,
  which exercises the targeted plan invalidation (only matching shadows
  recompile);
* the ParallelApp submit path: an 8-item pack through ``app.map`` over
  simulated MPP, fire-and-forget (``oneway`` — one message per pack, no
  reply wait, asserted as an invariant) vs the same pack with a reply
  round-trip;
* the overlapped-submit pair: 4 submissions through one deployed
  thread-backend pipeline, overlapped (per-call dispatch contexts —
  ``peak_in_flight >= 2`` asserted as an invariant) vs strictly serial
  — the pair CI gates with ``tools/check_bench_regression.py``;
* pack-aware partition routing: ``app.map(pack=4)`` on a farm over
  simulated MPP (each whole pack one message to one worker, asserted)
  vs the same payload submitted item by item.

Results are also appended to ``benchmarks/BENCH_dispatch.json`` by the
conftest hook so the trajectory is tracked across PRs.
"""

from __future__ import annotations

import pytest

import repro.aop.plan as plan_mod
from repro.aop import (
    Aspect,
    after,
    after_returning,
    around,
    batched_entry,
    before,
    deploy,
    undeploy,
    undeploy_all,
    unweave_all,
    weave,
)
from repro.aop.joinpoint import JoinPointKind
from repro.aop.weaver import default_weaver

# bound calibration so the whole suite stays fast; dispatch costs are
# microseconds, 0.5 s of samples is plenty
pytestmark = pytest.mark.benchmark(max_time=0.5, min_rounds=5)

N = 1000


def make_target():
    class Target:
        def work(self, x):
            return x + 1

    return Target


def run_loop(obj):
    total = 0
    for i in range(N):
        total += obj.work(i)
    return total


@pytest.fixture(autouse=True)
def clean():
    undeploy_all()
    unweave_all()
    yield
    undeploy_all()
    unweave_all()


def test_plain_call(benchmark):
    Target = make_target()
    obj = Target()
    assert benchmark(lambda: run_loop(obj)) == N * (N - 1) // 2 + N


def test_woven_inert_call(benchmark):
    Target = make_target()
    weave(Target)
    obj = Target()
    assert benchmark(lambda: run_loop(obj)) == N * (N - 1) // 2 + N


def test_one_around_advice(benchmark):
    Target = make_target()

    class Pass(Aspect):
        @around("call(Target.work(..))")
        def passthrough(self, jp):
            return jp.proceed()

    weave(Target)
    deploy(Pass())
    obj = Target()
    assert benchmark(lambda: run_loop(obj)) == N * (N - 1) // 2 + N


def test_five_aspect_stack(benchmark):
    Target = make_target()

    def make_aspect(level):
        class Pass(Aspect):
            precedence = level

            @around("call(Target.work(..))")
            def passthrough(self, jp):
                return jp.proceed()

        return Pass()

    weave(Target)
    for level in range(5):
        deploy(make_aspect(level))
    obj = Target()
    stats = default_weaver.plan_stats
    interpreter_before = stats.interpreter_calls
    assert benchmark(lambda: run_loop(obj)) == N * (N - 1) // 2 + N
    # acceptance invariant: the five-aspect hot loop never entered the
    # generic interpreter (the fused all-around plan served every call)
    assert stats.interpreter_calls == interpreter_before


def deploy_mixed_five(Target):
    """Five advice of mixed kinds, separable (befores/afters outermost):
    the shape the compiled mixed plan covers."""

    class Pre(Aspect):
        precedence = 500

        @before("call(Target.work(..))")
        def pre(self, jp):
            pass

    class Post(Aspect):
        precedence = 400

        @after("call(Target.work(..))")
        def post(self, jp):
            pass

    class Ret(Aspect):
        precedence = 300

        @after_returning("call(Target.work(..))")
        def ret(self, jp):
            pass

    def make_around(level):
        class Wrap(Aspect):
            precedence = level

            @around("call(Target.work(..))")
            def wrap(self, jp):
                return jp.proceed()

        return Wrap()

    for aspect in (Pre(), Post(), Ret(), make_around(200), make_around(100)):
        deploy(aspect)


def test_mixed_five_advice_stack(benchmark):
    """The compiled mixed-chain plan (PR 2): befores/afters folded at
    compile time around the all-around recursion."""
    Target = make_target()
    weave(Target)
    deploy_mixed_five(Target)
    obj = Target()
    impl = vars(Target)["work"]
    assert "runner" in impl.__code__.co_freevars, "mixed plan not compiled"
    assert benchmark(lambda: run_loop(obj)) == N * (N - 1) // 2 + N


def test_mixed_five_advice_interpreted(benchmark):
    """The same five-advice mixed chain through the generic interpreter —
    the only path the seed had for mixed chains.  The compiled plan above
    must beat this by ≥ 1.5×."""
    Target = make_target()
    weave(Target)
    deploy_mixed_five(Target)
    shadow = default_weaver._shadows[Target][("work", JoinPointKind.CALL)]
    impl = plan_mod._chain_impl(
        Target, "work", shadow.original, shadow.entries, False
    )
    obj = Target()

    def loop():
        total = 0
        for i in range(N):
            total += impl(obj, i)
        return total

    assert benchmark(loop) == N * (N - 1) // 2 + N


def deploy_nonseparable_five(Target):
    """Five advice with the before/after sorted BELOW (and between) the
    arounds — the non-separable shape that used to force the generic
    interpreter and now compiles by per-segment nesting."""

    def make_around(level):
        class Wrap(Aspect):
            precedence = level

            @around("call(Target.work(..))")
            def wrap(self, jp):
                return jp.proceed()

        return Wrap()

    class Pre(Aspect):
        precedence = 400

        @before("call(Target.work(..))")
        def pre(self, jp):
            pass

    class Post(Aspect):
        precedence = 200

        @after("call(Target.work(..))")
        def post(self, jp):
            pass

    for aspect in (make_around(500), Pre(), make_around(300), Post(),
                   make_around(100)):
        deploy(aspect)


def test_nonseparable_five_advice_stack(benchmark):
    """The compiled non-separable plan: before/after runs folded into
    the around level beneath them, the around spine fused — zero
    interpreter entries on the hot loop (asserted)."""
    Target = make_target()
    weave(Target)
    deploy_nonseparable_five(Target)
    obj = Target()
    impl = vars(Target)["work"]
    assert "runner" in impl.__code__.co_freevars, "chain did not compile"
    assert impl.__aop_plan_kind__ == "mixed"
    stats = default_weaver.plan_stats
    interpreter_before = stats.interpreter_calls
    assert benchmark(lambda: run_loop(obj)) == N * (N - 1) // 2 + N
    assert stats.interpreter_calls == interpreter_before


def test_nonseparable_five_advice_interpreted(benchmark):
    """The same non-separable five-advice chain through the generic
    interpreter — the only path such chains had before per-segment
    nesting.  The compiled plan above must beat this (gated)."""
    Target = make_target()
    weave(Target)
    deploy_nonseparable_five(Target)
    shadow = default_weaver._shadows[Target][("work", JoinPointKind.CALL)]
    impl = plan_mod._chain_impl(
        Target, "work", shadow.original, shadow.entries, False
    )
    obj = Target()

    def loop():
        total = 0
        for i in range(N):
            total += impl(obj, i)
        return total

    assert benchmark(loop) == N * (N - 1) // 2 + N


PACK = 8


def test_batched_pack8_dispatch(benchmark):
    """One 8-piece pack through the compiled batched entry: the advice
    chain runs once per pack (one BatchJoinPoint)."""
    Target = make_target()

    class Pass(Aspect):
        @around("call(Target.work(..))")
        def passthrough(self, jp):
            return jp.proceed()

    weave(Target)
    deploy(Pass())
    obj = Target()
    pieces = [((i,), {}) for i in range(PACK)]
    expected = [i + 1 for i in range(PACK)]

    # invariant: one joinpoint per pack (recorded alongside the timing)
    counts = {"batch": 0, "jp": 0}

    class CountingBatchJP(plan_mod.BatchJoinPoint):
        __slots__ = ()

        def __init__(self, *args, **kwargs):
            counts["batch"] += 1
            super().__init__(*args, **kwargs)

    class CountingJP(plan_mod.JoinPoint):
        __slots__ = ()

        def __init__(self, *args, **kwargs):
            counts["jp"] += 1
            super().__init__(*args, **kwargs)

    saved = plan_mod.JoinPoint, plan_mod.BatchJoinPoint
    plan_mod.JoinPoint, plan_mod.BatchJoinPoint = CountingJP, CountingBatchJP
    try:
        assert batched_entry(obj, "work")(pieces) == expected
    finally:
        plan_mod.JoinPoint, plan_mod.BatchJoinPoint = saved
    assert counts == {"batch": 1, "jp": 0}

    def loop():
        out = None
        for _ in range(N // PACK):
            out = batched_entry(obj, "work")(pieces)
        return out

    assert benchmark(loop) == expected


def test_unbatched_pack8_dispatch(benchmark):
    """The same 8 pieces as 8 per-item calls — what every skeleton paid
    before batched entry points (one JoinPoint and one advice pass per
    item)."""
    Target = make_target()

    class Pass(Aspect):
        @around("call(Target.work(..))")
        def passthrough(self, jp):
            return jp.proceed()

    weave(Target)
    deploy(Pass())
    obj = Target()

    def loop():
        out = None
        for _ in range(N // PACK):
            out = [obj.work(i) for i in range(PACK)]
        return out

    assert benchmark(loop) == [i + 1 for i in range(PACK)]


def test_replug_with_woven_bystanders(benchmark):
    """Deploy+undeploy one narrowly-scoped aspect while 20 other woven
    classes stand by: the static match index must keep re-plug cost
    independent of how much unrelated code is woven."""
    Target = make_target()
    weave(Target)
    bystanders = []
    for i in range(20):
        cls = type(f"Bystander{i}", (), {"run": lambda self, x: x})
        weave(cls)
        bystanders.append(cls)

    class Pass(Aspect):
        @around("call(Target.work(..))")
        def passthrough(self, jp):
            return jp.proceed()

    def replug():
        aspect = deploy(Pass())
        undeploy(aspect)

    benchmark(replug)


def test_initialization_interception(benchmark):
    Target = make_target()

    class Tag(Aspect):
        @around("initialization(Target.new(..))")
        def tag(self, jp):
            return jp.proceed()

    weave(Target)
    deploy(Tag())

    def build():
        for _ in range(100):
            Target()

    benchmark(build)


# ---------------------------------------------------------------------------
# Submit path: ParallelApp packs over the simulated middleware
# ---------------------------------------------------------------------------


def make_service_app(oneway):
    """A partition-less ParallelApp over simulated MPP — the service
    shape `app.map(pack=...)` targets."""
    from repro.api import ParallelApp, StackSpec
    from repro.cluster import paper_testbed
    from repro.sim import Simulator

    class Service:
        def __init__(self):
            self.calls = 0

        def handle(self, x):
            self.calls += 1
            return x + 1

    sim = Simulator()
    app = ParallelApp(
        StackSpec(
            target=Service,
            work="handle",
            strategy="none",
            concurrency=False,
            middleware="mpp",
            cluster=paper_testbed(sim),
            oneway=("handle",) if oneway else (),
        )
    )
    return sim, app


def test_submit_oneway_pack8(benchmark):
    """`app.map(pack=8, oneway=True)`: the whole pack is ONE message and
    the client never waits for a reply — the trajectory's fire-and-forget
    submit path."""
    sim, app = make_service_app(oneway=True)
    payload = list(range(PACK))
    try:
        app.deploy()
        app.start()
        cluster = app.spec.cluster
        # invariant: one wire message per pack, zero replies, futures
        # resolved to None placeholders at send time
        before_msgs = cluster.network.messages
        before_oneway = app.middleware.oneway_calls
        group = app.map(payload, pack=True, oneway=True)
        assert group.results() == [None] * PACK
        assert cluster.network.messages - before_msgs == 1
        assert app.middleware.oneway_calls - before_oneway == 1

        def loop():
            out = None
            for _ in range(N // PACK):
                out = app.map(payload, pack=True, oneway=True).results()
            return out

        assert benchmark(loop) == [None] * PACK
    finally:
        app.undeploy()
        app.shutdown()
        sim.shutdown()


SUBMITS = 4
STAGE_DELAY = 0.002


def make_pipeline_app():
    """A 3-stage thread-backend pipeline whose stages cost ~2 ms each —
    enough real latency that overlapping in-flight splits dominates the
    wall clock (keeps the CI-gated pair ratio stable across machines)."""
    import time

    from repro.api import ParallelApp, StackSpec
    from repro.parallel import WorkSplitter

    class Stage:
        def run(self, values):
            time.sleep(STAGE_DELAY)
            return [v + 1 for v in values]

    return ParallelApp(
        StackSpec(
            target=Stage,
            work="run",
            splitter=WorkSplitter(duplicates=3, combine=lambda rs: rs[0]),
            strategy="pipeline",
            backend="thread",
        )
    )


def test_submit_overlapped_pipeline(benchmark):
    """4 overlapped submissions through ONE deployed pipeline: per-call
    dispatch contexts let the splits share the stages concurrently.
    CI gates this pair's ratio (overlapped/serial) against the committed
    trajectory — see tools/check_bench_regression.py."""
    app = make_pipeline_app()
    payload = list(range(8))
    expected = [[v + 3 for v in payload]] * SUBMITS
    try:
        app.deploy()
        app.start()

        def overlapped():
            futures = [app.submit(list(payload)) for _ in range(SUBMITS)]
            return [f.result() for f in futures]

        assert benchmark(overlapped) == expected
        # the tentpole invariant: the pipeline genuinely sustained >= 2
        # concurrent in-flight splits
        assert app.peak_in_flight >= 2
        assert app.in_flight == 0
    finally:
        app.undeploy()
        app.shutdown()


def test_submit_serial_pipeline(benchmark):
    """The same 4 submissions strictly serialised (each result awaited
    before the next submit) — what the seed's per-aspect collector
    forced on every deployed pipeline."""
    app = make_pipeline_app()
    payload = list(range(8))
    expected = [[v + 3 for v in payload]] * SUBMITS
    try:
        app.deploy()
        app.start()

        def serial():
            return [
                app.submit(list(payload)).result() for _ in range(SUBMITS)
            ]

        assert benchmark(serial) == expected
        assert app.peak_in_flight == 1  # never overlapped by construction
    finally:
        app.undeploy()
        app.shutdown()


def make_farm_app():
    """A 2-worker farm over simulated MPP — the shape pack-aware
    partition routing targets."""
    from repro.api import ParallelApp, StackSpec
    from repro.cluster import paper_testbed
    from repro.parallel import WorkSplitter
    from repro.sim import Simulator

    class Service:
        def __init__(self):
            self.calls = 0

        def handle(self, x):
            self.calls += 1
            return x + 1

    sim = Simulator()
    app = ParallelApp(
        StackSpec(
            target=Service,
            work="handle",
            splitter=WorkSplitter(duplicates=2, combine=lambda rs: rs[0]),
            strategy="farm",
            middleware="mpp",
            cluster=paper_testbed(sim),
        )
    )
    return sim, app


def test_map_pack4_farm_mpp(benchmark):
    """`app.map(pack=4)` on a farm spec: each whole pack is routed to
    one worker as ONE batched message (invariant asserted) — pack-aware
    partition routing instead of the old eager rejection."""
    sim, app = make_farm_app()
    payload = list(range(8))
    expected = [x + 1 for x in payload]
    try:
        app.deploy()
        app.start()
        cluster = app.spec.cluster
        before = cluster.network.messages
        assert app.map(payload, pack=4).results() == expected
        # 2 packs of 4 -> 2 batched requests + 2 replies, nothing per-item
        assert cluster.network.messages - before == 4
        assert app.middleware.batched_calls == 2

        def loop():
            out = None
            for _ in range(N // (PACK * 16)):
                out = app.map(payload, pack=4).results()
            return out

        assert benchmark(loop) == expected
    finally:
        app.undeploy()
        app.shutdown()
        sim.shutdown()


def test_map_unpacked_farm_mpp(benchmark):
    """The same 8 payloads submitted item by item through the same farm
    — one split, one advice pass and one message round-trip per item:
    the cost pack routing removes."""
    sim, app = make_farm_app()
    payload = list(range(8))
    expected = [x + 1 for x in payload]
    try:
        app.deploy()
        app.start()

        def loop():
            out = None
            for _ in range(N // (PACK * 16)):
                out = app.map(payload).results()
            return out

        assert benchmark(loop) == expected
    finally:
        app.undeploy()
        app.shutdown()
        sim.shutdown()


DYN_WORKERS = 4
DYN_SUBMITS = 4


def make_dynfarm_app(resident):
    """A thread-backend dynamic farm with trivial per-piece work — the
    wall clock is dominated by dispatcher activity management, which is
    exactly what the resident-vs-respawn pair measures."""
    from repro.api import ParallelApp, StackSpec
    from repro.parallel import WorkSplitter
    from repro.runtime import ThreadBackend

    class Service:
        def __init__(self, tag=0):
            self.tag = tag

        def handle(self, x):
            return x + 1

    backend = ThreadBackend()
    app = ParallelApp(
        StackSpec(
            target=Service,
            work="handle",
            splitter=WorkSplitter(
                duplicates=DYN_WORKERS, combine=lambda rs: rs[0]
            ),
            strategy="dynamic-farm",
            strategy_options=dict(resident_pool=resident),
            backend=backend,
        )
    )
    return backend, app


def test_submit_resident_dynfarm(benchmark):
    """4 submissions per round through a dynamic farm whose deployment
    owns a RESIDENT dispatcher pool: zero dispatcher spawns on the hot
    path (invariant asserted) — the spawn cost is paid once per
    deployment instead of once per split.  CI gates this pair's ratio
    (resident/respawn) via tools/check_bench_regression.py."""
    backend, app = make_dynfarm_app(resident=True)
    try:
        app.deploy()
        app.start()
        app.submit(0).result()  # warm-up: spawns the resident pool
        before = backend.spawned

        def round_trip():
            futures = [app.submit(i) for i in range(DYN_SUBMITS)]
            return [f.result() for f in futures]

        assert round_trip() == [i + 1 for i in range(DYN_SUBMITS)]
        # invariant: only the submission activities were spawned — the
        # dispatchers are resident
        assert backend.spawned - before == DYN_SUBMITS
        assert benchmark(round_trip) == [i + 1 for i in range(DYN_SUBMITS)]
    finally:
        app.undeploy()
        app.shutdown()


def test_submit_respawn_dynfarm(benchmark):
    """The same 4 submissions with resident_pool=False — the paper's
    literal formulation spawns one fresh dispatcher activity per worker
    per split call (invariant asserted): the cost the resident pool
    amortises away."""
    backend, app = make_dynfarm_app(resident=False)
    try:
        app.deploy()
        app.start()
        app.submit(0).result()
        before = backend.spawned

        def round_trip():
            futures = [app.submit(i) for i in range(DYN_SUBMITS)]
            return [f.result() for f in futures]

        assert round_trip() == [i + 1 for i in range(DYN_SUBMITS)]
        # invariant: every submission paid DYN_WORKERS dispatcher spawns
        assert backend.spawned - before == DYN_SUBMITS * (1 + DYN_WORKERS)
        assert benchmark(round_trip) == [i + 1 for i in range(DYN_SUBMITS)]
    finally:
        app.undeploy()
        app.shutdown()


# ---------------------------------------------------------------------------
# Out-of-process execution: thread-vs-process on CPU-bound splits, and
# one-marshal-per-pack across the pipe
# ---------------------------------------------------------------------------

CPU_WORKERS = 4
CPU_SPAN = 200_000


class Burner:
    """Pure-Python CPU burn — GIL-bound on threads, genuinely parallel
    across resident worker processes.  Module-level so the servant
    pickles by reference into forked workers."""

    def __init__(self, tag=0):
        self.tag = tag

    def burn(self, span):
        lo, hi = span
        total = 0
        for i in range(lo, hi):
            total += i * i
        return total


def _burn_pieces(args, kwargs):
    from repro.parallel.partition import CallPiece

    lo, hi = args[0]
    step = (hi - lo) // CPU_WORKERS
    spans = [
        (lo + i * step, hi if i == CPU_WORKERS - 1 else lo + (i + 1) * step)
        for i in range(CPU_WORKERS)
    ]
    return [CallPiece(i, (span,)) for i, span in enumerate(spans)]


CPU_EXPECTED = sum(i * i for i in range(CPU_SPAN))


def make_cpu_farm_app(backend):
    from repro.api import ParallelApp, StackSpec
    from repro.parallel import WorkSplitter

    return ParallelApp(
        StackSpec(
            target=Burner,
            work="burn",
            splitter=WorkSplitter(
                duplicates=CPU_WORKERS, split=_burn_pieces, combine=sum
            ),
            strategy="farm",
            backend=backend,
        )
    )


def _best_cpu_round(app, rounds=3):
    import time

    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        assert app.submit((0, CPU_SPAN)).result(timeout=60) == CPU_EXPECTED
        best = min(best, time.perf_counter() - t0)
    return best


def test_submit_cpu_farm_process(benchmark):
    """One CPU-bound call split 4 ways across resident worker PROCESSES:
    the payoff bench for out-of-process execution.  On a >= 4-core
    machine the process farm must beat the thread farm >= 2x (asserted;
    single-core CI boxes skip the speedup assert but still track the
    pair's trajectory ratio via tools/bench_gates.json)."""
    import os

    app = make_cpu_farm_app("process")
    try:
        app.deploy()
        app.start()

        def call():
            return app.submit((0, CPU_SPAN)).result(timeout=60)

        assert benchmark(call) == CPU_EXPECTED
        if (os.cpu_count() or 1) >= 4:
            thread_app = make_cpu_farm_app("thread")
            try:
                thread_app.deploy()
                thread_app.start()
                speedup = _best_cpu_round(thread_app) / _best_cpu_round(app)
            finally:
                thread_app.undeploy()
                thread_app.shutdown()
            assert speedup >= 2.0, (
                f"process farm only {speedup:.2f}x over threads on "
                f"{os.cpu_count()} cores — the GIL is back in the loop"
            )
    finally:
        app.undeploy()
        app.shutdown()


def test_submit_cpu_farm_thread(benchmark):
    """The same CPU-bound 4-way split on the THREAD backend — every
    piece contends for one GIL: the denominator of the speedup pair."""
    app = make_cpu_farm_app("thread")
    try:
        app.deploy()
        app.start()

        def call():
            return app.submit((0, CPU_SPAN)).result(timeout=60)

        assert benchmark(call) == CPU_EXPECTED
    finally:
        app.undeploy()
        app.shutdown()


# ---------------------------------------------------------------------------
# Event-loop execution: asyncio-vs-thread on an I/O-bound high-fan-out
# farm — loop tasks vs a spawned thread per concurrent wait
# ---------------------------------------------------------------------------

IO_WORKERS = 64
IO_LATENCY = 0.001  # one simulated endpoint round trip, seconds


class AsyncFetcher:
    """I/O-bound async servant: the wait is an ``await`` on the loop."""

    def __init__(self, tag=0):
        self.tag = tag

    async def fetch(self, index):
        import asyncio

        await asyncio.sleep(IO_LATENCY)
        return 1


class ThreadFetcher:
    """The same endpoint wait as a blocking sleep (thread backend)."""

    def __init__(self, tag=0):
        self.tag = tag

    def fetch(self, index):
        import time

        time.sleep(IO_LATENCY)
        return 1


def _io_pieces(args, kwargs):
    from repro.parallel.partition import CallPiece

    return [CallPiece(i, (i,)) for i in range(args[0])]


def make_io_farm_app(backend, target):
    from repro.api import ParallelApp, StackSpec
    from repro.parallel import WorkSplitter

    return ParallelApp(
        StackSpec(
            target=target,
            work="fetch",
            splitter=WorkSplitter(
                duplicates=IO_WORKERS, split=_io_pieces, combine=sum
            ),
            strategy="farm",
            backend=backend,
        )
    )


def test_submit_io_farm_asyncio(benchmark):
    """One I/O-bound call fanned out IO_WORKERS ways as ``async def``
    awaits on ONE event loop: per-piece dispatch proceeds inline (the
    concurrency aspect's native-async path) and the only concurrency
    cost is a loop task per piece — no thread per concurrent wait.  CI
    gates this pair's ratio (asyncio/thread) via
    tools/bench_gates.json."""
    app = make_io_farm_app("asyncio", AsyncFetcher)
    try:
        app.deploy()
        app.start()

        def call():
            return app.submit(IO_WORKERS).result(timeout=60)

        assert call() == IO_WORKERS
        # invariant: the fan-out genuinely overlapped on the loop (the
        # full 64 only coexist on a quiet box — early awaits can finish
        # before the last pieces bridge, so assert overlap, not count)
        assert app.backend.peak_tasks >= 2
        assert app.backend.tasks_started >= IO_WORKERS
        assert benchmark(call) == IO_WORKERS
    finally:
        app.undeploy()
        app.shutdown()


def test_submit_io_farm_thread(benchmark):
    """The same fan-out on the THREAD backend: every piece's wait burns
    a freshly spawned thread — the denominator of the I/O pair."""
    app = make_io_farm_app("thread", ThreadFetcher)
    try:
        app.deploy()
        app.start()

        def call():
            return app.submit(IO_WORKERS).result(timeout=60)

        assert benchmark(call) == IO_WORKERS
    finally:
        app.undeploy()
        app.shutdown()


class ProcService:
    """Pack-bench servant (module-level: pickles by reference)."""

    def handle(self, x):
        return x + 1


def make_pack_process_app():
    from repro.api import ParallelApp, StackSpec

    return ParallelApp(
        StackSpec(
            target=ProcService,
            work="handle",
            strategy="none",
            concurrency=False,
            middleware="process",
        )
    )


def test_map_pack8_process(benchmark):
    """`app.map(pack=8)` across the process boundary: the whole pack is
    ONE marshalled request envelope (serializer.messages delta asserted)
    — communication packing carried over the real pipe transport."""
    app = make_pack_process_app()
    payload = list(range(PACK))
    expected = [x + 1 for x in payload]
    try:
        app.deploy()
        app.start()
        serializer = app.middleware.serializer
        before_msgs = serializer.messages
        before_batched = app.middleware.batched_calls
        assert app.map(payload, pack=True).results() == expected
        # one encode for the whole pack (replies are billed to the
        # sender, i.e. the worker): one marshal per pack, not per item
        assert serializer.messages - before_msgs == 1
        assert app.middleware.batched_calls - before_batched == 1

        def loop():
            out = None
            for _ in range(N // (PACK * 16)):
                out = app.map(payload, pack=True).results()
            return out

        assert benchmark(loop) == expected
    finally:
        app.undeploy()
        app.shutdown()


def test_map_unpacked_process(benchmark):
    """The same 8 payloads item by item through the same process-backed
    service — one marshal and one pipe round-trip per item: the cost
    pack routing removes from the real transport."""
    app = make_pack_process_app()
    payload = list(range(PACK))
    expected = [x + 1 for x in payload]
    try:
        app.deploy()
        app.start()
        serializer = app.middleware.serializer
        before = serializer.messages
        assert app.map(payload).results() == expected
        assert serializer.messages - before == PACK  # one per item

        def loop():
            out = None
            for _ in range(N // (PACK * 16)):
                out = app.map(payload).results()
            return out

        assert benchmark(loop) == expected
    finally:
        app.undeploy()
        app.shutdown()


def test_submit_roundtrip_pack8(benchmark):
    """The same 8-item pack with a reply wait (oneway off): one request
    message + one reply per pack — the cost the oneway path removes."""
    sim, app = make_service_app(oneway=False)
    payload = list(range(PACK))
    expected = [i + 1 for i in range(PACK)]
    try:
        app.deploy()
        app.start()
        cluster = app.spec.cluster
        before_msgs = cluster.network.messages
        group = app.map(payload, pack=True)
        assert group.results() == expected
        assert cluster.network.messages - before_msgs == 2  # request + reply

        def loop():
            out = None
            for _ in range(N // PACK):
                out = app.map(payload, pack=True).results()
            return out

        assert benchmark(loop) == expected
    finally:
        app.undeploy()
        app.shutdown()
        sim.shutdown()


# ---------------------------------------------------------------------------
# Pack-aware optimisation aspects: one cache lookup per pack on a 50%
# partial-hit workload, and replica-served reads vs remote round-trips
# ---------------------------------------------------------------------------


def make_cached_target():
    from repro.parallel import ObjectCacheAspect

    Target = make_target()
    weave(Target)
    cache = ObjectCacheAspect(cached_calls="call(Target.work(..))")
    deploy(cache)
    return Target, cache


def test_pack8_cache_partial_hit(benchmark):
    """An 8-piece pack through the pack-aware cache on a 50% partial-hit
    workload: ONE locked digest+lookup pass for the pack (invariant
    asserted), cached items answered locally, the 4 misses proceeding as
    a smaller pack, results re-interleaved in piece order."""
    Target, cache = make_cached_target()
    obj = Target()
    pieces = [((i,), {}) for i in range(PACK)]
    expected = [i + 1 for i in range(PACK)]

    # invariant: 50% pre-warmed -> exactly one cache lookup for the
    # pack, correct in-order results
    for i in range(0, PACK, 2):
        obj.work(i)
    hits_before, lookups_before = cache.hits, cache.pack_lookups
    assert batched_entry(obj, "work")(pieces) == expected
    assert cache.pack_lookups - lookups_before == 1
    assert cache.hits - hits_before == PACK // 2

    def loop():
        out = None
        for _ in range(N // PACK):
            cache.clear()
            for i in range(0, PACK, 2):  # re-warm half the pack
                obj.work(i)
            out = batched_entry(obj, "work")(pieces)
        return out

    assert benchmark(loop) == expected


def test_peritem_cache_partial_hit(benchmark):
    """The same 50% partial-hit workload as 8 per-item cached calls —
    one digest, one lock acquisition and one advice pass per item: the
    cost the pack path collapses into a single locked pass."""
    Target, cache = make_cached_target()
    obj = Target()
    expected = [i + 1 for i in range(PACK)]

    def loop():
        out = None
        for _ in range(N // PACK):
            cache.clear()
            for i in range(0, PACK, 2):
                obj.work(i)
            out = [obj.work(i) for i in range(PACK)]
        return out

    assert benchmark(loop) == expected


READS = 200


def make_read_scenario(replicated):
    """A distributed Store over simulated MPP: the client holds a woven
    instance whose ``get`` is redirected to a remote servant.  The
    replicated variant deploys :class:`ReadReplicaAspect` above the
    distribution layer so reads are served by a local replica instead of
    a per-read message round-trip."""
    from repro.cluster import paper_testbed
    from repro.middleware import MppMiddleware, use_node
    from repro.parallel import MppDistributionAspect, ReadReplicaAspect
    from repro.parallel.partition.base import PartitionAspect
    from repro.runtime import SimBackend, use_backend
    from repro.sim import Simulator

    class Store:
        def __init__(self):
            self.data = {i: i * 2 for i in range(16)}

        def get(self, key):
            return self.data.get(key)

    weave(Store)
    sim = Simulator()
    cluster = paper_testbed(sim)
    mpp = MppMiddleware(cluster)
    deploy(
        MppDistributionAspect(
            mpp,
            remote_new="initialization(Store.new(..))",
            remote_calls="call(Store.get(..))",
        )
    )
    backend = SimBackend(sim)
    holder = {}

    def build():
        with use_backend(backend), use_node(cluster.head):
            holder["store"] = Store()

    sim.spawn(build)
    sim.run()
    store = holder["store"]

    aspect = None
    if replicated:
        # a minimal partition exposing the store as a managed servant
        partition = PartitionAspect.__new__(PartitionAspect)
        partition.managed = {}
        partition.instances = []
        partition.remember(store, 0)
        aspect = ReadReplicaAspect(
            partition, read_calls="call(Store.get(..))"
        )
        deploy(aspect)

    expected = sum((i % 16) * 2 for i in range(READS))

    def round_trip():
        out = {}

        def main():
            with use_backend(backend), use_node(cluster.head):
                total = 0
                for i in range(READS):
                    total += store.get(i % 16)
                out["total"] = total

        sim.spawn(main)
        sim.run()
        return out["total"]

    def teardown():
        mpp.shutdown()
        sim.shutdown()

    return cluster, aspect, round_trip, teardown, expected


def test_replicated_read_store(benchmark):
    """200 reads on the distributed store with read-replica serving:
    after the first read builds the replica, not one message crosses the
    simulated network (invariant asserted) and no advice below the
    replica aspect runs."""
    cluster, aspect, round_trip, teardown, expected = make_read_scenario(
        replicated=True
    )
    try:
        assert round_trip() == expected  # builds the replica
        msgs_before = cluster.network.messages
        assert round_trip() == expected
        assert cluster.network.messages == msgs_before  # zero remote reads
        assert aspect.local_reads >= 2 * READS
        assert aspect.replica_builds == 1
        assert benchmark(round_trip) == expected
    finally:
        teardown()


def test_remote_read_store(benchmark):
    """The same 200 reads without replication — every read is a request
    + reply round-trip through the simulated MPP middleware (invariant
    asserted): the per-item message cost read replicas remove."""
    cluster, _, round_trip, teardown, expected = make_read_scenario(
        replicated=False
    )
    try:
        msgs_before = cluster.network.messages
        assert round_trip() == expected
        assert cluster.network.messages - msgs_before == 2 * READS
        assert benchmark(round_trip) == expected
    finally:
        teardown()


# ---------------------------------------------------------------------------
# Fault injection: farm throughput under 1-in-50 worker kills with the
# retry plane absorbing them, vs the clean (retry off, no faults) farm
# ---------------------------------------------------------------------------

FAULT_SUBMITS = 4


def make_fault_farm_app(faulted):
    """A thread-backend static farm with trivial per-piece work; the
    faulted variant kills the dispatched-to worker on every 50th piece
    dispatch and arms a retry policy so every kill is absorbed by a
    re-dispatch — the pair prices the whole recovery plane (fault-plane
    consultation + retry bookkeeping + occasional re-dispatch)."""
    from repro.api import ParallelApp, StackSpec
    from repro.faults import FaultEvent, FaultSchedule, RetryPolicy
    from repro.parallel import WorkSplitter
    from repro.runtime import ThreadBackend

    class Service:
        def __init__(self, tag=0):
            self.tag = tag

        def handle(self, x):
            return x + 1

    fields = dict(
        target=Service,
        work="handle",
        splitter=WorkSplitter(duplicates=4, combine=lambda rs: rs[0]),
        strategy="farm",
        backend=ThreadBackend(),
    )
    schedule = None
    if faulted:
        schedule = FaultSchedule(
            [FaultEvent("kill_worker", site="dispatch", every=50)],
            name="bench-kills",
        )
        fields.update(faults=schedule, retry=RetryPolicy(max_attempts=3))
    return schedule, ParallelApp(StackSpec(**fields))


def test_submit_faulted_farm_retry(benchmark):
    """Farm throughput with a 1-in-50 ``kill_worker`` schedule and retry
    ON: every kill is recovered by re-dispatching the piece to the next
    worker (invariant: the schedule genuinely fired, and every
    submission still succeeded).  CI gates this pair's ratio
    (faulted/clean) via tools/check_bench_regression.py."""
    schedule, app = make_fault_farm_app(faulted=True)
    try:
        app.deploy()
        app.start()

        def round_trip():
            futures = [app.submit(i) for i in range(FAULT_SUBMITS)]
            return [f.result() for f in futures]

        # warm past the first 50-dispatch kill mark so the invariant
        # below holds even under --benchmark-disable's single round
        for _ in range(1 + 50 // FAULT_SUBMITS):
            assert round_trip() == [i + 1 for i in range(FAULT_SUBMITS)]
        assert schedule.fired_count() >= 1, "the kill schedule never fired"
        result = benchmark(round_trip)
        assert result == [i + 1 for i in range(FAULT_SUBMITS)]
    finally:
        app.undeploy()
        app.shutdown()


def test_submit_clean_farm(benchmark):
    """The same farm with no fault schedule and no retry policy — the
    clean throughput the faulted run is gated against (the fast path of
    ``fire_fault`` is one truthiness check, so the gap is the price of
    actual kills plus retry bookkeeping, not of the instrumentation)."""
    _, app = make_fault_farm_app(faulted=False)
    try:
        app.deploy()
        app.start()

        def round_trip():
            futures = [app.submit(i) for i in range(FAULT_SUBMITS)]
            return [f.result() for f in futures]

        assert round_trip() == [i + 1 for i in range(FAULT_SUBMITS)]
        assert benchmark(round_trip) == [
            i + 1 for i in range(FAULT_SUBMITS)
        ]
    finally:
        app.undeploy()
        app.shutdown()
