"""Experiment E2 — Table 1: tested module combinations.

Regenerates the table from the composition metadata itself (which
concern each plugged module fills), verifying the five rows match the
paper's matrix.
"""

from __future__ import annotations

from conftest import register_report

from repro.bench import table1


def test_table1_module_matrix(benchmark):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    register_report(result.report)
    assert result.passed, result.report
