"""Experiment E3 — Figure 17: performance of the AspectJ versions.

All five Table 1 module combinations swept over the paper's filter
counts (1..16) on the simulated testbed, with the shape checks DESIGN.md
enumerates: farm > pipeline, threads flatten past one machine, MPP
beats RMI, dynamic ≈ static farm.
"""

from __future__ import annotations

from conftest import bench_maximum, bench_packs, register_report

from repro.bench import FILTER_COUNTS, fig17


def test_fig17_module_combinations(benchmark):
    result = benchmark.pedantic(
        lambda: fig17(
            filters=FILTER_COUNTS,
            maximum=bench_maximum(),
            packs=bench_packs(),
        ),
        rounds=1,
        iterations=1,
    )
    register_report(result.report)
    for combo, values in result.series.items():
        benchmark.extra_info[combo] = values
    assert result.passed, result.report
