"""Packaging for the conf_ipps_Sobral06 reproduction.

The package lives under ``src/`` (the "src layout"), so ``package_dir``
must point setuptools there — without it, ``pip install -e .`` produced
an empty install and everything silently depended on ``PYTHONPATH=src``.

Offline installs: ``pip install -e .`` needs network for PEP 517 build
isolation on some pip versions; ``python setup.py develop`` installs the
same editable package with zero network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro-sobral06",
    version="0.1.0",
    description=(
        "Reproduction of Sobral (IPDPS 2006): pluggable aspect-oriented "
        "composition of partition/concurrency/distribution concerns"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
)
