"""Setup shim (metadata lives in setup.cfg).

Offline installs: ``pip install -e .`` needs network for PEP 517 build
isolation on some pip versions; ``python setup.py develop`` installs the
same editable package with zero network access.
"""

from setuptools import setup

setup()
