#!/usr/bin/env python3
"""Quickstart: the AOP engine on the paper's own Section 3 examples.

Reproduces Figures 1-3: a ``Point`` class, a *static crosscutting*
aspect introducing a ``migrate`` method and declaring an interface, and
a *dynamic crosscutting* logging aspect — then shows the paper's key
move: unplugging an aspect at runtime.

Run:  python examples/quickstart.py
"""

from repro.aop import (
    Aspect,
    around,
    declare_parents,
    deploy,
    introduce,
    is_subtype,
    undeploy,
    weave,
)


# -- Figure 1: the Point class (plain core functionality) -------------------


class Point:
    def __init__(self):
        self.x = 0
        self.y = 0

    def move_x(self, delta):
        self.x += delta

    def move_y(self, delta):
        self.y += delta


class Serializable:
    """A marker interface (java.io.Serializable stand-in)."""


# -- Figure 2: static crosscutting ------------------------------------------


class Static(Aspect):
    # declare parents: Point implements Serializable
    parents = [declare_parents(Point, Serializable)]

    # public void Point.migrate(String node)
    @introduce(Point)
    def migrate(self, node):
        print(f"  Migrate to {node}")


# -- Figure 3: dynamic crosscutting ------------------------------------------


class Logging(Aspect):
    @around("call(Point.move*(..))")
    def log(self, jp):
        print(f"  Move called: {jp.signature}{jp.args}")
        return jp.proceed()


def main():
    print("== weaving Point and deploying the aspects ==")
    weave(Point)
    static = deploy(Static())
    logging = deploy(Logging())

    point = Point()
    point.move_x(10)
    point.move_y(5)
    print(f"  position: ({point.x}, {point.y})")

    print("\n== static crosscutting effects ==")
    point.migrate("node3")
    print(f"  Point is Serializable: {is_subtype(Point, Serializable)}")

    print("\n== unplugging the logging aspect (paper: '(un)plug on the fly') ==")
    undeploy(logging)
    point.move_x(1)  # silent now
    print(f"  position: ({point.x}, {point.y})  (no log line above)")

    print("\n== unplugging static crosscutting restores the class ==")
    undeploy(static)
    print(f"  Point still Serializable: {is_subtype(Point, Serializable)}")
    print(f"  Point has migrate: {hasattr(Point, 'migrate')}")


if __name__ == "__main__":
    main()
