#!/usr/bin/env python3
"""Dynamic-farm strategy on the declarative API: demand-driven sieve.

The dynamic farm merges partition and concurrency (each worker *pulls*
its next piece), here distributed over simulated RMI on the paper's
7-node testbed.  The whole deployment is one
:func:`~repro.apps.primes.sieve_spec`; the run is ``app.start`` +
``app.submit`` — called from outside the simulator, both transparently
drive it to completion.  Prints the per-worker piece counts that show
the demand-driven load balance.

Run:  python examples/primes_dynamic_farm.py  [max [packs [filters]]]
"""

import sys

import numpy as np

from repro.api import ParallelApp
from repro.apps.primes import SieveWorkload, expected_sieve_output, sieve_spec
from repro.cluster import paper_testbed
from repro.sim import Simulator


def main():
    maximum = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000
    packs = int(sys.argv[2]) if len(sys.argv) > 2 else 50
    filters = int(sys.argv[3]) if len(sys.argv) > 3 else 7

    print(
        f"dynamic-farm sieve up to {maximum:,} | {packs} packs | "
        f"{filters} demand-driven filters over simulated RMI\n"
    )
    sim = Simulator()
    cluster = paper_testbed(sim)
    workload = SieveWorkload(maximum, packs)
    app = ParallelApp(
        sieve_spec("FarmDRMI", workload, filters, cluster=cluster)
    )
    print(f"  {app.describe()}")
    try:
        with app:
            app.start(2, workload.sqrt)
            survivors = np.asarray(app.submit(workload.candidates).result())
        correct = np.array_equal(
            np.sort(survivors), expected_sieve_output(maximum)
        )
        print(f"\n  verified prime set: {correct}")
        print(f"  simulated time: {sim.now:.3f}s | "
              f"messages: {cluster.network.messages} | "
              f"middleware calls: {app.middleware.calls}")
        served = app.partition.served
        print("  pieces served per worker (demand-driven balance):")
        print("   ", " ".join(f"w{i}:{n}" for i, n in sorted(served.items())))
        if not correct:
            raise SystemExit(1)
    finally:
        sim.shutdown()


if __name__ == "__main__":
    main()
