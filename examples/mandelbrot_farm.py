#!/usr/bin/env python3
"""Farm strategy on the declarative API: Mandelbrot rendering.

The core renderer is plain sequential code; the whole parallel
deployment is one :class:`~repro.api.spec.StackSpec` (the farm + a
chosen execution backend) and the run is ``app.start`` + ``app.submit``
— a future-returning call on the woven renderer.  The parallel image is
verified identical to the sequential one and printed as ASCII art.

Run:  python examples/mandelbrot_farm.py
      python examples/mandelbrot_farm.py --backend process

``--backend process`` keeps the SAME spec and application code but
moves each farm worker into a resident worker process (true multi-core
rendering): the scene ships once at export, each band request is one
pickled envelope, and results come back over the pipe.
"""

import argparse

import numpy as np

from repro.api import ParallelApp
from repro.apps.mandelbrot import MandelbrotRenderer, MandelbrotScene, mandelbrot_spec

SHADES = " .:-=+*#%@"


def ascii_art(image: np.ndarray, max_iter: int) -> str:
    lines = []
    for row in image[::2]:  # halve vertical resolution for terminal aspect
        line = "".join(
            SHADES[min(len(SHADES) - 1, int(v * len(SHADES) / (max_iter + 1)))]
            for v in row
        )
        lines.append(line)
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="execution backend: 'thread' (one interpreter) or "
        "'process' (farm workers in resident worker processes)",
    )
    args = parser.parse_args()

    scene = MandelbrotScene(width=76, height=48, max_iter=60)

    print("sequential render (core functionality)...")
    sequential = MandelbrotRenderer(scene).render_all()

    print(
        f"parallel render (farm of 4 workers, 12 bands, "
        f"{args.backend} backend)..."
    )
    app = ParallelApp(mandelbrot_spec(workers=4, bands=12, backend=args.backend))
    print(f"  {app.describe()}")
    with app:
        app.start(scene)
        image = app.submit(np.arange(scene.height)).result()

    identical = np.array_equal(image, sequential)
    print(f"parallel == sequential: {identical}\n")
    print(ascii_art(image, scene.max_iter))
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
