#!/usr/bin/env python3
"""Farm parallelisation of a Mandelbrot renderer (real threads).

The core renderer is plain sequential code; the farm + concurrency
modules are the *same reusable aspects* the sieve uses — only the
splitter (how to duplicate and split) is application-specific.  The
woven parallel image is verified identical to the sequential one and
printed as ASCII art.

Run:  python examples/mandelbrot_farm.py
"""

import numpy as np

from repro.aop import weave
from repro.aop.weaver import default_weaver
from repro.apps.mandelbrot import MandelbrotRenderer, MandelbrotScene, mandelbrot_splitter
from repro.apps.mandelbrot.aspects import MANDEL_CREATION, MANDEL_WORK
from repro.parallel import Composition, concurrency_module, farm_module
from repro.runtime import Future, ThreadBackend, use_backend

SHADES = " .:-=+*#%@"


def ascii_art(image: np.ndarray, max_iter: int) -> str:
    lines = []
    for row in image[::2]:  # halve vertical resolution for terminal aspect
        line = "".join(
            SHADES[min(len(SHADES) - 1, int(v * len(SHADES) / (max_iter + 1)))]
            for v in row
        )
        lines.append(line)
    return "\n".join(lines)


def main():
    scene = MandelbrotScene(width=76, height=48, max_iter=60)

    print("sequential render (core functionality)...")
    sequential = MandelbrotRenderer(scene).render_all()

    print("parallel render (farm of 4 workers, 12 bands, thread backend)...")
    composition = Composition(
        "mandelbrot-farm",
        [
            farm_module(
                mandelbrot_splitter(workers=4, bands=12),
                MANDEL_CREATION,
                MANDEL_WORK,
            ),
            concurrency_module(MANDEL_WORK, MANDEL_WORK),
        ],
    )
    weave(MandelbrotRenderer)
    with use_backend(ThreadBackend()):
        with composition.deployed(default_weaver, targets=[MandelbrotRenderer]):
            renderer = MandelbrotRenderer(scene)
            image = renderer.render(np.arange(scene.height))
            if isinstance(image, Future):
                image = image.result()

    identical = np.array_equal(image, sequential)
    print(f"parallel == sequential: {identical}\n")
    print(ascii_art(image, scene.max_iter))
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
