#!/usr/bin/env python3
"""Exchanging distribution middlewares (paper Section 4.3 / Figures 14-15).

The same farm-parallel sieve runs over Java-RMI-style, MPP-style and
hybrid middlewares by swapping ONE module — core functionality,
partition and concurrency are untouched.  Reports the simulated time and
traffic of each, showing where MPP's cheaper per-message costs go.

Run:  python examples/middleware_swap.py
"""

from repro.bench import run_sieve

MAXIMUM = 1_000_000
PACKS = 50
FILTERS = 7


def main():
    print(
        f"farm sieve (max={MAXIMUM:,}, {PACKS} packs, {FILTERS} filters) — "
        "one distribution module swapped per run\n"
    )
    rows = []
    for combo, label in [
        ("FarmThreads", "no distribution (single shared-memory machine)"),
        ("FarmRMI", "RMI: registry + synchronous stubs, heavy serialisation"),
        ("FarmMPP", "MPP: raw buffers over nio, cheap per-message costs"),
        ("FarmHybrid", "hybrid: RMI control calls + MPP data calls"),
    ]:
        result = run_sieve(combo, FILTERS, maximum=MAXIMUM, packs=PACKS)
        rows.append((combo, result, label))

    print(f"{'combo':>12} {'sim time':>10} {'messages':>9} {'MB moved':>9}   middleware")
    for combo, result, label in rows:
        print(
            f"{combo:>12} {result.sim_time:9.3f}s {result.messages:9d} "
            f"{result.bytes / 1e6:8.1f}M   {label}"
        )
        assert result.correct, f"{combo} produced wrong primes!"

    rmi = next(r for c, r, _ in rows if c == "FarmRMI")
    mpp = next(r for c, r, _ in rows if c == "FarmMPP")
    gain = (rmi.sim_time - mpp.sim_time) / rmi.sim_time
    print(
        f"\nswapping RMI -> MPP saved {gain:.1%} simulated time "
        "without touching any other module."
    )


if __name__ == "__main__":
    main()
