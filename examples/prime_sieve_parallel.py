#!/usr/bin/env python3
"""The paper's case study, developed *incrementally* (Section 5).

Starts from the sequential prime sieve and adds one concern at a time —
partition, concurrency, distribution — each as a pluggable module,
measuring every configuration on the simulated 7-node testbed.  Finishes
by exchanging the pipeline partition for a farm (the paper's Section 7
claim) without touching the core class.

Run:  python examples/prime_sieve_parallel.py  [max [packs [filters]]]
"""

import sys

from repro.bench import PAPER_COST_MODEL, run_sieve


def main():
    maximum = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000
    packs = int(sys.argv[2]) if len(sys.argv) > 2 else 50
    filters = int(sys.argv[3]) if len(sys.argv) > 3 else 7

    print(f"prime sieve up to {maximum:,} | {packs} packs | {filters} filters")
    print(f"(simulated testbed: 7 x dual-Xeon-HT on GigE; "
          f"cost model: {PAPER_COST_MODEL.ns_per_op * 1e9:.1f} ns/op)\n")

    steps = [
        ("Sequential", 1, "core functionality only"),
        ("FarmThreads", filters, "+ partition (farm) + concurrency (threads)"),
        ("PipeRMI", filters, "pipeline partition + concurrency + RMI distribution"),
        ("FarmRMI", filters, "exchange pipeline -> farm (same distribution)"),
        ("FarmMPP", filters, "exchange RMI -> MPP middleware"),
        ("FarmDRMI", filters, "exchange static -> dynamic (demand-driven) farm"),
    ]
    baseline = None
    for combo, n, description in steps:
        result = run_sieve(combo, n, maximum=maximum, packs=packs)
        if baseline is None:
            baseline = result.sim_time
        speedup = baseline / result.sim_time
        status = "ok" if result.correct else "WRONG RESULTS"
        print(
            f"{combo:>12} ({n:2d} filters): {result.sim_time:7.3f}s "
            f"speedup {speedup:5.2f}x  msgs {result.messages:5d}  [{status}]"
        )
        print(f"{'':>14} {description}")
    print("\nEvery configuration computed the identical, verified prime set —")
    print("only the plugged aspect modules changed.")


if __name__ == "__main__":
    main()
