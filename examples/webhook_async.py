#!/usr/bin/env python3
"""I/O-bound fan-out on the asyncio backend: a webhook delivery farm.

The core functionality is a plain class whose delivery method is
``async def`` — it awaits a (simulated) remote endpoint.  Declaring
``backend="asyncio"`` in the :class:`~repro.api.spec.StackSpec` runs
every in-flight await as a task on ONE event loop: a farm of 8 workers
delivers 64 events in ~8 awaits of wall time instead of 64, without a
thread per call.  The same spec on ``backend="thread"`` would reject
the ``async def`` servant with a targeted ``BackendError``.

Three backend behaviours are demonstrated (see docs/BACKENDS.md):

1. **fan-out** — the farm's pieces overlap on the loop (elapsed is
   bounded by the slowest chain, not the sum);
2. **deadline mid-await** — ``submit(..., timeout=...)`` is measured on
   the loop clock, so an expired call is cancelled *inside* its await;
3. **native oneway** — audit notifications are fire-and-forget with
   ``middleware="none"``: the loop itself is the transport.

Run:  python examples/webhook_async.py
"""

import asyncio
import time

from repro.api import ParallelApp, StackSpec
from repro.errors import DeadlineExceeded
from repro.parallel import WorkSplitter
from repro.parallel.partition import CallPiece

LATENCY = 0.02  # simulated endpoint round-trip, seconds
WORKERS = 8


class WebhookGateway:
    """Core functionality: deliver events to a remote endpoint.

    Plain sequential class — no parallel code.  ``asyncio.sleep``
    stands in for the endpoint's network round trip (an aiohttp POST in
    a real service).
    """

    audited = 0

    def __init__(self, latency: float = LATENCY):
        self.latency = latency

    async def deliver(self, events):
        receipts = []
        for event in events:
            await asyncio.sleep(self.latency)  # the endpoint round trip
            receipts.append(f"{event}:delivered")
        return receipts

    async def audit(self, events):
        await asyncio.sleep(self.latency)
        WebhookGateway.audited += len(events)


def chunk_splitter(workers: int) -> WorkSplitter:
    """Split one delivery call's event list into per-worker chunks."""

    def split(args, kwargs):
        events = list(args[0])
        size = max(1, (len(events) + workers - 1) // workers)
        chunks = [events[i : i + size] for i in range(0, len(events), size)]
        return [CallPiece(i, (chunk,)) for i, chunk in enumerate(chunks)]

    return WorkSplitter(
        duplicates=workers,
        split=split,
        combine=lambda results: [r for chunk in results for r in chunk],
    )


def main():
    events = [f"evt-{i:03d}" for i in range(64)]

    spec = StackSpec(
        target=WebhookGateway,
        work="deliver",
        splitter=chunk_splitter(WORKERS),
        strategy="farm",
        backend="asyncio",
    )

    app = ParallelApp(spec)
    print(f"  {app.describe()}")
    with app:
        app.start()

        # 1. fan-out: 64 sequential awaits collapse to 8 per worker
        t0 = time.perf_counter()
        receipts = app.submit(events).result()
        elapsed = time.perf_counter() - t0
        sequential = len(events) * LATENCY
        print(
            f"delivered {len(receipts)} events in {elapsed * 1e3:.0f} ms "
            f"(sequential would be ~{sequential * 1e3:.0f} ms, "
            f"peak loop tasks: {app.backend.peak_tasks})"
        )
        assert receipts[0] == "evt-000:delivered"
        assert len(receipts) == len(events)
        assert elapsed < sequential, "awaits did not overlap on the loop"

        # 2. deadline mid-await: the loop clock bounds the call exactly
        try:
            app.submit(events, timeout=LATENCY * 2).result()
        except DeadlineExceeded as exc:
            print(f"deadline: {exc}")

    # 3. native oneway: no middleware — the loop is the transport
    audit_spec = StackSpec(
        target=WebhookGateway,
        work="audit",
        splitter=chunk_splitter(2),
        strategy="farm",
        backend="asyncio",
        oneway=("audit",),
    )
    with ParallelApp(audit_spec) as audit_app:
        audit_app.start()
        group = audit_app.map([events[:8], events[8:16]], pack=True, oneway=True)
        assert group.results() == [None, None]  # resolved at send time
        deadline = time.time() + 5.0
        while time.time() < deadline and WebhookGateway.audited < 16:
            time.sleep(0.005)
        print(f"oneway audits landed: {WebhookGateway.audited} events")
        assert WebhookGateway.audited == 16

    print("ok")


if __name__ == "__main__":
    main()
