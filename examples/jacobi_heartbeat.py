#!/usr/bin/env python3
"""Heartbeat strategy on the declarative API: Jacobi heat diffusion.

The heartbeat spec re-expresses the sequential ``solve(iterations)``
call as: one sweep on every block worker, halo exchange between
neighbours, repeat.  The deployment is one
:class:`~repro.api.spec.StackSpec`; the run is ``app.start`` +
``app.submit``, and the block-decomposed result is verified identical
to the sequential solver.

Run:  python examples/jacobi_heartbeat.py
"""

import numpy as np

from repro.api import ParallelApp
from repro.apps.jacobi import JacobiGrid, jacobi_spec, stitch_blocks

ROWS, COLS, ITERS, BLOCKS = 24, 32, 200, 4


def render_field(field: np.ndarray) -> str:
    shades = " .:-=+*#%@"
    peak = field.max() or 1.0
    return "\n".join(
        "".join(shades[min(9, int(v / peak * 9.999))] for v in row)
        for row in field[::2]
    )


def main():
    print(f"Jacobi {ROWS}x{COLS}, {ITERS} iterations, hot top edge\n")

    print("sequential solve (core functionality)...")
    sequential = JacobiGrid(ROWS, COLS)
    sequential.solve(ITERS)
    expected = sequential.interior()

    print(f"heartbeat solve ({BLOCKS} blocks + thread concurrency)...")
    app = ParallelApp(jacobi_spec(blocks=BLOCKS, backend="thread"))
    print(f"  {app.describe()}")
    with app:
        app.start(ROWS, COLS)
        residual = app.submit(ITERS).result()
        aspect = app.partition
        parallel = stitch_blocks(aspect.workers)
        print(
            f"  {len(aspect.workers)} blocks, {aspect.iterations} heartbeats, "
            f"{aspect.exchanges} halo exchanges, final residual {residual:.2e}"
        )

    identical = np.allclose(parallel, expected)
    print(f"parallel == sequential: {identical}\n")
    print("temperature field (hot '@' at the top, cold ' ' at the bottom):")
    print(render_field(parallel))
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
