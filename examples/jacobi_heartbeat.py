#!/usr/bin/env python3
"""Heartbeat parallelisation of a Jacobi heat-diffusion solver.

The third strategy category the paper reports (pipeline / farm /
heartbeat).  The heartbeat aspect re-expresses the sequential
``solve(iterations)`` call as: one sweep on every block worker, halo
exchange between neighbours, repeat — and the block-decomposed result is
bit-identical to the sequential solver.

Run:  python examples/jacobi_heartbeat.py
"""

import numpy as np

from repro.aop import weave
from repro.aop.weaver import default_weaver
from repro.apps.jacobi import (
    JACOBI_CREATION,
    JACOBI_WORK,
    JacobiGrid,
    jacobi_splitter,
    stitch_blocks,
)
from repro.parallel import Composition, concurrency_module, heartbeat_module
from repro.runtime import Future, ThreadBackend, use_backend

ROWS, COLS, ITERS, BLOCKS = 24, 32, 200, 4


def render_field(field: np.ndarray) -> str:
    shades = " .:-=+*#%@"
    peak = field.max() or 1.0
    return "\n".join(
        "".join(shades[min(9, int(v / peak * 9.999))] for v in row)
        for row in field[::2]
    )


def main():
    print(f"Jacobi {ROWS}x{COLS}, {ITERS} iterations, hot top edge\n")

    print("sequential solve (core functionality)...")
    sequential = JacobiGrid(ROWS, COLS)
    sequential.solve(ITERS)
    expected = sequential.interior()

    print(f"heartbeat solve ({BLOCKS} blocks + thread concurrency)...")
    module = heartbeat_module(jacobi_splitter(BLOCKS), JACOBI_CREATION, JACOBI_WORK)
    composition = Composition(
        "jacobi-heartbeat", [module, concurrency_module(JACOBI_WORK, JACOBI_WORK)]
    )
    weave(JacobiGrid)
    with use_backend(ThreadBackend()):
        with composition.deployed(default_weaver, targets=[JacobiGrid]):
            grid = JacobiGrid(ROWS, COLS)
            residual = grid.solve(ITERS)
            if isinstance(residual, Future):
                residual = residual.result()
            aspect = module.coordinator
            parallel = stitch_blocks(aspect.workers)
            print(
                f"  {len(aspect.workers)} blocks, {aspect.iterations} heartbeats, "
                f"{aspect.exchanges} halo exchanges, final residual {residual:.2e}"
            )

    identical = np.allclose(parallel, expected)
    print(f"parallel == sequential: {identical}\n")
    print("temperature field (hot '@' at the top, cold ' ' at the bottom):")
    print(render_field(parallel))
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
