#!/usr/bin/env python3
"""Pipeline strategy on the declarative API: streaming word count.

One pipeline stage per text-processing role (normalise → tokenise →
filter → count); document batches stream through the stages and the
final Counters merge.  ``app.map`` submits several document batches and
hands back one future per batch — the futures-first face of the same
stack.

Run:  python examples/wordcount_pipeline.py
"""

from collections import Counter

from repro.api import ParallelApp
from repro.apps.wordcount import TextPipeline, wordcount_spec

DOCUMENTS = [
    "the quick brown fox JUMPS over the lazy dog",
    "The dog barks; the fox runs!",
    "quick foxes and lazy dogs do not mix",
    "A dog, a fox, and a very lazy afternoon.",
]


def main():
    print("sequential word count (core functionality)...")
    expected = TextPipeline().process(list(DOCUMENTS))

    print("pipeline word count (one stage per role, thread backend)...")
    app = ParallelApp(wordcount_spec(batches=2, backend="thread"))
    print(f"  {app.describe()}")
    with app:
        app.start()
        parallel = app.submit(list(DOCUMENTS)).result()
        # the same deployed stack serves overlapped requests: every
        # in-flight split owns its per-call dispatch context, so all
        # four submissions stream through the stages concurrently
        futures = [app.submit([doc]) for doc in DOCUMENTS]
        per_doc = [future.result() for future in futures]
        overlapped = app.peak_in_flight

    identical = parallel == expected
    recombined = Counter()
    for counts in per_doc:
        recombined.update(counts)
    print(f"pipeline == sequential: {identical}")
    print(f"per-document submissions recombine identically: "
          f"{recombined == expected}")
    print(f"peak in-flight splits on one deployed pipeline: {overlapped}\n")
    for word, count in expected.most_common(8):
        print(f"  {word:>10}: {count}")
    if not identical or recombined != expected:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
