"""Docstring lint.

Three rules, run by ``make lint`` (and CI):

1. every public module under ``src/repro`` must carry a module
   docstring;
2. every public function, method, and class defined in the
   ``repro.api`` package must carry a docstring — the package is the
   user-facing surface, so its signatures are documentation;
3. likewise for the execution-backend modules in ``repro.runtime``
   (``backend.py``, ``threads.py``, ``simbackend.py``,
   ``procbackend.py``, ``asyncbackend.py``) — docs/BACKENDS.md tells
   users to implement this surface, so it must document itself.

A *public* module is any ``.py`` file whose path contains no
underscore-prefixed component (``__init__.py`` counts as public — it
documents its package).  A public definition is one whose name does not
start with ``_``; nested (function-local) definitions are exempt.
Exits non-zero listing offenders so CI fails loudly when an
undocumented surface lands.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: packages whose public *definitions* (not just modules) need docstrings
API_PACKAGES = ("api",)

#: individual modules held to the same definition-docstring rule: the
#: execution-backend surface users subclass (see docs/BACKENDS.md)
API_MODULES = (
    Path("runtime/backend.py"),
    Path("runtime/threads.py"),
    Path("runtime/simbackend.py"),
    Path("runtime/procbackend.py"),
    Path("runtime/asyncbackend.py"),
)


def is_public(relative: Path) -> bool:
    return not any(
        part.startswith("_") and part != "__init__.py"
        for part in relative.parts
    )


def undocumented_definitions(tree: ast.Module) -> list[tuple[int, str]]:
    """(line, qualified name) of public defs/classes lacking docstrings.

    Walks module and class bodies only — function-local helpers are
    implementation detail, not API surface.
    """
    offenders: list[tuple[int, str]] = []

    def visit(body: list[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = node.name
                qualified = f"{prefix}{name}"
                if not name.startswith("_"):
                    if ast.get_docstring(node) is None:
                        offenders.append((node.lineno, qualified))
                    if isinstance(node, ast.ClassDef):
                        visit(node.body, f"{qualified}.")

    visit(tree.body, "")
    return offenders


def main() -> int:
    root = Path(__file__).resolve().parent.parent / "src" / "repro"
    missing_modules: list[Path] = []
    missing_defs: list[str] = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        if not is_public(relative):
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:  # compileall catches these too
            print(f"lint: {path}: syntax error: {exc}", file=sys.stderr)
            return 1
        if ast.get_docstring(tree) is None:
            missing_modules.append(path)
        if relative.parts[0] in API_PACKAGES or relative in API_MODULES:
            for line, name in undocumented_definitions(tree):
                missing_defs.append(f"  {path}:{line}: {name}")
    failed = False
    if missing_modules:
        failed = True
        print("modules missing a docstring:", file=sys.stderr)
        for path in missing_modules:
            print(f"  {path}", file=sys.stderr)
    if missing_defs:
        failed = True
        print(
            "public repro.api / backend definitions missing a docstring:",
            file=sys.stderr,
        )
        for entry in missing_defs:
            print(entry, file=sys.stderr)
    if failed:
        return 1
    print(
        f"docstring lint ok ({sum(1 for _ in root.rglob('*.py'))} modules, "
        f"api + backend definitions documented)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
