"""Docstring lint: every public module under ``src/repro`` must carry a
module docstring.

Run by ``make lint``.  A *public* module is any ``.py`` file whose path
contains no underscore-prefixed component (``__init__.py`` counts as
public — it documents its package).  Exits non-zero listing offenders so
CI fails loudly when an undocumented module lands.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def is_public(relative: Path) -> bool:
    return not any(
        part.startswith("_") and part != "__init__.py"
        for part in relative.parts
    )


def main() -> int:
    root = Path(__file__).resolve().parent.parent / "src" / "repro"
    missing: list[Path] = []
    for path in sorted(root.rglob("*.py")):
        if not is_public(path.relative_to(root)):
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:  # compileall catches these too
            print(f"lint: {path}: syntax error: {exc}", file=sys.stderr)
            return 1
        if ast.get_docstring(tree) is None:
            missing.append(path)
    if missing:
        print("modules missing a docstring:", file=sys.stderr)
        for path in missing:
            print(f"  {path}", file=sys.stderr)
        return 1
    print(f"docstring lint ok ({sum(1 for _ in root.rglob('*.py'))} modules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
