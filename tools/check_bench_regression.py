#!/usr/bin/env python3
"""CI gate for the overlapped-submit benchmark pair.

Reads ``benchmarks/BENCH_dispatch.json`` (after ``make bench-smoke``
appended the current run) and compares the **pair ratio**

    mean(test_submit_overlapped_pipeline) / mean(test_submit_serial_pipeline)

of the latest run against the committed trajectory (the median ratio of
all earlier runs that contain the pair).  Using the within-run ratio —
not absolute means — keeps the gate meaningful across machines of
different speeds: a regression means overlapped submissions lost ground
*relative to serial ones on the same box*, i.e. the per-call dispatch
contexts stopped overlapping.

Fails (exit 1) when the current ratio exceeds the baseline by more than
``BENCH_REGRESSION_THRESHOLD`` (default 0.25 = 25%).  Exits 0 with a
notice when the trajectory has no earlier run with the pair (first run
after the pair landed) or the JSON is missing (fresh checkout without a
bench run).
"""

from __future__ import annotations

import json
import os
import statistics
import sys
from pathlib import Path

OVERLAPPED = "test_submit_overlapped_pipeline"
SERIAL = "test_submit_serial_pipeline"


def results_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_dispatch.json"


def pair_ratio(run: dict) -> float | None:
    """The overlapped/serial mean ratio of one run, or None."""
    benches = run.get("benchmarks", {})
    overlapped = benches.get(OVERLAPPED, {}).get("mean")
    serial = benches.get(SERIAL, {}).get("mean")
    if not overlapped or not serial:
        return None
    return overlapped / serial


def main() -> int:
    threshold = float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.25"))
    path = results_path()
    if not path.exists():
        print(f"bench-check: {path} not found (no bench run?) — skipping")
        return 0
    runs = json.loads(path.read_text()).get("runs", [])
    if not runs:
        print("bench-check: trajectory has no runs — skipping")
        return 0
    current = pair_ratio(runs[-1])
    if current is None:
        print(
            f"bench-check: latest run lacks the {OVERLAPPED}/{SERIAL} pair "
            f"— did bench-smoke run bench_aop_dispatch.py?"
        )
        return 1
    prior = [r for r in (pair_ratio(run) for run in runs[:-1]) if r is not None]
    if not prior:
        print(
            f"bench-check: no committed baseline for the pair yet "
            f"(current ratio {current:.3f}) — skipping"
        )
        return 0
    baseline = statistics.median(prior)
    limit = baseline * (1.0 + threshold)
    verdict = "OK" if current <= limit else "REGRESSION"
    print(
        f"bench-check: overlapped/serial ratio {current:.3f} "
        f"vs baseline {baseline:.3f} (median of {len(prior)} runs), "
        f"limit {limit:.3f} [+{threshold:.0%}] -> {verdict}"
    )
    if current > limit:
        print(
            "bench-check: overlapped submissions regressed vs serial — "
            "per-call dispatch contexts are likely no longer overlapping"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
