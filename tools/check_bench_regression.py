#!/usr/bin/env python3
"""CI gate over EVERY committed benchmark pair.

Reads ``benchmarks/BENCH_dispatch.json`` (after ``make bench-smoke``
appended the current run) and, for each pair declared in
``tools/bench_gates.json``, compares the **within-run mean ratio**

    mean(numerator bench) / mean(denominator bench)

of the latest run against the committed trajectory (the median ratio of
all earlier runs that contain the pair).  Using within-run ratios — not
absolute means — keeps the gate meaningful across machines of different
speeds: a regression means the optimised side lost ground *relative to
its baseline on the same box*.

A pair fails when its current ratio exceeds ``baseline * (1 +
max_regression)`` (per-pair threshold from the config;
``BENCH_REGRESSION_THRESHOLD`` overrides ALL thresholds when set).  A
pair may additionally declare an **absolute** ``max_ratio``: the
current within-run ratio must stay at or below it regardless of the
trajectory — this is how a landed optimisation is *locked in* (e.g. the
five-aspect stack must stay under ``max_ratio`` × a plain call even if
the committed baseline still carries slow pre-optimisation runs).  A
pair whose benches are missing from the latest run fails too — a gate
that silently stops measuring is worse than a red one.  Pairs with no
earlier baseline are skipped with a notice (first run after the pair
lands) unless they carry a ``max_ratio``, which needs no baseline.

Every failing pair is reported as a GitHub Actions ``::error``
annotation naming the pair (so the regression is visible on the PR
without opening the log) in addition to the human-readable verdict and
the non-zero exit code.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent
DEFAULT_CONFIG = TOOLS_DIR / "bench_gates.json"


def results_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    return TOOLS_DIR.parent / "benchmarks" / "BENCH_dispatch.json"


def config_path() -> Path:
    override = os.environ.get("REPRO_BENCH_GATES")
    if override:
        return Path(override)
    return DEFAULT_CONFIG


def pair_ratio(run: dict, numerator: str, denominator: str) -> float | None:
    """The numerator/denominator mean ratio of one run, or None."""
    benches = run.get("benchmarks", {})
    num = benches.get(numerator, {}).get("mean")
    den = benches.get(denominator, {}).get("mean")
    if not num or not den:
        return None
    return num / den


def annotate_error(title: str, message: str) -> None:
    """Emit a GitHub Actions error annotation (a harmless plain line
    anywhere else)."""
    print(f"::error title={title}::{message}")


def check_pair(pair: dict, runs: list[dict], override: float | None) -> str:
    """Gate one pair; returns 'ok', 'skip', or 'fail' (already printed)."""
    name = pair["name"]
    numerator, denominator = pair["numerator"], pair["denominator"]
    threshold = override if override is not None else float(
        pair.get("max_regression", 0.25)
    )
    current = pair_ratio(runs[-1], numerator, denominator)
    if current is None:
        print(
            f"bench-check[{name}]: latest run lacks the "
            f"{numerator}/{denominator} pair — did bench-smoke run "
            f"bench_aop_dispatch.py?"
        )
        annotate_error(
            f"bench pair missing: {name}",
            f"the latest bench run did not record {numerator} / "
            f"{denominator}; the gate cannot measure this pair",
        )
        return "fail"
    max_ratio = pair.get("max_ratio")
    if max_ratio is not None and current > float(max_ratio):
        meaning = pair.get("meaning", "the optimised side lost ground")
        print(
            f"bench-check[{name}]: ratio {current:.3f} exceeded the "
            f"absolute cap {float(max_ratio):.3f} -> REGRESSION"
        )
        annotate_error(
            f"bench regression: {name}",
            f"pair ratio {current:.3f} exceeded the absolute cap "
            f"{float(max_ratio):.3f} — {meaning}",
        )
        return "fail"
    prior = [
        r
        for r in (
            pair_ratio(run, numerator, denominator) for run in runs[:-1]
        )
        if r is not None
    ]
    if not prior:
        if max_ratio is not None:
            print(
                f"bench-check[{name}]: ratio {current:.3f} within the "
                f"absolute cap {float(max_ratio):.3f} "
                f"(no trajectory baseline yet) -> OK"
            )
            return "ok"
        print(
            f"bench-check[{name}]: no committed baseline yet "
            f"(current ratio {current:.3f}) — skipping"
        )
        return "skip"
    baseline = statistics.median(prior)
    limit = baseline * (1.0 + threshold)
    verdict = "OK" if current <= limit else "REGRESSION"
    print(
        f"bench-check[{name}]: ratio {current:.3f} vs baseline "
        f"{baseline:.3f} (median of {len(prior)} runs), limit "
        f"{limit:.3f} [+{threshold:.0%}] -> {verdict}"
    )
    if current > limit:
        meaning = pair.get("meaning", "the optimised side lost ground")
        print(f"bench-check[{name}]: {meaning}")
        annotate_error(
            f"bench regression: {name}",
            f"pair ratio {current:.3f} exceeded limit {limit:.3f} "
            f"(baseline {baseline:.3f} +{threshold:.0%}) — {meaning}",
        )
        return "fail"
    return "ok"


def main() -> int:
    override_env = os.environ.get("BENCH_REGRESSION_THRESHOLD")
    override = float(override_env) if override_env else None
    config_file = config_path()
    if not config_file.exists():
        annotate_error(
            "bench gate config missing",
            f"{config_file} not found — the regression gate has no pairs",
        )
        return 1
    pairs = json.loads(config_file.read_text()).get("pairs", [])
    if not pairs:
        annotate_error(
            "bench gate config empty",
            f"{config_file} declares no pairs — the gate gates nothing",
        )
        return 1
    path = results_path()
    if not path.exists():
        print(f"bench-check: {path} not found (no bench run?) — skipping")
        return 0
    runs = json.loads(path.read_text()).get("runs", [])
    if not runs:
        print("bench-check: trajectory has no runs — skipping")
        return 0
    verdicts = [check_pair(pair, runs, override) for pair in pairs]
    failed = verdicts.count("fail")
    print(
        f"bench-check: {len(pairs)} pairs gated — "
        f"{verdicts.count('ok')} ok, {verdicts.count('skip')} skipped, "
        f"{failed} failed"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
