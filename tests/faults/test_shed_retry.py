"""Regression: shedding × retry must never interact.

A call shed by admission control (deployment table or cluster
scheduler) while a :class:`RetryPolicy` is armed must

* latch :class:`CallShed` immediately — the collector's retry plane
  must NOT re-dispatch the shed pieces (a shed is a verdict about the
  call, not a worker fault), and
* release its admission slot (and cluster grant) exactly once — a
  double release would mint phantom capacity.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import ParallelApp, StackSpec
from repro.errors import (
    AdmissionRejected,
    CallShed,
    DeadlineExceeded,
    InjectedFault,
)
from repro.faults import RetryPolicy
from repro.parallel import WorkSplitter
from repro.parallel.partition import CallPiece
from repro.parallel.partition.base import ResultCollector
from repro.runtime import ThreadBackend
from repro.tenancy import ClusterScheduler


def wait_until(predicate, timeout=5.0):
    deadline = threading.Event()
    for _ in range(int(timeout / 0.005)):
        if predicate():
            return True
        deadline.wait(0.005)
    return predicate()


class TestCollectorNeverRetriesAdmissionVerdicts:
    """Unit: a keyed fail() with an armed policy and a live redispatch
    hook must still latch for the whole AdmissionError family."""

    def armed(self, redispatched):
        collector = ResultCollector(1, backend=ThreadBackend())
        collector.arm_retry(RetryPolicy(max_attempts=3), redispatched.append)
        return collector

    @pytest.mark.parametrize(
        "verdict", [CallShed, DeadlineExceeded, AdmissionRejected]
    )
    def test_admission_verdicts_latch_without_redispatch(self, verdict):
        redispatched: list = []
        collector = self.armed(redispatched)
        collector.fail(verdict("verdict"), piece=CallPiece(0, (1,)))
        assert collector.failed
        assert redispatched == []
        assert collector.retries == 0
        with pytest.raises(verdict):
            collector.wait(timeout=1)

    def test_shed_latches_even_mid_retry_ladder(self):
        # the piece already burned one retryable attempt; the shed that
        # arrives next must latch, not spend the remaining attempts
        redispatched: list = []
        collector = self.armed(redispatched)
        piece = CallPiece(0, (1,))
        collector.fail(InjectedFault("worker died"), piece=piece)
        assert redispatched == [piece] and not collector.failed
        collector.fail(CallShed("shed"), piece=piece)
        assert collector.failed
        assert redispatched == [piece]  # no second hand-back
        with pytest.raises(CallShed):
            collector.wait(timeout=1)

    def test_infrastructure_faults_still_redispatch(self):
        # sanity: the retry plane is alive, it just excludes admission
        redispatched: list = []
        collector = self.armed(redispatched)
        collector.fail(InjectedFault("worker died"), piece=CallPiece(0, ()))
        assert not collector.failed
        assert redispatched and collector.retries == 1


class CountingService:
    """Farm servant that counts executions per value behind a gate."""

    gate: "threading.Event | None" = None
    calls: "dict[int, int]" = {}
    lock = threading.Lock()

    def __init__(self, tag=0):
        self.tag = tag

    def handle(self, values):
        with CountingService.lock:
            for value in values:
                CountingService.calls[value] = (
                    CountingService.calls.get(value, 0) + 1
                )
        if CountingService.gate is not None:
            CountingService.gate.wait(10)
        return [v + 1 for v in values]


def farm_spec(**overrides):
    fields = dict(
        target=CountingService,
        work="handle",
        splitter=WorkSplitter(duplicates=2, combine=lambda rs: rs[0]),
        strategy="farm",
        backend="thread",
        retry=RetryPolicy(max_attempts=3),
    )
    fields.update(overrides)
    return StackSpec(**fields)


class TestShedWithRetryArmedEndToEnd:
    def setup_method(self):
        CountingService.gate = threading.Event()
        CountingService.calls = {}

    def teardown_method(self):
        CountingService.gate = None

    def test_deployment_shed_is_not_redispatched(self):
        app = ParallelApp(
            farm_spec(max_in_flight=1, overflow="shed-oldest")
        )
        with app:
            app.start()
            victim = app.submit([1])
            wait_until(lambda: CountingService.calls.get(1, 0) >= 1)
            fresh = app.submit([2])  # sheds the parked victim
            CountingService.gate.set()
            with pytest.raises(CallShed):
                victim.result(timeout=10)
            assert fresh.result(timeout=10) == [3]
            # exactly one release: the table is back to empty and a
            # sequential reuse still fits the single slot
            assert wait_until(lambda: app.stats()["admitted"] == 0)
            assert app.submit([5]).result(timeout=10) == [6]
        stats = app.stats()
        assert stats["shed"] == 1
        assert stats["admitted_total"] == 3
        # the victim's duplicated pieces ran at most once each — the
        # armed retry plane never re-dispatched the shed call's work
        assert CountingService.calls[1] <= 2

    def test_cluster_shed_is_not_redispatched_and_frees_the_grant_once(self):
        sched = ClusterScheduler(capacity=1, backend=ThreadBackend())
        sched.tenant("hot", overflow="shed-oldest")
        app = ParallelApp(farm_spec(tenant="hot", scheduler=sched))
        with app:
            app.start()
            victim = app.submit([1])
            wait_until(lambda: CountingService.calls.get(1, 0) >= 1)
            fresh = app.submit([2])  # cluster sheds the parked victim
            CountingService.gate.set()
            with pytest.raises(CallShed):
                victim.result(timeout=10)
            assert fresh.result(timeout=10) == [3]
            assert wait_until(lambda: sched.stats()["in_use"] == 0)
            # the recycled slot still admits — no phantom capacity in
            # either direction after the shed's single release
            assert app.submit([5]).result(timeout=10) == [6]
        assert sched.stats()["in_use"] == 0
        assert sched.stats()["tenants"]["hot"]["shed"] == 1
        assert sched.stats()["tenants"]["hot"]["admitted_total"] == 3
        assert CountingService.calls[1] <= 2
