"""Property-style tests for ``ResultCollector`` retry accounting.

Seeded ``random.Random`` interleavings of deposits, duplicate
deliveries, and keyed failures drive the collector from worker threads;
whatever the schedule, three invariants must hold:

* exactly one result is deposited per piece (keyed dedup — a dropped
  reply whose work completed late never double-counts);
* re-dispatches never exceed ``max_attempts - 1`` per piece;
* exhausted pieces latch the piece's ORIGINAL failure (first recorded
  traceback), not the last retry's.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.errors import AdmissionError, InjectedFault, RemoteError
from repro.faults import RetryPolicy
from repro.parallel.partition import CallPiece
from repro.parallel.partition.base import ResultCollector
from repro.runtime import ThreadBackend


def make_collector(expected, policy=None, redispatch=None):
    collector = ResultCollector(expected, backend=ThreadBackend())
    if policy is not None:
        collector.arm_retry(policy, redispatch)
    return collector


class TestRetryPolicy:
    def test_defaults_retry_infrastructure_failures_only(self):
        policy = RetryPolicy()
        assert policy.retryable(InjectedFault("injected"))
        assert not policy.retryable(RemoteError("app error"))
        assert not policy.retryable(ValueError("app error"))

    def test_admission_errors_never_retry(self):
        # even when explicitly listed: a shed/deadline verdict is about
        # the call, not the worker
        policy = RetryPolicy(retry_on=(AdmissionError,))
        assert not policy.retryable(AdmissionError("shed"))

    def test_validation(self):
        from repro.errors import AdviceError

        with pytest.raises(AdviceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(AdviceError):
            RetryPolicy(backoff=-0.1)
        with pytest.raises(AdviceError):
            RetryPolicy(retry_on=("not a class",))


class TestCollectorRetryUnit:
    def test_keyed_fail_redispatches_instead_of_latching(self):
        redispatched: list = []
        collector = make_collector(
            1, RetryPolicy(max_attempts=3), redispatched.append
        )
        piece = CallPiece(0, (1,))
        collector.fail(InjectedFault("boom"), piece=piece)
        assert not collector.failed
        assert redispatched == [piece]
        assert collector.retries == 1

    def test_exhaustion_latches_original_failure(self):
        collector = make_collector(
            1, RetryPolicy(max_attempts=3), lambda piece: None
        )
        piece = CallPiece(0, ())
        first = InjectedFault("original")
        collector.fail(first, piece=piece)
        collector.fail(InjectedFault("second"), piece=piece)
        assert not collector.failed
        collector.fail(InjectedFault("last straw"), piece=piece)
        assert collector.failed
        with pytest.raises(InjectedFault, match="original"):
            collector.wait(timeout=1)
        assert collector.retries == 2  # never exceeds max_attempts - 1

    def test_non_retryable_failure_latches_immediately(self):
        collector = make_collector(
            1, RetryPolicy(max_attempts=5), lambda piece: None
        )
        collector.fail(ValueError("app bug"), piece=CallPiece(0, ()))
        assert collector.failed
        assert collector.retries == 0

    def test_unkeyed_fail_latches_even_with_policy(self):
        # a failure that names no piece cannot be re-dispatched
        collector = make_collector(
            1, RetryPolicy(max_attempts=5), lambda piece: None
        )
        collector.fail(InjectedFault("anonymous"))
        assert collector.failed

    def test_fail_after_result_landed_is_ignored(self):
        # drop_reply journey: the work completed (deposited late), then
        # the dispatcher reports the drop — no attempt may be charged
        collector = make_collector(
            2, RetryPolicy(max_attempts=2), lambda piece: None
        )
        piece = CallPiece(0, ())
        collector.deposit("done", key=piece.index)
        collector.fail(InjectedFault("late drop"), piece=piece)
        assert not collector.failed
        assert collector.retries == 0

    def test_duplicate_keyed_deposits_count_once(self):
        collector = make_collector(2)
        collector.deposit("a", key=0)
        collector.deposit("a-again", key=0)
        collector.deposit("b", key=1)
        assert collector.wait(timeout=1) == ["a", "b"]

    def test_redispatch_hook_exception_latches(self):
        def broken(piece):
            raise RuntimeError("refeed path is gone")

        collector = make_collector(1, RetryPolicy(max_attempts=3), broken)
        collector.fail(InjectedFault("boom"), piece=CallPiece(0, ()))
        with pytest.raises(RuntimeError, match="refeed path is gone"):
            collector.wait(timeout=1)


@pytest.mark.parametrize("seed", range(8))
def test_random_interleavings_keep_retry_invariants(seed):
    """The property run: N pieces, each failing a random number of times
    before (maybe) succeeding, driven by concurrent worker threads whose
    redispatches re-enter the same collector."""
    rng = random.Random(seed)
    pieces = 6
    policy = RetryPolicy(max_attempts=3)
    # per piece: how many injected failures before the piece succeeds
    # (max_attempts or more means the piece exhausts its attempts)
    failures_before_success = [rng.randint(0, 4) for _ in range(pieces)]
    should_fail = any(
        n >= policy.max_attempts for n in failures_before_success
    )
    first_errors = {}

    collector = make_collector(pieces, policy)
    deposits_attempted = [0] * pieces
    lock = threading.Lock()

    def attempt(piece):
        index = piece.index
        with lock:
            # how many failures this piece has already recorded
            charged = collector._attempts.get(index, 0)
        if charged < failures_before_success[index]:
            exc = InjectedFault(f"piece {index} failure #{charged + 1}")
            with lock:
                first_errors.setdefault(index, exc if charged == 0 else first_errors.get(index))
            collector.fail(exc, piece=piece)
        else:
            with lock:
                deposits_attempted[index] += 1
            collector.deposit(("ok", index), key=index)
            if rng.random() < 0.3:
                # duplicate delivery: a dropped-reply journey that
                # completed anyway reports the same result again
                collector.deposit(("dup", index), key=index)

    # redispatch re-enters attempt() on a fresh thread (like a refeed);
    # completion is tracked with a counter + event (threads spawn
    # threads, so a join list would race its own appends)
    pending = [0]
    idle = threading.Event()

    def run(piece):
        try:
            attempt(piece)
        finally:
            with lock:
                pending[0] -= 1
                if pending[0] == 0:
                    idle.set()

    def redispatch(piece):
        with lock:
            pending[0] += 1
            idle.clear()
        threading.Thread(target=lambda: run(piece)).start()

    collector.redispatch = redispatch
    for index in rng.sample(range(pieces), pieces):
        redispatch(CallPiece(index, ()))
    assert idle.wait(timeout=20), "interleaving never drained"

    if should_fail:
        exhausted = [
            i
            for i, n in enumerate(failures_before_success)
            if n >= policy.max_attempts
        ]
        with pytest.raises(InjectedFault) as err:
            collector.wait(timeout=10)
        # the latched failure is some exhausted piece's FIRST failure
        assert "failure #1" in str(err.value)
        assert any(f"piece {i} " in str(err.value) for i in exhausted)
    else:
        results = collector.wait(timeout=10)
        # exactly one result per piece, no duplicates, despite the 30%
        # duplicate-delivery injection
        assert sorted(index for _, index in results) == list(range(pieces))
        assert all(tag == "ok" for tag, _ in results)
    # re-dispatches never exceed the cap on any piece
    for index in range(pieces):
        assert collector._attempts.get(index, 0) <= policy.max_attempts
