"""Deterministic-seed regression: the same ``FaultSchedule(seed=N)``
replayed over the same workload on the sim backend (virtual time,
``concurrency=False`` so dispatch consultations are strictly
sequential) produces the identical fired-event trace — across two
in-process runs AND against the committed golden trace.
"""

from __future__ import annotations

import json
import pathlib

from repro.api import ParallelApp, StackSpec
from repro.cluster import paper_testbed
from repro.faults import FaultEvent, FaultSchedule, RetryPolicy
from repro.parallel import WorkSplitter
from repro.sim import Simulator

GOLDEN = pathlib.Path(__file__).with_name("golden_trace.json")

SEED = 8
SUBMITS = 6


class Echo:
    """Doubling worker."""

    def __init__(self, tag=0):
        self.tag = tag

    def bump(self, values):
        return [v * 2 for v in values]


def make_schedule():
    return FaultSchedule(
        [FaultEvent("kill_worker", site="dispatch", on_call=2)],
        seed=SEED,
        rates={"delay_reply": 0.25},
    )


def run_workload(schedule):
    """Six sequential submits through a farm on the simulated cluster;
    returns the schedule's fired-event trace."""
    sim = Simulator()
    cluster = paper_testbed(sim)
    app = ParallelApp(
        StackSpec(
            target=Echo,
            work="bump",
            splitter=WorkSplitter(duplicates=2, combine=lambda rs: rs[0]),
            strategy="farm",
            backend="sim",
            middleware="mpp",
            cluster=cluster,
            concurrency=False,
            faults=schedule,
            retry=RetryPolicy(max_attempts=3),
        )
    )
    results = []

    def main():
        app.start()
        for i in range(SUBMITS):
            results.append(app.submit([i]).result())

    try:
        with app:
            sim.spawn(main, name="golden-driver")
            sim.run()
    finally:
        sim.shutdown()
    # the workload itself survived its faults (the kill was retried)
    assert results == [[i * 2] for i in range(SUBMITS)]
    return schedule.trace_snapshot()


def test_same_seed_replays_identical_trace():
    first = run_workload(make_schedule())
    second = run_workload(make_schedule())
    assert first == second
    assert len(first) >= 1  # the explicit kill fired at minimum


def test_trace_matches_committed_golden():
    trace = run_workload(make_schedule())
    golden = json.loads(GOLDEN.read_text())
    assert trace == golden, (
        "fault trace diverged from the committed golden trace — if the "
        "schedule semantics changed intentionally, regenerate "
        "tests/faults/golden_trace.json from trace_snapshot()"
    )
